"""Fig. 8(a): time-to-break and defended-BFA capacity vs ``T_RH``.

Thin wrapper over the ``fig8a`` scenario: both series of the figure from
the analytical security model — time-to-break in days for DNN-Defender
and SHADOW at thresholds 1k/2k/4k/8k, and the corresponding maximum
number of defendable BFAs (7K/14K/28K/55K in the paper).
"""


def test_fig8a_time_to_break(run_bench):
    run_bench("fig8a", sink_name="fig8a_time_to_break")
