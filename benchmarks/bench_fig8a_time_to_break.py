"""Fig. 8(a): time-to-break and defended-BFA capacity vs ``T_RH``.

Regenerates both series of the figure from the analytical security model:
time-to-break in days for DNN-Defender and SHADOW at thresholds
1k/2k/4k/8k, and the corresponding maximum number of defendable BFAs
(7K/14K/28K/55K in the paper).
"""

from repro.analysis import format_security_sweep, security_sweep


def run_sweep():
    return security_sweep()


def test_fig8a_time_to_break(benchmark, report_sink):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report_sink("fig8a_time_to_break", format_security_sweep(points))
    by_key = {(p.defense, p.t_rh): p for p in points}
    # Paper anchors at T_RH = 4k.
    dd_4k = by_key[("dnn-defender", 4000)]
    shadow_4k = by_key[("shadow", 4000)]
    assert abs(dd_4k.time_to_break_days - 1180) < 15
    assert abs(shadow_4k.time_to_break_days - 894) < 10
    # "DD protects 286 more days".
    assert abs(
        dd_4k.time_to_break_days - shadow_4k.time_to_break_days - 286
    ) < 10
    # DNN-Defender outperforms SHADOW at every threshold.
    for t_rh in (1000, 2000, 4000, 8000):
        assert (
            by_key[("dnn-defender", t_rh)].time_to_break_days
            > by_key[("shadow", t_rh)].time_to_break_days
        )
    # Defended-BFA anchors: ~7K/14K/28K/55K.
    for t_rh, anchor in ((1000, 7000), (2000, 14000), (4000, 28000),
                         (8000, 55000)):
        measured = by_key[("dnn-defender", t_rh)].max_defended_bfas
        assert abs(measured - anchor) / anchor < 0.02
