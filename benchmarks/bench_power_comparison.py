"""Section 5.1 power claims: 1.6% saving vs SHADOW-1k, 3.4x vs SRS."""

from repro.analysis import power_comparison
from repro.utils.tabulate import format_table


def run_comparison():
    return power_comparison()


def test_power_comparison(benchmark, report_sink):
    result = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    table = format_table(
        ["metric", "value", "paper"],
        [
            ["DD defense power (mW)", f"{result['dd_power_mw']:.1f}", "-"],
            ["SHADOW defense power (mW)", f"{result['shadow_power_mw']:.1f}", "-"],
            ["SRS defense power (mW)", f"{result['srs_power_mw']:.1f}", "-"],
            ["total-power saving vs SHADOW@1k",
             f"{result['saving_vs_shadow_1k_percent']:.2f}%", "1.6%"],
            ["defense-power improvement vs SRS",
             f"{result['improvement_vs_srs']:.2f}x", "3.4x"],
        ],
        title="Section 5.1 — power comparison",
    )
    report_sink("power_comparison", table)
    assert abs(result["saving_vs_shadow_1k_percent"] - 1.6) < 0.3
    assert abs(result["improvement_vs_srs"] - 3.4) < 0.3
