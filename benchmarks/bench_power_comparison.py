"""Section 5.1 power claims: 1.6% saving vs SHADOW-1k, 3.4x vs SRS.

Thin wrapper over the ``power`` scenario.
"""


def test_power_comparison(run_bench):
    run_bench("power", sink_name="power_comparison")
