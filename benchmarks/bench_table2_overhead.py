"""Table 2: hardware overhead of ten RowHammer mitigation frameworks.

Regenerates the comparison for the paper's 32 GB / 16-bank DDR4 reference
configuration: involved memory technologies, capacity overhead per
technology (published), area overhead, and — where derivable from the DRAM
geometry — our independently recomputed capacity figure.
"""

from repro.analysis import TABLE2_SPECS, derived_capacity_mb, table2_rows
from repro.dram import PAPER_GEOMETRY
from repro.utils.tabulate import format_table


def build_table() -> str:
    rows = table2_rows(PAPER_GEOMETRY)
    return format_table(
        ["framework", "involved memory", "capacity overhead", "area",
         "derived"],
        rows,
        title=f"Table 2 — overhead on {PAPER_GEOMETRY.describe()}",
    )


def test_table2_overhead(benchmark, report_sink):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    report_sink("table2_overhead", table)
    by_name = {s.name: s for s in TABLE2_SPECS}
    # DNN-Defender: zero capacity overhead, DRAM only, smallest area.
    dd = by_name["DNN-Defender"]
    assert dd.total_capacity_mb == 0.0
    assert dd.dram_only
    # Every other framework needs storage or fast memory.
    for name, spec in by_name.items():
        if name == "DNN-Defender":
            continue
        assert spec.total_capacity_mb > 0 or spec.uses_fast_memory
    # Derivations agree with published values where applicable.
    assert abs(derived_capacity_mb("Counter per Row") - 32.0) < 0.5
    shadow = derived_capacity_mb("SHADOW")
    assert abs(shadow - 0.16) / 0.16 < 0.05
