"""Table 2: hardware overhead of ten RowHammer mitigation frameworks.

Thin wrapper over the ``table2`` scenario: the comparison for the
paper's 32 GB / 16-bank DDR4 reference configuration — involved memory
technologies, published capacity/area overheads, and the independently
recomputed capacity figures where derivable from the DRAM geometry.
"""


def test_table2_overhead(run_bench):
    run_bench("table2", sink_name="table2_overhead")
