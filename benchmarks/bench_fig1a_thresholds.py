"""Fig. 1(a): RowHammer thresholds by DRAM generation.

Regenerates the threshold bar chart's data and the intro's headline claim:
LPDDR4 (new) needs ~4.5x fewer hammer counts than DDR3 (new).
"""

from repro.dram import TRH_BY_GENERATION
from repro.utils.tabulate import format_table


def build_table() -> str:
    rows = [
        [generation, f"{t_rh:,}"]
        for generation, t_rh in TRH_BY_GENERATION.items()
    ]
    ratio = TRH_BY_GENERATION["DDR3 (new)"] / TRH_BY_GENERATION["LPDDR4 (new)"]
    table = format_table(
        ["DRAM generation", "T_RH (hammer count)"],
        rows,
        title="Fig. 1a — RowHammer threshold by generation",
    )
    return f"{table}\nDDR3(new) / LPDDR4(new) = {ratio:.2f}x (paper: ~4.5x)"


def test_fig1a_thresholds(benchmark, report_sink):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    report_sink("fig1a_thresholds", table)
    ratio = TRH_BY_GENERATION["DDR3 (new)"] / TRH_BY_GENERATION["LPDDR4 (new)"]
    assert 4.0 < ratio < 5.0
    assert min(TRH_BY_GENERATION.values()) == TRH_BY_GENERATION["LPDDR4 (new)"]
