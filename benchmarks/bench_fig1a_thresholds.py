"""Fig. 1(a): RowHammer thresholds by DRAM generation.

Thin wrapper over the ``fig1a`` scenario (see
``repro.experiments.scenarios``): regenerates the threshold bar chart's
data and the intro's headline claim that LPDDR4 (new) needs ~4.5x fewer
hammer counts than DDR3 (new).
"""


def test_fig1a_thresholds(run_bench):
    run_bench("fig1a", sink_name="fig1a_thresholds")
