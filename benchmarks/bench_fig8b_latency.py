"""Fig. 8(b): defense latency per refresh interval vs number of BFAs.

Thin wrapper over the ``fig8b`` scenario: latency curves for
DNN-Defender and SHADOW at thresholds 1k/2k/4k/8k over the paper's BFA
counts (7K/14K/28K/55K), the ``T_ref / 2`` saturation limit, and a
cross-check of the analytical model against the functional defender
running on the DRAM simulator.
"""


def test_fig8b_latency(run_bench):
    run_bench("fig8b", sink_name="fig8b_latency")
