"""Fig. 8(b): defense latency per refresh interval vs number of BFAs.

Regenerates the latency curves for DNN-Defender and SHADOW at thresholds
1k/2k/4k/8k over the paper's BFA counts (7K/14K/28K/55K), plus the
saturation limit both curves approach (``T_ref / 2``), and cross-checks the
analytical model against the functional defender running on the DRAM
simulator.
"""

import numpy as np

from repro.analysis import format_latency_sweep, latency_per_tref_ms, latency_sweep
from repro.core import DNNDefender
from repro.dram import DramDevice, DramGeometry, MemoryController, TimingParams
from repro.mapping import ProtectionPlan
from repro.dram.address import RowAddress


def run_sweep():
    return latency_sweep()


def functional_latency_ms(n_targets: int, t_rh: int = 1000) -> float:
    """Measure the defender's busy time per T_ref on the live simulator."""
    geometry = DramGeometry(
        banks=4, subarrays_per_bank=8, rows_per_subarray=64, row_bytes=64
    )
    timing = TimingParams(t_rh=t_rh)
    controller = MemoryController(DramDevice(geometry), timing)
    rng = np.random.default_rng(0)
    controller.device.fill_random(rng)
    targets, non_targets = [], []
    for bank in range(geometry.banks):
        for subarray in range(geometry.subarrays_per_bank):
            per_sub = n_targets // (geometry.banks * geometry.subarrays_per_bank)
            for row in range(2, 2 + per_sub):
                targets.append(RowAddress(bank, subarray, row))
            non_targets.append(RowAddress(bank, subarray, 40))
    plan = ProtectionPlan(
        secured_bits=set(), target_rows=targets, non_target_rows=non_targets
    )
    defender = DNNDefender(controller, plan)
    # Run windows across one refresh interval's worth of schedule.
    windows = int(
        timing.t_ref_ns / (timing.hammer_window_ns * defender.config.period_fraction)
    )
    windows = min(windows, 200)
    for _ in range(windows):
        defender.run_window()
        controller.advance_time(defender.period_ns)
    return defender.latency_per_tref_ms()


def test_fig8b_latency(benchmark, report_sink):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = format_latency_sweep(points)
    # Functional cross-check at a modest target count.
    measured = functional_latency_ms(n_targets=64)
    table += (
        f"\nfunctional defender latency (64 target rows, T_RH=1k): "
        f"{measured:.3f} ms per T_ref"
    )
    report_sink("fig8b_latency", table)
    by_key = {(p.defense, p.t_rh, p.n_bfas): p for p in points}
    # DNN-Defender's latency never exceeds SHADOW's at any grid point.
    for p in points:
        if p.defense != "dnn-defender":
            continue
        shadow = by_key[("shadow", p.t_rh, p.n_bfas)]
        assert p.latency_ms <= shadow.latency_ms + 1e-9
    # Latency grows with BFAs and saturates below T_ref/2 = 32 ms.
    for t_rh in (1000, 2000, 4000, 8000):
        series = [
            by_key[("dnn-defender", t_rh, n)].latency_ms
            for n in (7000, 14000, 28000, 55000)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))
        assert series[-1] <= 32.0 + 1e-6
    assert measured > 0.0
