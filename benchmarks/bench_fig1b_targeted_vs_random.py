"""Fig. 1(b): targeted BFA vs random flips vs DNN-Defender (ResNet-34).

Thin wrapper over the ``fig1b`` scenario: fewer than 5 targeted flips
crush the 8-bit ImageNet stand-in while 100 random flips barely move it,
and the defense pins the targeted attack near the clean accuracy.  The
reproduction target is the *separation* between the three curves, not
ImageNet's absolute accuracy.
"""


def test_fig1b_targeted_vs_random(run_bench):
    run_bench("fig1b", sink_name="fig1b_targeted_vs_random")
