"""Fig. 1(b): targeted BFA vs random flips vs DNN-Defender (ResNet-34).

The paper's motivation figure: fewer than 5 targeted flips crush an 8-bit
ResNet-34 on ImageNet, while 100 random flips barely move it, and the
defense pins the targeted attack near the clean accuracy.  Run at CI scale
on the ImageNet stand-in; the reproduction target is the *separation*
between the three curves, not ImageNet's absolute accuracy.
"""

from repro.analysis import format_accuracy_curves, targeted_vs_random
from repro.attacks import BfaConfig


def run_curves(preset):
    return targeted_vs_random(
        preset.factory,
        preset.state,
        preset.dataset,
        bfa_flips=12,
        random_flips=100,
        defended_flips=12,
        profile_rounds=8,
        attack_batch=96,
        bfa_config=BfaConfig(max_iterations=12, exact_eval_top=4),
        seed=0,
    )


def test_fig1b_targeted_vs_random(benchmark, report_sink, preset_resnet34):
    curves = benchmark.pedantic(
        run_curves, args=(preset_resnet34,), rounds=1, iterations=1
    )
    text = format_accuracy_curves(curves)
    text += f"\nclean accuracy: {preset_resnet34.clean_accuracy * 100:.2f}%"
    report_sink("fig1b_targeted_vs_random", text)
    by_label = {c.label: c for c in curves}
    clean = by_label["bfa"].accuracies[0]
    bfa_final = by_label["bfa"].accuracies[-1]
    random_final = by_label["random"].accuracies[-1]
    # Targeted attack devastates within a handful of flips.
    assert clean - bfa_final > 0.30
    # >100 random flips barely move the model (paper: ~0.4% drop).
    assert clean - random_final < 0.10
    # The defense pushes the targeted attack towards the random level:
    # over the first flips (where the undefended BFA already devastates)
    # the defended model retains far more accuracy.  Full flatness needs
    # SB saturation beyond CI scale — see EXPERIMENTS.md.
    early = slice(1, 6)
    bfa_early = sum(by_label["bfa"].accuracies[early]) / 5
    defended_early = sum(by_label["dnn-defender"].accuracies[early]) / 5
    assert defended_early > bfa_early + 0.08
