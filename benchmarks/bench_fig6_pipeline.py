"""Fig. 6: the swap-pipeline timeline and its 3-AAP steady state.

Regenerates the multi-swap timeline (step 1 of swap *n+1* overlapping step 4
of swap *n*) and verifies the functional swap engine reproduces the
analytic AAP counts on the DRAM simulator.
"""

import numpy as np

from repro.core import SwapEngine, build_timeline, chain_aap_count
from repro.dram import DramDevice, DramGeometry, MemoryController, RowAddress, TimingParams
from repro.utils.tabulate import format_table


def build_report() -> tuple[str, int, int]:
    timing = TimingParams()
    entries = build_timeline(3, timing, pipelined=True)
    rows = [
        [e.swap, e.step, e.slot, f"{e.start_ns:.0f}", f"{e.end_ns:.0f}",
         "yes" if e.shared_with_next else "", e.description]
        for e in entries
    ]
    table = format_table(
        ["swap", "step", "slot", "start (ns)", "end (ns)", "shared", "op"],
        rows,
        title="Fig. 6 — pipelined timeline of 3 swaps",
    )

    # Functional measurement: a chain of 8 swaps on the simulator.
    geometry = DramGeometry(
        banks=1, subarrays_per_bank=1, rows_per_subarray=64, row_bytes=64
    )
    controller = MemoryController(DramDevice(geometry), timing)
    controller.device.fill_random(np.random.default_rng(0))
    engine = SwapEngine(controller, reserved_rows=2)
    rng = np.random.default_rng(1)
    targets = [RowAddress(0, 0, r) for r in range(2, 18, 2)]
    non_targets = [RowAddress(0, 0, r) for r in range(20, 36, 2)]
    for target, nt in zip(targets, non_targets):
        engine.swap_target(target, rng, non_target_logical=nt,
                           exclude=set(targets), pipelined=True)
    measured = engine.total_aaps
    expected = chain_aap_count(len(targets), pipelined=True)
    table += (
        f"\nfunctional chain of {len(targets)} swaps: {measured} AAPs "
        f"(analytic: {expected}; unpipelined would be "
        f"{chain_aap_count(len(targets), pipelined=False)})"
    )
    return table, measured, expected


def test_fig6_pipeline(benchmark, report_sink):
    table, measured, expected = benchmark.pedantic(
        build_report, rounds=1, iterations=1
    )
    report_sink("fig6_pipeline", table)
    assert measured == expected  # 3n + 1
    assert measured < chain_aap_count(8, pipelined=False)
