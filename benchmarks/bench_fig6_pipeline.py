"""Fig. 6: the swap-pipeline timeline and its 3-AAP steady state.

Thin wrapper over the ``fig6`` scenario: regenerates the multi-swap
timeline (step 1 of swap *n+1* overlapping step 4 of swap *n*) and
verifies the functional swap engine reproduces the analytic ``3n + 1``
AAP count on the DRAM simulator.
"""


def test_fig6_pipeline(run_bench):
    run_bench("fig6", sink_name="fig6_pipeline")
