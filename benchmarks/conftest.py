"""Benchmark fixtures: trained presets (built once per session) and report
sinks.

Every benchmark writes the rows/series it regenerates both to stdout and to
``benchmarks/results/<name>.txt`` so the reproduction record survives pytest
output capture.
"""

import pathlib

import pytest

from repro.presets import (
    resnet18_imagenet,
    resnet20_cifar,
    resnet34_imagenet,
    vgg11_cifar,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report_sink():
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return write


@pytest.fixture(scope="session")
def preset_resnet20():
    return resnet20_cifar()


@pytest.fixture(scope="session")
def preset_vgg11():
    return vgg11_cifar()


@pytest.fixture(scope="session")
def preset_resnet18():
    return resnet18_imagenet()


@pytest.fixture(scope="session")
def preset_resnet34():
    return resnet34_imagenet()
