"""Benchmark fixtures: scenario execution + dual text/JSON report sinks.

Every benchmark is a thin wrapper over a registered scenario (see
``repro.experiments.scenarios``): it executes through the same
:func:`repro.experiments.run_scenario` path as the ``python -m repro``
CLI, reports the scenario's table, and enforces the scenario's
reproduction checks.

Reports land both as ``benchmarks/results/<name>.txt`` (human-readable,
survives pytest output capture) and ``benchmarks/results/<name>.json``
(machine-readable aggregate: per-metric mean/std/CI and the detail
payload — the input to the runner's aggregation and perf tracking).

Trained presets come from the shared on-disk cache
(``repro.experiments.PresetCache``), so each preset trains once ever
rather than once per pytest session.
"""

import json
import pathlib

import pytest

from repro.experiments import get_scenario, run_scenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report_sink():
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str, data: dict | None = None) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        if data is not None:
            (RESULTS_DIR / f"{name}.json").write_text(
                json.dumps(data, indent=2, sort_keys=True) + "\n"
            )
        print(f"\n{text}\n")

    return write


@pytest.fixture
def run_bench(benchmark, report_sink):
    """Run a registered scenario under pytest-benchmark and report it.

    Returns the aggregate :class:`repro.experiments.ScenarioResult` after
    writing the text/JSON reports and asserting the scenario's
    reproduction checks.
    """

    def run(scenario_name: str, sink_name: str | None = None,
            trials: int = 1, seed: int = 0):
        spec = get_scenario(scenario_name)
        result = benchmark.pedantic(
            run_scenario,
            args=(scenario_name,),
            kwargs=dict(trials=trials, jobs=1, seed=seed),
            rounds=1,
            iterations=1,
        )
        report_sink(
            sink_name or scenario_name.replace("-", "_"),
            spec.render_report(result),
            data=result.to_json(),
        )
        spec.run_checks(result)
        return result

    return run
