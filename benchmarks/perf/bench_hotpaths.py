"""Hot-path perf microbenchmarks (the ``repro bench`` suite under pytest).

Runs the quick configuration of :func:`repro.bench.run_hotpath_suite` —
incremental sync vs full resync, argpartition vs argsort BFA scoring,
vectorized vs legacy nn kernels (forward_backward / bfa_iteration),
row-batched vs per-bit multi-bit hammer windows, controller fast path on
vs off for the hammer window and the fig6 swap chain, and defended vs
undefended window cost — writes the payload to the report sink, and
asserts every before/after pair kept functional parity.

Run directly for the command-line experience::

    PYTHONPATH=src python -m repro bench [--quick]
"""

from repro.bench import format_suite, run_hotpath_suite


def test_hotpath_suite_quick(report_sink):
    payload = run_hotpath_suite(quick=True)
    report_sink("hotpaths", format_suite(payload), payload)
    # Parity is the functional contract and is deterministic; the
    # wall-clock ratios are recorded in the JSON for trend review rather
    # than asserted, so machine load cannot flake the smoke run.
    for name, entry in payload["summary"].items():
        assert entry["parity"], f"{name}: fast/slow paths disagree"
