"""Section 5.2: semi-white-box BFA fails end-to-end through the DRAM path.

The defense-unaware attacker plans its flip sequence offline and replays it
through hammered activations against the *defended* DRAM.  Every planned
flip that targets a profiled (secured) row is refreshed away before
reaching ``T_RH``; accuracy does not move.
"""

import numpy as np

from repro.attacks import BfaConfig, semi_white_box_attack
from repro.core import DefendedDeployment
from repro.dram import DramGeometry, TimingParams
from repro.utils.tabulate import format_table


def run_experiment(preset):
    deployment = DefendedDeployment.build(
        preset.fresh_model(),
        preset.dataset,
        geometry=DramGeometry(
            banks=2, subarrays_per_bank=8, rows_per_subarray=64,
            row_bytes=256,
        ),
        timing=TimingParams(t_rh=1000),
        profile_rounds=2,
        profile_config=BfaConfig(max_iterations=8, exact_eval_top=4),
        attack_batch_size=96,
        seed=0,
    )
    rng = np.random.default_rng(1)
    x, y = preset.dataset.attack_batch(96, rng)
    result = semi_white_box_attack(
        deployment.qmodel, x, y,
        executor=deployment.hammer_executor(),
        config=BfaConfig(max_iterations=8, exact_eval_top=4),
        eval_x=preset.dataset.x_test, eval_y=preset.dataset.y_test,
    )
    return deployment, result


def test_semi_whitebox_fails(benchmark, report_sink, preset_resnet20):
    deployment, result = benchmark.pedantic(
        run_experiment, args=(preset_resnet20,), rounds=1, iterations=1
    )
    table = format_table(
        ["metric", "value"],
        [
            ["planned flips", len(result.planned_sequence)],
            ["landed", len(result.landed)],
            ["blocked by defense", len(result.blocked)],
            ["initial accuracy (%)", f"{result.initial_accuracy * 100:.2f}"],
            ["final accuracy (%)", f"{result.final_accuracy * 100:.2f}"],
            ["defender swaps executed", deployment.defender.stats.swaps_executed],
        ],
        title="Section 5.2 — semi-white-box BFA vs DNN-Defender (DRAM path)",
    )
    report_sink("semi_whitebox", table)
    assert result.planned_sequence
    assert len(result.blocked) >= len(result.planned_sequence) // 2
    assert result.accuracy_drop < 0.10
    assert deployment.defender.stats.swaps_executed > 0
