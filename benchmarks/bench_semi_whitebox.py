"""Section 5.2: semi-white-box BFA fails end-to-end through the DRAM path.

Thin wrapper over the ``semi-whitebox`` scenario: the defense-unaware
attacker plans its flip sequence offline and replays it through hammered
activations against the *defended* DRAM.  Every planned flip targeting a
profiled (secured) row is refreshed away before reaching ``T_RH``;
accuracy does not move.
"""


def test_semi_whitebox_fails(run_bench):
    run_bench("semi-whitebox", sink_name="semi_whitebox")
