"""Table 3: defense comparison on ResNet-20 / CIFAR-10-like.

Thin wrapper over the ``table3`` scenario: for each of ten defenses,
clean accuracy, post-attack accuracy, and the flip attempts the
attacker spent.  Reproduction targets (shape, not absolute numbers):
the undefended baseline collapses fastest; software defenses force
progressively more flips at some clean-accuracy cost; hardware swap
defenses keep accuracy high while the attacker burns flips;
DNN-Defender keeps the *clean* accuracy with zero drop.
"""


def test_table3_defense_comparison(run_bench):
    run_bench("table3", sink_name="table3_defense_comparison")
