"""Table 3: defense comparison on ResNet-20 / CIFAR-10-like.

Regenerates the paper's comparison of BFA defenses: for each defense we
report clean accuracy, post-attack accuracy, and the number of flip
attempts the attacker spent.  Reproduction targets (shape, not absolute
numbers): the undefended baseline collapses with the fewest flips; software
defenses (clustering, binary weights, capacity, reconstruction, RA-BNN)
force progressively more flips at some clean-accuracy cost; hardware swap
defenses keep accuracy high while the attacker burns flips; DNN-Defender
keeps the *clean* accuracy with zero drop.
"""

import numpy as np
import pytest

from repro.analysis import evaluate_defense_row
from repro.attacks import (
    BehavioralDefenseExecutor,
    BfaConfig,
    LogicalDefenseExecutor,
    profile_vulnerable_bits,
)
from repro.defenses.software import (
    ReconstructingExecutor,
    WeightReconstructionGuard,
    bake_binarization,
    enable_weight_binarization,
    finetune_with_clustering,
    width_scale_for_capacity,
)
from repro.nn import QuantizedModel, SGD, Tensor, fit, make_resnet20
from repro.nn import functional as F
from repro.presets import resnet20_cifar
from repro.utils.tabulate import format_table

MAX_ITER = 30
ATTACK_KW = dict(max_iterations=MAX_ITER, attack_batch=96, exact_eval_top=4)


def finetune_binary(model, dataset, epochs=3, lr=0.01, seed=0):
    """Short binarization-aware fine-tune, then bake the binary weights."""
    enable_weight_binarization(model)
    rng = np.random.default_rng(seed)
    optimizer = SGD(model.parameters(), lr=lr, momentum=0.9)
    n = dataset.x_train.shape[0]
    for _ in range(epochs):
        model.train()
        order = rng.permutation(n)
        for start in range(0, n, 64):
            idx = order[start:start + 64]
            optimizer.zero_grad()
            loss = F.cross_entropy(
                model(Tensor(dataset.x_train[idx])), dataset.y_train[idx]
            )
            loss.backward()
            optimizer.step()
    bake_binarization(model)
    model.eval()


def build_rows(preset):
    dataset = preset.dataset
    rows = []

    # 1. Undefended baseline.
    qmodel = QuantizedModel(preset.fresh_model())
    rows.append(evaluate_defense_row("baseline", qmodel, dataset, **ATTACK_KW))

    # 2. Piece-wise clustering.
    model = preset.fresh_model()
    finetune_with_clustering(model, dataset, epochs=2, lam=5e-4, lr=0.01)
    rows.append(
        evaluate_defense_row(
            "piece-wise clustering", QuantizedModel(model), dataset,
            **ATTACK_KW,
        )
    )

    # 3. Binary weights.
    model = preset.fresh_model()
    finetune_binary(model, dataset, epochs=2)
    rows.append(
        evaluate_defense_row(
            "binary weight", QuantizedModel(model), dataset, **ATTACK_KW
        )
    )

    # 4. Model capacity x4 (paper: x16; scaled to CI budget).
    wide_scale = width_scale_for_capacity(0.5, 4.0)
    wide = make_resnet20(num_classes=10, width_scale=wide_scale, seed=0)
    fit(wide, dataset, epochs=4, batch_size=64, lr=0.08, seed=0)
    rows.append(
        evaluate_defense_row(
            "model capacity x4", QuantizedModel(wide), dataset, **ATTACK_KW
        )
    )

    # 5. Weight reconstruction.
    qmodel = QuantizedModel(preset.fresh_model())
    guard = WeightReconstructionGuard(qmodel, percentile=99.0)
    from repro.attacks import SoftwareFlipExecutor
    executor = ReconstructingExecutor(SoftwareFlipExecutor(qmodel), guard)
    rows.append(
        evaluate_defense_row(
            "weight reconstruction", qmodel, dataset, executor=executor,
            **ATTACK_KW,
        )
    )

    # 6. RA-BNN-like (binary weights + binary activations).
    from repro.defenses.software import SignActivation
    rabnn = make_resnet20(
        num_classes=10, width_scale=0.5, seed=0,
        activation_factory=SignActivation,
    )
    fit(rabnn, dataset, epochs=4, batch_size=64, lr=0.05, seed=0)
    finetune_binary(rabnn, dataset, epochs=2)
    rows.append(
        evaluate_defense_row(
            "RA-BNN (binary w+a)", QuantizedModel(rabnn), dataset, **ATTACK_KW
        )
    )

    # 7/8/9. RRS / SRS / SHADOW behavioural models.
    for name, block, collateral in (
        ("RRS", 0.92, 0.6),
        ("SRS", 0.92, 0.55),
        ("SHADOW", 0.97, 0.3),
    ):
        qmodel = QuantizedModel(preset.fresh_model())
        executor = BehavioralDefenseExecutor(
            qmodel, block_prob=block, collateral_prob=collateral,
            rng=np.random.default_rng(7),
        )
        rows.append(
            evaluate_defense_row(
                name, qmodel, dataset, executor=executor, **ATTACK_KW
            )
        )

    # 10. DNN-Defender: profiled bits secure their DRAM rows (the paper's
    # protection granularity), adaptive white-box attacker.
    qmodel = QuantizedModel(preset.fresh_model())
    rng = np.random.default_rng(0)
    x, y = dataset.attack_batch(96, rng)
    profile = profile_vulnerable_bits(
        qmodel, x, y, rounds=6, config=BfaConfig(max_iterations=10,
                                                 exact_eval_top=4)
    )
    from repro.analysis.defense_eval import expand_bits_to_rows
    secured = expand_bits_to_rows(qmodel, profile.all_bits)
    executor = LogicalDefenseExecutor(qmodel, secured)
    rows.append(
        evaluate_defense_row(
            "DNN-Defender", qmodel, dataset, executor=executor, **ATTACK_KW
        )
    )
    return rows


def test_table3_defense_comparison(benchmark, report_sink, preset_resnet20):
    rows = benchmark.pedantic(
        build_rows, args=(preset_resnet20,), rounds=1, iterations=1
    )
    table = format_table(
        ["defense", "clean acc (%)", "post-attack acc (%)", "flip attempts"],
        [
            [r.name, f"{r.clean_accuracy * 100:.2f}",
             f"{r.post_attack_accuracy * 100:.2f}", r.bit_flips]
            for r in rows
        ],
        title="Table 3 — defense comparison (ResNet-20, CIFAR-10-like)",
    )
    report_sink("table3_defense_comparison", table)
    by_name = {r.name: r for r in rows}
    baseline = by_name["baseline"]
    dd = by_name["DNN-Defender"]
    # Baseline collapses hard.
    assert baseline.post_attack_accuracy < baseline.clean_accuracy - 0.4
    # DNN-Defender: no clean-accuracy drop and the best post-attack accuracy.
    assert dd.post_attack_accuracy >= dd.clean_accuracy - 0.05
    for r in rows:
        assert dd.post_attack_accuracy >= r.post_attack_accuracy - 0.02
    # Hardware swap defenses retain far more accuracy than the baseline.
    for name in ("RRS", "SRS", "SHADOW"):
        assert by_name[name].post_attack_accuracy > baseline.post_attack_accuracy
    # DNN-Defender's post-attack accuracy beats SHADOW's (paper ordering).
    assert dd.post_attack_accuracy >= by_name["SHADOW"].post_attack_accuracy
