"""Fig. 9: adaptive white-box BFA vs the secured-bit budget.

Three panels — (a) VGG-11 / CIFAR-10-like, (b) ResNet-18 / ImageNet-like,
(c) ResNet-34 / ImageNet-like.  For growing secured-bit budgets (obtained
with more profiling rounds, the paper's protection-level knob), the
defense-aware attacker skips every secured bit and spends extra flips on
the best unprotected ones.  Reproduction target: more secured bits =>
slower degradation, approaching the random-attack level (the paper's
2k -> 24k sweep shows ~6x more flips needed for equal damage on VGG-11).
"""

import pytest

from repro.analysis import format_secured_bits_curves, secured_bits_sweep
from repro.attacks import BfaConfig


def run_sweep(preset):
    return secured_bits_sweep(
        preset.factory,
        preset.state,
        preset.dataset,
        round_budgets=(1, 2, 4),
        extra_flip_budget=12,
        attack_batch=96,
        profile_config=BfaConfig(max_iterations=8, exact_eval_top=4),
        seed=0,
    )


def check_and_report(curves, preset, report_sink, panel):
    text = format_secured_bits_curves(curves)
    text += f"\nmodel: {preset.name}, clean accuracy "
    text += f"{preset.clean_accuracy * 100:.2f}%"
    report_sink(f"fig9{panel}_secured_bits_{preset.name}", text)
    # Budgets grow with rounds (the paper's protection-level knob).
    budgets = [c.secured_bits for c in curves]
    assert budgets == sorted(budgets)
    assert budgets[0] > 0
    # More secured bits slows early degradation: after the first couple of
    # extra flips the largest budget retains at least as much accuracy as
    # the smallest (the Fig. 9 separation between SB curves).
    early_small = curves[0].accuracies[min(2, len(curves[0].accuracies) - 1)]
    early_large = curves[-1].accuracies[min(2, len(curves[-1].accuracies) - 1)]
    assert early_large >= early_small - 0.05


@pytest.mark.parametrize("panel", ["a"])
def test_fig9a_vgg11(benchmark, report_sink, preset_vgg11, panel):
    curves = benchmark.pedantic(
        run_sweep, args=(preset_vgg11,), rounds=1, iterations=1
    )
    check_and_report(curves, preset_vgg11, report_sink, panel)


@pytest.mark.parametrize("panel", ["b"])
def test_fig9b_resnet18(benchmark, report_sink, preset_resnet18, panel):
    curves = benchmark.pedantic(
        run_sweep, args=(preset_resnet18,), rounds=1, iterations=1
    )
    check_and_report(curves, preset_resnet18, report_sink, panel)


@pytest.mark.parametrize("panel", ["c"])
def test_fig9c_resnet34(benchmark, report_sink, preset_resnet34, panel):
    curves = benchmark.pedantic(
        run_sweep, args=(preset_resnet34,), rounds=1, iterations=1
    )
    check_and_report(curves, preset_resnet34, report_sink, panel)
