"""Fig. 9: adaptive white-box BFA vs the secured-bit budget.

Thin wrappers over the ``fig9a``/``fig9b``/``fig9c`` scenarios — three
panels: (a) VGG-11 / CIFAR-10-like, (b) ResNet-18 / ImageNet-like,
(c) ResNet-34 / ImageNet-like.  For growing secured-bit budgets
(obtained with more profiling rounds, the paper's protection-level
knob), the defense-aware attacker skips every secured bit and spends
extra flips on the best unprotected ones; more secured bits means
slower degradation, approaching the random-attack level.
"""


def test_fig9a_vgg11(run_bench):
    run_bench("fig9a", sink_name="fig9a_secured_bits")


def test_fig9b_resnet18(run_bench):
    run_bench("fig9b", sink_name="fig9b_secured_bits")


def test_fig9c_resnet34(run_bench):
    run_bench("fig9c", sink_name="fig9c_secured_bits")
