"""Ablations of DNN-Defender's design choices (DESIGN.md section 5).

1. Pipelining: the Fig. 6 overlap cuts the per-chain AAP count from ``4n``
   to ``3n + 1`` and the analytic latency accordingly.
2. Priority protection: securing profiler-chosen bits beats securing the
   same number of random bits at equal budget.
3. Non-target refresh (swap step 4): opportunistic refreshes cover victim
   rows beyond the target set.
"""

import numpy as np

from repro.analysis import latency_per_tref_ms
from repro.attacks import BfaConfig, LogicalDefenseExecutor, profile_vulnerable_bits, sample_random_bits, white_box_adaptive_attack
from repro.dram import TimingParams
from repro.nn import QuantizedModel
from repro.utils.tabulate import format_table


def run_ablation(preset):
    dataset = preset.dataset
    rng = np.random.default_rng(0)
    x, y = dataset.attack_batch(96, rng)
    config = BfaConfig(max_iterations=10, exact_eval_top=4)

    # --- priority protection vs random protection at equal budget -------- #
    qmodel = QuantizedModel(preset.fresh_model())
    profile = profile_vulnerable_bits(qmodel, x, y, rounds=6, config=config)
    secured = profile.all_bits
    budget = len(secured)

    results = {}
    for label, bits in (
        ("priority", secured),
        ("random", set(sample_random_bits(qmodel, budget,
                                          np.random.default_rng(3)))),
    ):
        victim = QuantizedModel(preset.fresh_model())
        executor = LogicalDefenseExecutor(victim, bits)
        outcome = white_box_adaptive_attack(
            victim, x, y, executor, bits,
            config=BfaConfig(max_iterations=6, exact_eval_top=4),
            eval_x=dataset.x_test, eval_y=dataset.y_test,
        )
        results[label] = outcome.final_accuracy

    # --- pipelining: analytic latency below the saturation point --------- #
    timing = TimingParams(t_rh=4000)
    latency_pipe = latency_per_tref_ms("dnn-defender", 7000, timing)
    latency_flat = latency_per_tref_ms("dnn-defender-unpipelined", 7000,
                                       timing)
    return results, budget, latency_pipe, latency_flat


def test_ablation_defender(benchmark, report_sink, preset_resnet20):
    results, budget, latency_pipe, latency_flat = benchmark.pedantic(
        run_ablation, args=(preset_resnet20,), rounds=1, iterations=1
    )
    table = format_table(
        ["ablation", "value"],
        [
            ["secured-bit budget", budget],
            ["post-attack acc, priority bits (%)",
             f"{results['priority'] * 100:.2f}"],
            ["post-attack acc, random bits (%)",
             f"{results['random'] * 100:.2f}"],
            ["latency/T_ref pipelined (ms)", f"{latency_pipe:.2f}"],
            ["latency/T_ref unpipelined (ms)", f"{latency_flat:.2f}"],
        ],
        title="Ablations — priority protection and swap pipelining",
    )
    report_sink("ablation_defender", table)
    # Priority protection strictly helps at equal budget.
    assert results["priority"] >= results["random"]
    # Pipelining strictly reduces latency below the saturation point.
    assert latency_pipe < latency_flat
