"""Ablations of DNN-Defender's design choices (DESIGN.md section 5).

Thin wrapper over the ``ablation`` scenario:

1. Pipelining: the Fig. 6 overlap cuts the per-chain AAP count from
   ``4n`` to ``3n + 1`` and the analytic latency accordingly.
2. Priority protection: securing profiler-chosen bits beats securing the
   same number of random bits at equal budget.
"""


def test_ablation_defender(run_bench):
    run_bench("ablation", sink_name="ablation_defender")
