"""Why victim-focused beats aggressor-focused under a white-box attacker.

Section 1's key argument, demonstrated live on the DRAM simulator: RRS
swaps the *aggressor* row, which stops an attacker that hammers by address —
but a white-box attacker simply tracks the victim and hammers whatever row
is physically adjacent, walking straight through RRS.  SHADOW and
DNN-Defender relocate the *victim*, which survives both attacker modes.

Also runs the T-BFA targeted attack (the stealthier objective the threat
model cites) against the same protection machinery.

Run:  python examples/baseline_defenses.py
"""

import numpy as np

from repro.analysis import expand_bits_to_rows
from repro.attacks import (
    LogicalDefenseExecutor,
    RowHammerAttacker,
    TargetedBitFlipAttack,
    TbfaConfig,
)
from repro.defenses import RandomizedRowSwap, Shadow
from repro.dram import DramDevice, DramGeometry, MemoryController, TimingParams
from repro.mapping import WeightLayout
from repro.nn import QuantizedModel
from repro.nn.quant import BitLocation
from repro.presets import resnet20_cifar

GEOMETRY = DramGeometry(
    banks=4, subarrays_per_bank=8, rows_per_subarray=64, row_bytes=256
)


def try_flip(preset, defense_factory, track_swaps):
    """Deploy a fresh model, arm one defense, attempt one hammered flip."""
    qmodel = QuantizedModel(preset.fresh_model())
    controller = MemoryController(DramDevice(GEOMETRY), TimingParams(t_rh=1000))
    layout = WeightLayout(qmodel, controller, seed=0)
    defense = defense_factory(controller)
    attacker = RowHammerAttacker(
        controller, layout, defense=defense, track_swaps=track_swaps
    )
    return attacker.attempt_flip(BitLocation(0, 0, 7), max_windows=3)


def main() -> None:
    preset = resnet20_cifar(width_scale=0.5, image_hw=8, epochs=4)

    print("=== Aggressor- vs victim-focused under both attacker modes ===")
    print(f"{'defense':<10} {'addr-based attacker':>20} "
          f"{'victim-tracking attacker':>26}")
    for name, factory in (
        ("RRS", lambda mc: RandomizedRowSwap(mc, seed=1)),
        ("SHADOW", lambda mc: Shadow(mc, seed=1)),
    ):
        blocked_naive = not try_flip(preset, factory, track_swaps=False)
        blocked_whitebox = not try_flip(preset, factory, track_swaps=True)
        print(f"{name:<10} {'blocked' if blocked_naive else 'FLIPPED':>20} "
              f"{'blocked' if blocked_whitebox else 'FLIPPED':>26}")
    print("(RRS stops the naive attacker but not the white-box one; "
          "victim-focused SHADOW stops both — as does DNN-Defender, see "
          "examples/defended_deployment.py.)")

    print("\n=== T-BFA: targeted misclassification, with and without "
          "defense ===")
    rng = np.random.default_rng(0)
    x, y = preset.dataset.attack_batch(128, rng)
    config = TbfaConfig(source_class=0, target_class=1, max_iterations=12,
                        exact_eval_top=4)
    victim = QuantizedModel(preset.fresh_model())
    probe = TargetedBitFlipAttack(victim, x, y, config)
    snap = victim.snapshot()
    undefended = probe.run()
    print(f"undefended: source->target success "
          f"{undefended.initial_success_rate:.0%} -> "
          f"{undefended.final_success_rate:.0%} with "
          f"{len(undefended.flips)} flips "
          f"(other-class accuracy {undefended.final_other_accuracy:.0%})")
    victim.restore(snap)
    # Secure at DRAM-row granularity, as the real defense does.
    secured = expand_bits_to_rows(victim, set(undefended.flips))
    defended = TargetedBitFlipAttack(
        victim, x, y, config,
        executor=LogicalDefenseExecutor(victim, secured),
    )
    result = defended.run()
    print(f"defended:   source->target success "
          f"{result.initial_success_rate:.0%} -> "
          f"{result.final_success_rate:.0%} "
          f"(secured bits blocked; attacker forced onto weaker bits)")


if __name__ == "__main__":
    main()
