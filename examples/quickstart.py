"""Quickstart: train, quantize, attack, defend — in about a minute.

Walks the full DNN-Defender story on a small model:

1. train a ResNet-20 on the synthetic CIFAR-10 stand-in;
2. quantize it to 8-bit and run the Bit-Flip Attack — accuracy collapses
   after a handful of targeted flips;
3. profile the vulnerable bits (the defender runs the attacker's own
   search), secure them, and re-run the defense-aware attack — accuracy
   holds.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import expand_bits_to_rows
from repro.attacks import (
    BfaConfig,
    BitFlipAttack,
    LogicalDefenseExecutor,
    profile_vulnerable_bits,
    white_box_adaptive_attack,
)
from repro.nn import QuantizedModel
from repro.presets import resnet20_cifar


def main() -> None:
    print("=== 1. Train (synthetic CIFAR-10 stand-in) ===")
    preset = resnet20_cifar()
    print(f"clean accuracy: {preset.clean_accuracy:.2%}")

    rng = np.random.default_rng(0)
    attack_x, attack_y = preset.dataset.attack_batch(96, rng)
    config = BfaConfig(max_iterations=15, stop_accuracy=0.15,
                       exact_eval_top=4)

    print("\n=== 2. Bit-Flip Attack on the undefended model ===")
    victim = QuantizedModel(preset.fresh_model())
    attack = BitFlipAttack(
        victim, attack_x, attack_y, config=config,
        eval_x=preset.dataset.x_test, eval_y=preset.dataset.y_test,
    )
    result = attack.run()
    print(f"flips: {result.num_flips}  "
          f"accuracy: {result.initial_accuracy:.2%} -> "
          f"{result.final_accuracy:.2%}")

    print("\n=== 3. DNN-Defender: profile, secure, re-attack ===")
    defended = QuantizedModel(preset.fresh_model())
    profile = profile_vulnerable_bits(
        defended, attack_x, attack_y, rounds=6,
        config=BfaConfig(max_iterations=10, exact_eval_top=4),
    )
    # DNN-Defender protects DRAM rows: each profiled bit secures the whole
    # row's worth of weights around it.
    secured = expand_bits_to_rows(defended, profile.all_bits)
    print(f"profiling rounds: {profile.num_rounds}  "
          f"secured bits: {len(secured)} "
          f"({len(secured) / defended.total_bits:.1%} of model bits)")
    executor = LogicalDefenseExecutor(defended, secured)
    adaptive = white_box_adaptive_attack(
        defended, attack_x, attack_y, executor, secured,
        config=BfaConfig(max_iterations=15, exact_eval_top=4),
        eval_x=preset.dataset.x_test, eval_y=preset.dataset.y_test,
    )
    print(f"adaptive attack flips: {adaptive.num_flips}  "
          f"accuracy: {adaptive.initial_accuracy:.2%} -> "
          f"{adaptive.final_accuracy:.2%}")
    print("\nAt an equal flip budget the undefended BFA collapses the "
          "model while the defense-aware attacker, locked out of every "
          "profiled row, inflicts a fraction of the damage (Fig. 9's "
          "mechanism; see benchmarks for the full sweeps).")


if __name__ == "__main__":
    main()
