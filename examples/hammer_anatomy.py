"""Anatomy of a RowHammer flip and the four-step swap that stops it.

A microscope view of the DRAM substrate, no DNN involved:

1. hammer an aggressor row to the threshold -> watch the victim's declared
   bit flip;
2. repeat with DNN-Defender's four-step swap running -> the victim's data
   is relocated and refreshed inside the window, and nothing flips;
3. print the Fig. 6 pipelined timeline for a chain of swaps.

Run:  python examples/hammer_anatomy.py
"""

import numpy as np

from repro.core import SwapEngine, build_timeline
from repro.dram import (
    DramDevice,
    DramGeometry,
    MemoryController,
    RowAddress,
    TimingParams,
)

GEOMETRY = DramGeometry(
    banks=1, subarrays_per_bank=2, rows_per_subarray=32, row_bytes=64
)
TIMING = TimingParams(t_rh=1000)


def hammer_until_threshold(controller, aggressor, chunks=4):
    per_chunk = TIMING.t_rh // chunks
    for _ in range(chunks):
        controller.activate(aggressor, actor="attacker", count=per_chunk,
                            hammer=True)


def main() -> None:
    rng = np.random.default_rng(0)

    print("=== 1. Undefended: the flip lands ===")
    controller = MemoryController(DramDevice(GEOMETRY), TIMING)
    controller.device.fill_random(rng)
    victim = RowAddress(0, 0, 10)
    aggressor = RowAddress(0, 0, 11)
    target_bit = 42
    before = controller.peek_logical(victim)[target_bit // 8]
    controller.declare_attack_targets(victim, [target_bit])
    hammer_until_threshold(controller, aggressor)
    after = controller.peek_logical(victim)[target_bit // 8]
    print(f"victim byte before/after: {before:#04x} -> {after:#04x}")
    print(f"flips logged: {controller.device.fault_log.total_flips}")

    print("\n=== 2. Defended: swap inside the window, no flip ===")
    controller = MemoryController(DramDevice(GEOMETRY), TIMING)
    controller.device.fill_random(rng)
    engine = SwapEngine(controller, reserved_rows=2)
    controller.declare_attack_targets(victim, [target_bit])
    data_before = controller.peek_logical(victim).copy()
    per_chunk = TIMING.t_rh // 4
    for chunk in range(4):
        # The defender refreshes the victim mid-window (Fig. 5's swap).
        if chunk == 2:
            record = engine.swap_target(victim, np.random.default_rng(1))
            print(f"swap: victim now physically at "
                  f"{controller.indirection.physical(victim)} "
                  f"(was {victim}); swapped with {record.random_logical}")
        controller.activate(aggressor, actor="attacker", count=per_chunk,
                            hammer=True)
    data_after = controller.peek_logical(victim)
    print(f"victim data intact: {np.array_equal(data_before, data_after)}")
    print(f"flips logged: {controller.device.fault_log.total_flips}")

    print("\n=== 3. Fig. 6 — pipelined swap timeline (3 swaps) ===")
    for entry in build_timeline(3, TIMING, pipelined=True):
        shared = "  (shared with next swap's step 1)" if entry.shared_with_next else ""
        print(f"swap {entry.swap} step {entry.step}: "
              f"slot {entry.slot:2d}  {entry.start_ns:5.0f}-"
              f"{entry.end_ns:5.0f} ns  {entry.description}{shared}")


if __name__ == "__main__":
    main()
