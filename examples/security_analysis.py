"""Security and cost analysis of DNN-Defender vs prior mitigations.

Prints the paper's hardware-side evaluation from the analytical models:
Table 2 (overhead), Fig. 8a (time-to-break + defendable BFAs), Fig. 8b
(latency per refresh interval), and the Section 5.1 power claims.

Run:  python examples/security_analysis.py
"""

from repro.analysis import (
    format_latency_sweep,
    format_security_sweep,
    latency_sweep,
    power_comparison,
    security_sweep,
    table2_rows,
)
from repro.dram import PAPER_GEOMETRY
from repro.utils.tabulate import format_table


def main() -> None:
    print(format_table(
        ["framework", "involved memory", "capacity overhead", "area",
         "derived"],
        table2_rows(),
        title=f"Table 2 — overhead on {PAPER_GEOMETRY.describe()}",
    ))
    print()
    print(format_security_sweep(security_sweep()))
    print()
    print(format_latency_sweep(latency_sweep(thresholds=(1000, 4000))))
    print()
    power = power_comparison()
    print("Section 5.1 power claims:")
    print(f"  total-power saving vs SHADOW@1k: "
          f"{power['saving_vs_shadow_1k_percent']:.2f}% (paper: 1.6%)")
    print(f"  defense-power improvement vs SRS: "
          f"{power['improvement_vs_srs']:.2f}x (paper: 3.4x)")


if __name__ == "__main__":
    main()
