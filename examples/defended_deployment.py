"""End-to-end defended deployment on the full DRAM simulator.

This is the complete Fig. 7 pipeline: train a ResNet-20, quantize it to
8-bit, place the weights into a simulated DRAM module, profile vulnerable
bits, stand up DNN-Defender over the resulting protection plan, and attack
through *hammered activations* — the attacker's ACT streams and the
defender's RowClone swaps interleave on the memory controller's clock.

Run:  python examples/defended_deployment.py
"""

import numpy as np

from repro.attacks import BfaConfig, semi_white_box_attack
from repro.core import DefendedDeployment
from repro.dram import DramGeometry, TimingParams
from repro.presets import resnet20_cifar


def main() -> None:
    print("=== Train + deploy into defended DRAM ===")
    preset = resnet20_cifar(width_scale=0.5, image_hw=8, epochs=5)
    deployment = DefendedDeployment.build(
        preset.fresh_model(),
        preset.dataset,
        geometry=DramGeometry(
            banks=2, subarrays_per_bank=8, rows_per_subarray=64,
            row_bytes=256,
        ),
        timing=TimingParams(t_rh=1000),
        profile_rounds=2,
        profile_config=BfaConfig(max_iterations=8, exact_eval_top=4),
        attack_batch_size=96,
        seed=0,
    )
    plan = deployment.protection.plan
    print(f"clean accuracy:   {deployment.accuracy():.2%}")
    print(f"secured bits:     {len(plan.secured_bits)}")
    print(f"target rows:      {plan.num_target_rows}")
    print(f"non-target rows:  {len(plan.non_target_rows)}")
    print(f"weight rows:      {deployment.layout.num_rows}")

    print("\n=== Semi-white-box BFA through hammered DRAM ===")
    rng = np.random.default_rng(1)
    x, y = preset.dataset.attack_batch(96, rng)
    result = semi_white_box_attack(
        deployment.qmodel, x, y,
        executor=deployment.hammer_executor(),
        config=BfaConfig(max_iterations=8, exact_eval_top=4),
        eval_x=preset.dataset.x_test, eval_y=preset.dataset.y_test,
    )
    stats = deployment.defender.stats
    print(f"planned flips:    {len(result.planned_sequence)}")
    print(f"landed / blocked: {len(result.landed)} / {len(result.blocked)}")
    print(f"accuracy:         {result.initial_accuracy:.2%} -> "
          f"{result.final_accuracy:.2%}")
    print(f"defender swaps:   {stats.swaps_executed} "
          f"(+{stats.non_targets_refreshed} non-target refreshes)")
    print(f"defender latency: "
          f"{deployment.defender.latency_per_tref_ms():.3f} ms per T_ref")
    print("\nThe planned sequence targeted profiled rows; the defender's "
          "swaps refreshed them inside every hammer window, so the attack "
          "landed almost nothing.")


if __name__ == "__main__":
    main()
