"""Scenario registry: declarative specs for every experiment the repo runs.

A *scenario* is one paper figure/table (``fig8a``, ``table3`` …) or a
sweep grid, described declaratively: a trial function (one seeded
Monte-Carlo trial), optional aggregate checks (the reproduction
assertions), and an optional report formatter.  The registry is the single
source of truth shared by the pytest benchmarks, the ``python -m repro``
CLI, and any future service — all three resolve scenarios by name and
execute them through :func:`repro.experiments.runner.run_scenario`.

Registering a scenario::

    @scenario("fig8a", title="Time-to-break vs T_RH", source="Fig. 8a")
    def fig8a(ctx):
        points = security_sweep()
        return {"metrics": {...flat floats...}, "detail": {...json...}}

    @fig8a.check
    def _check(result):
        assert result.metric("dd_4k_days") > result.metric("shadow_4k_days")

    @fig8a.reporter
    def _report(result):
        return format_table(...)

The trial function receives a :class:`repro.experiments.runner.TrialContext`
and returns ``{"metrics": {name: scalar}, "detail": <any JSON>}``.
Metrics are aggregated (mean/std/CI) across trials; ``detail`` is kept
from the first trial for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = [
    "Scenario",
    "scenario",
    "register",
    "unregister",
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
]

_REGISTRY: dict[str, "Scenario"] = {}


@dataclass
class Scenario:
    """One registered experiment.

    Attributes:
        name: CLI-facing identifier (``fig8b``, ``sweep-defense-grid`` …).
        trial_fn: Runs one seeded trial; returns metrics + detail.
        title: One-line human description (shown by ``repro list``).
        source: Paper anchor, e.g. ``"Fig. 8(b)"`` or ``"Table 3"``.
        presets: Names of trained presets the trial loads (informational;
            lets the CLI warn about cold-cache cost up front).
        deterministic: True when trials are seed-independent (analytical
            models) — extra trials only confirm a std of zero.
        tags: Free-form labels for filtering (``"paper"``, ``"sweep"`` …).
        default_trials: Trial count used when the caller does not specify.
        trial_cost: Optional ``(trial_index, params) -> float`` hint of a
            trial's *relative* cost.  Purely a scheduling hint: the
            sharded backend leases predicted-expensive trials first so
            stragglers surface early where work stealing can absorb
            them.  Never affects results — only wall-clock.
    """

    name: str
    trial_fn: Callable
    title: str = ""
    source: str = ""
    presets: tuple[str, ...] = ()
    deterministic: bool = False
    tags: tuple[str, ...] = ()
    default_trials: int = 1
    trial_cost: Callable | None = field(default=None, repr=False)
    check_fn: Callable | None = field(default=None, repr=False)
    report_fn: Callable | None = field(default=None, repr=False)

    # -- decorator hooks ------------------------------------------------ #

    def check(self, fn: Callable) -> Callable:
        """Attach the aggregate assertion function (decorator)."""
        self.check_fn = fn
        return fn

    def reporter(self, fn: Callable) -> Callable:
        """Attach the text-report formatter (decorator)."""
        self.report_fn = fn
        return fn

    # -- execution helpers ---------------------------------------------- #

    def run_trial(self, ctx) -> dict:
        """Run one trial; normalise the payload shape."""
        payload = self.trial_fn(ctx)
        if not isinstance(payload, dict):
            raise TypeError(
                f"scenario {self.name!r} trial returned "
                f"{type(payload).__name__}, expected dict"
            )
        metrics = payload.get("metrics", {})
        for key, value in metrics.items():
            if not isinstance(value, (int, float)):
                raise TypeError(
                    f"scenario {self.name!r} metric {key!r} is "
                    f"{type(value).__name__}; metrics must be scalars"
                )
        return {"metrics": metrics, "detail": payload.get("detail", {})}

    def run_checks(self, result) -> None:
        """Run reproduction assertions against an aggregate result.

        Raises ``AssertionError`` on failure; no-op when the scenario has
        no registered checks.
        """
        if self.check_fn is not None:
            self.check_fn(result)

    def render_report(self, result) -> str:
        """Human-readable report; falls back to a metric listing."""
        if self.report_fn is not None:
            return self.report_fn(result)
        lines = [f"{self.name} — {self.title}"]
        for key in sorted(result.metrics):
            stats = result.metrics[key]
            lines.append(f"  {key}: {stats.mean:.6g} ± {stats.ci95:.2g}")
        return "\n".join(lines)


def register(spec: Scenario) -> Scenario:
    """Add ``spec`` to the registry; duplicate names are an error."""
    if spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a scenario (used by tests registering throwaway scenarios)."""
    _REGISTRY.pop(name, None)


def scenario(
    name: str,
    *,
    title: str = "",
    source: str = "",
    presets: tuple[str, ...] = (),
    deterministic: bool = False,
    tags: tuple[str, ...] = (),
    default_trials: int = 1,
    trial_cost: Callable | None = None,
) -> Callable[[Callable], Scenario]:
    """Decorator: register the wrapped trial function as a scenario.

    Returns the :class:`Scenario` (not the raw function), so ``.check``
    and ``.reporter`` can be used as attachment decorators.
    """

    def wrap(fn: Callable) -> Scenario:
        return register(
            Scenario(
                name=name,
                trial_fn=fn,
                title=title,
                source=source,
                presets=tuple(presets),
                deterministic=deterministic,
                tags=tuple(tags),
                default_trials=default_trials,
                trial_cost=trial_cost,
            )
        )

    return wrap


def get_scenario(name: str) -> Scenario:
    """Resolve a scenario by name; raise with the catalogue on miss."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"unknown scenario {name!r}; registered scenarios: {known}"
        ) from None


def scenario_names() -> list[str]:
    """Sorted names of all registered scenarios."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def iter_scenarios(tag: str | None = None) -> Iterator[Scenario]:
    """Iterate scenarios in name order, optionally filtered by tag."""
    _ensure_builtins()
    for name in sorted(_REGISTRY):
        spec = _REGISTRY[name]
        if tag is None or tag in spec.tags:
            yield spec


def _ensure_builtins() -> None:
    """Import the built-in scenario definitions exactly once.

    Lets ``registry`` be imported standalone (e.g. by worker processes or
    tests) while still guaranteeing the paper scenarios are present
    whenever the registry is queried.

    ``REPRO_SCENARIO_MODULES`` (comma-separated module names) names extra
    modules to import for their registration side effects.  Shard worker
    subprocesses (``repro run --shard i/N``) start from a fresh
    interpreter, so scenarios registered dynamically by the coordinating
    process are invisible to them unless they live in an importable
    module named here.
    """
    import importlib

    import repro.experiments.scenarios  # noqa: F401  (registers on import)
    import repro.experiments.tournament  # noqa: F401  (registers on import)

    from repro.utils.env import env_str

    extra = env_str("REPRO_SCENARIO_MODULES", "")
    for module in filter(None, (m.strip() for m in extra.split(","))):
        importlib.import_module(module)
