"""Disk caches: trained presets and attack profiles.

Every experiment that needs a victim model used to retrain its preset from
scratch at session start — by far the dominant cost of a benchmark run.
:class:`PresetCache` keys a :class:`repro.presets.PresetSpec` by the
SHA-256 of its full recipe and stores the trained ``state_dict`` (plus the
training history) as a compressed ``.npz`` under the cache root.  A warm
load rebuilds the dataset and factory in milliseconds and adopts the
stored weights, skipping training entirely.

The cache root resolves, in order: the ``root`` argument, the
``REPRO_CACHE_DIR`` environment variable, then
``~/.cache/dnn-defender-repro/presets``.  Worker processes of the parallel
runner share the same root, so a preset trained by one trial is a disk hit
for every later trial, process, and session.

An in-process memo sits in front of the disk layer so repeated
``load(...)`` calls inside one process (e.g. the three Fig. 9 panels
sharing ResNet-34) pay the ``.npz`` read once.

:class:`ProfileCache` applies the same pattern to the *other* dominant
experiment cost: multi-round vulnerable-bit profiling
(:func:`repro.attacks.profile.profile_vulnerable_bits`), which re-runs the
full BFA search ``r`` times per defended trial.  Profiles are keyed by the
preset recipe hash plus the attack configuration (rounds, search knobs,
batch, seed), and stored as ``.npz`` under a sibling ``profiles/``
directory; ``repro cache info`` lists both kinds.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib

import numpy as np

from repro.presets import PresetSpec, TrainedPreset, preset_spec
from repro.utils.env import env_str

__all__ = [
    "PresetCache",
    "ProfileCache",
    "default_cache_root",
    "default_profile_root",
]

_STATE_PREFIX = "state/"
_META_KEY = "__meta__"
# Bump when TrainedPreset/fit semantics change in a way that invalidates
# previously stored weights.
# v2: SGD stopped applying weight decay to biases and BatchNorm
# gamma/beta (the standard recipe), which changes every trained preset.
CACHE_FORMAT_VERSION = 2


def default_cache_root() -> pathlib.Path:
    """Resolve the preset-cache directory (env override, then ~/.cache)."""
    env = env_str("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "dnn-defender-repro" / "presets"


def default_profile_root() -> pathlib.Path:
    """Resolve the attack-profile cache directory.

    ``REPRO_PROFILE_DIR`` pins the profile cache exactly (the sharded
    backend uses it to point workers at the coordinator's cache root);
    otherwise ``REPRO_CACHE_DIR`` (the preset-cache override) nests
    profiles in a ``profiles/`` subdirectory so tests pointing the cache
    at a tmp dir isolate both kinds at once.
    """
    env = env_str("REPRO_PROFILE_DIR")
    if env:
        return pathlib.Path(env)
    env = env_str("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env) / "profiles"
    return pathlib.Path.home() / ".cache" / "dnn-defender-repro" / "profiles"


class PresetCache:
    """Content-addressed store of trained preset weights.

    Args:
        root: Cache directory; created lazily on first store.  ``None``
            uses :func:`default_cache_root`.

    Attributes:
        hits / misses: Disk-level counters (memo hits count as hits).
    """

    def __init__(self, root: str | pathlib.Path | None = None):
        self.root = pathlib.Path(root) if root is not None else default_cache_root()
        self.hits = 0
        self.misses = 0
        self._memo: dict[str, TrainedPreset] = {}

    # ------------------------------------------------------------------ #
    # Keys and paths
    # ------------------------------------------------------------------ #

    @staticmethod
    def key_for(spec: PresetSpec) -> str:
        """SHA-256 over the full recipe + cache format version."""
        payload = json.dumps(
            {"version": CACHE_FORMAT_VERSION, "spec": spec.config_dict()},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def path_for(self, spec: PresetSpec) -> pathlib.Path:
        """On-disk ``.npz`` location for ``spec``."""
        return self.root / f"{spec.name}-{self.key_for(spec)[:16]}.npz"

    # ------------------------------------------------------------------ #
    # Load / store
    # ------------------------------------------------------------------ #

    def load(self, name: str, **overrides) -> TrainedPreset:
        """Return the trained preset ``name``, training on a cache miss.

        ``overrides`` patch any :class:`PresetSpec` field (e.g.
        ``epochs=1, min_accuracy=0.0`` for a throwaway test preset) and
        participate in the cache key.
        """
        return self.load_spec(preset_spec(name, **overrides))

    def load_spec(self, spec: PresetSpec) -> TrainedPreset:
        """Like :meth:`load`, for an already-built spec."""
        key = self.key_for(spec)
        memoised = self._memo.get(key)
        if memoised is not None:
            self.hits += 1
            return memoised
        path = self.path_for(spec)
        if path.exists():
            state, history = self._read(path)
            preset = spec.realise(state=state, history=history)
            self.hits += 1
        else:
            self.misses += 1
            preset = spec.realise()
            self._write(path, spec, preset)
        self._memo[key] = preset
        return preset

    def _read(self, path: pathlib.Path):
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive[_META_KEY]))
            state = {
                key[len(_STATE_PREFIX):]: archive[key]
                for key in archive.files
                if key.startswith(_STATE_PREFIX)
            }
        return state, meta["history"]

    def _write(
        self, path: pathlib.Path, spec: PresetSpec, preset: TrainedPreset
    ) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        meta = json.dumps(
            {
                "spec": spec.config_dict(),
                "history": preset.history,
                "clean_accuracy": preset.clean_accuracy,
            }
        )
        arrays = {
            f"{_STATE_PREFIX}{key}": value for key, value in preset.state.items()
        }
        # Per-writer tmp name: concurrent cold-cache workers must not
        # truncate each other mid-write; the final rename is atomic and
        # last-writer-wins with identical content.
        tmp = path.with_suffix(f".{os.getpid()}.tmp.npz")
        # Binary npz stream; tmp + atomic replace is done manually
        # here because the text helper cannot carry it.
        with open(tmp, "wb") as fh:  # repro: noqa[REP005]
            np.savez_compressed(fh, **arrays, **{_META_KEY: np.str_(meta)})
        tmp.replace(path)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def entries(self) -> list[pathlib.Path]:
        """Stored cache files (empty when the root does not exist)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.npz"))

    def clear(self) -> int:
        """Delete every stored preset; returns the number removed."""
        removed = 0
        for path in self.entries():
            path.unlink()
            removed += 1
        self._memo.clear()
        return removed


class ProfileCache:
    """Content-addressed store of multi-round attack-profile results.

    A profile (the per-round vulnerable-bit lists of
    :class:`repro.attacks.profile.ProfileResult`) is fully determined by
    the trained preset recipe and the attack configuration, so it is keyed
    by the SHA-256 over both.  Stored as ``.npz``: one ``(n, 3)`` int64
    array of ``(layer, index, bit)`` triples per round.

    Args:
        root: Cache directory; ``None`` uses :func:`default_profile_root`.

    Attributes:
        hits / misses: Counters (in-process memo hits count as hits).
    """

    _ROUND_PREFIX = "round/"

    def __init__(self, root: str | pathlib.Path | None = None):
        self.root = (
            pathlib.Path(root) if root is not None else default_profile_root()
        )
        self.hits = 0
        self.misses = 0
        self._memo: dict[str, list[list]] = {}

    # ------------------------------------------------------------------ #
    # Keys and paths
    # ------------------------------------------------------------------ #

    @staticmethod
    def key_for(spec: PresetSpec, attack_config: dict) -> str:
        """SHA-256 over the preset recipe + attack config + version."""
        payload = json.dumps(
            {
                "version": CACHE_FORMAT_VERSION,
                "preset": spec.config_dict(),
                "attack": attack_config,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def path_for(self, spec: PresetSpec, attack_config: dict) -> pathlib.Path:
        return self.root / (
            f"{spec.name}-profile-{self.key_for(spec, attack_config)[:16]}.npz"
        )

    # ------------------------------------------------------------------ #
    # Load / store
    # ------------------------------------------------------------------ #

    def load(self, spec: PresetSpec, attack_config: dict, compute):
        """Return the profile for (spec, attack_config), computing on miss.

        ``compute`` is a zero-argument callable returning a
        :class:`repro.attacks.profile.ProfileResult`; its result is stored
        and replayed bit-for-bit on later loads.
        """
        from repro.attacks.profile import ProfileResult
        from repro.nn.quant import BitLocation

        key = self.key_for(spec, attack_config)
        rounds = self._memo.get(key)
        if rounds is None:
            path = self.path_for(spec, attack_config)
            if path.exists():
                rounds = self._read(path)
                self.hits += 1
            else:
                self.misses += 1
                result = compute()
                rounds = [
                    [(b.layer, b.index, b.bit) for b in round_bits]
                    for round_bits in result.rounds
                ]
                self._write(path, spec, attack_config, rounds)
            self._memo[key] = rounds
        else:
            self.hits += 1
        restored = ProfileResult()
        restored.rounds = [
            [BitLocation(layer, index, bit) for layer, index, bit in round_bits]
            for round_bits in rounds
        ]
        return restored

    def _read(self, path: pathlib.Path) -> list[list]:
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive[_META_KEY]))
            rounds = []
            for i in range(meta["num_rounds"]):
                array = archive[f"{self._ROUND_PREFIX}{i}"]
                rounds.append([tuple(int(v) for v in row) for row in array])
        return rounds

    def _write(
        self,
        path: pathlib.Path,
        spec: PresetSpec,
        attack_config: dict,
        rounds: list[list],
    ) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        meta = json.dumps(
            {
                "preset": spec.config_dict(),
                "attack": attack_config,
                "num_rounds": len(rounds),
            }
        )
        arrays = {
            f"{self._ROUND_PREFIX}{i}": np.asarray(
                round_bits, dtype=np.int64
            ).reshape(len(round_bits), 3)
            for i, round_bits in enumerate(rounds)
        }
        tmp = path.with_suffix(f".{os.getpid()}.tmp.npz")
        # Binary npz stream; tmp + atomic replace is done manually
        # here because the text helper cannot carry it.
        with open(tmp, "wb") as fh:  # repro: noqa[REP005]
            np.savez_compressed(fh, **arrays, **{_META_KEY: np.str_(meta)})
        tmp.replace(path)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def entries(self) -> list[pathlib.Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.npz"))

    def clear(self) -> int:
        removed = 0
        for path in self.entries():
            path.unlink()
            removed += 1
        self._memo.clear()
        return removed
