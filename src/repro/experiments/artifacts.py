"""JSON result artifacts for scenario runs.

Every CLI scenario run lands in ``benchmarks/results/<scenario>.json`` —
the machine-readable record the pytest benchmarks' ``report_sink`` tables
mirror in text form.  The directory resolves, in order: the explicit
``directory`` argument, the ``REPRO_RESULTS_DIR`` environment variable,
then ``benchmarks/results/`` relative to the repository root.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.experiments.runner import ScenarioResult
from repro.utils.env import env_str
from repro.utils.io import atomic_write_text

__all__ = [
    "default_results_dir",
    "default_bench_dir",
    "write_artifact",
    "write_bench_artifact",
    "load_artifact",
    "quarantine_corrupt_file",
]

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]


def default_results_dir() -> pathlib.Path:
    """Resolve the artifact directory (env override, then repo-relative)."""
    env = env_str("REPRO_RESULTS_DIR")
    if env:
        return pathlib.Path(env)
    return _REPO_ROOT / "benchmarks" / "results"


def default_bench_dir() -> pathlib.Path:
    """Resolve the perf-artifact directory (env override, then repo root).

    ``BENCH_*.json`` files live at the repository root so the perf
    trajectory is tracked in version control next to the code it measures.
    """
    env = env_str("REPRO_BENCH_DIR")
    if env:
        return pathlib.Path(env)
    return _REPO_ROOT


def _atomic_write_text(path: pathlib.Path, text: str) -> None:
    """Write ``text`` to ``path`` via tmp file + ``os.replace``.

    Kept as a module-level name because callers across the repo import
    it from here; the implementation lives in
    :func:`repro.utils.io.atomic_write_text` so ``repro lint`` (REP005)
    has a single sanctioned write path to recognise.
    """
    atomic_write_text(path, text)


def write_artifact(
    result: ScenarioResult,
    directory: str | pathlib.Path | None = None,
) -> pathlib.Path:
    """Persist an aggregate result as ``<scenario>.json``; returns the path.

    The write is atomic (tmp file + rename), so a reader — or a ``cmp``
    in CI — can never observe a half-written artifact.
    """
    out_dir = (
        pathlib.Path(directory) if directory is not None else default_results_dir()
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{result.scenario}.json"
    _atomic_write_text(
        path, json.dumps(result.to_json(), indent=2, sort_keys=True) + "\n"
    )
    return path


def write_bench_artifact(
    payload: dict,
    name: str = "hotpaths",
    directory: str | pathlib.Path | None = None,
) -> pathlib.Path:
    """Persist a perf-suite payload as ``BENCH_<name>.json`` (atomically)."""
    out_dir = (
        pathlib.Path(directory) if directory is not None else default_bench_dir()
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    _atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return path


def load_artifact(path: str | pathlib.Path) -> dict:
    """Read a previously written artifact back as a plain dict."""
    return json.loads(pathlib.Path(path).read_text())


def quarantine_corrupt_file(
    path: str | pathlib.Path, label: str = "corrupt"
) -> pathlib.Path:
    """Move a damaged file aside as ``<name>.<label>-N``; returns the new path.

    Used by the sharded scheduler when a chunk stream arrives with
    corrupt bytes: renaming (same directory, so always atomic) takes the
    file out of every ``*.trials.jsonl`` discovery glob at once — a
    retried worker starts a fresh stream instead of choking on resume,
    and ``repro merge`` never reads the damaged records — while keeping
    the bytes on disk for a post-mortem.  ``N`` increments past existing
    quarantine files so repeated corruption of the same stream keeps
    every generation.
    """
    path = pathlib.Path(path)
    n = 1
    while True:
        target = path.with_name(f"{path.name}.{label}-{n}")
        if not target.exists():
            break
        n += 1
    os.replace(path, target)
    return target
