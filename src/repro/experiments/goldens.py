"""Canonical workloads behind the golden command-trace fixtures.

Each builder runs a small, fully deterministic workload with a
:class:`repro.dram.CommandTrace` attached and returns the (controller,
trace) pair.  ``repro trace record --workload <name>`` saves the stream;
the committed fixtures under ``tests/data/traces/`` are exactly these
workloads at their default seeds, and the golden tests re-record them
in-process to assert the implementation still produces the same bytes.

Two goldens cover the full command vocabulary between them:

* ``fig6-defended`` — the ``fig6`` scenario's functional leg: a defended
  chain of eight pipelined four-step swaps (defender actor; RNG + AAP
  records).
* ``hammer-window`` — one bare hammer window (a ``T_RH``-activation
  aggressor burst, attacker actor) followed by a scouting read/write, an
  explicit precharge, and the idle run-out to the refresh boundary
  (ACT/RD/WR/PRE/IDLE/auto-REF records).
"""

from __future__ import annotations

import numpy as np

from repro.dram import (
    CommandTrace,
    DramDevice,
    DramGeometry,
    MemoryController,
    RowAddress,
    TimingParams,
)

__all__ = ["GOLDEN_WORKLOADS", "record_workload"]


def _fig6_defended(seed: int = 0) -> tuple[MemoryController, CommandTrace]:
    """The fig6 scenario's functional swap chain, traced."""
    from repro.core.swap import SwapEngine

    timing = TimingParams()
    geometry = DramGeometry(
        banks=1, subarrays_per_bank=1, rows_per_subarray=64, row_bytes=64
    )
    controller = MemoryController(DramDevice(geometry), timing)
    controller.device.fill_random(np.random.default_rng(seed))
    trace = CommandTrace(controller)
    engine = SwapEngine(controller, reserved_rows=2, actor="defender")
    rng = np.random.default_rng(seed + 1)
    targets = [RowAddress(0, 0, r) for r in range(2, 18, 2)]
    non_targets = [RowAddress(0, 0, r) for r in range(20, 36, 2)]
    for target, nt in zip(targets, non_targets):
        engine.swap_target(target, rng, non_target_logical=nt,
                           exclude=set(targets), pipelined=True)
    trace.close()
    return controller, trace


def _hammer_window(seed: int = 0, t_rh: int = 1000) -> tuple[MemoryController, CommandTrace]:
    """One bare hammer window plus a scouting access and the idle run-out."""
    timing = TimingParams(t_rh=t_rh)
    geometry = DramGeometry(
        banks=2, subarrays_per_bank=2, rows_per_subarray=32, row_bytes=32
    )
    controller = MemoryController(DramDevice(geometry), timing)
    controller.device.fill_random(np.random.default_rng(seed))
    trace = CommandTrace(controller)
    aggressor = RowAddress(0, 0, 5)
    controller.activate(aggressor, actor="attacker", count=t_rh, hammer=True)
    scout = RowAddress(1, 1, 3)
    data = controller.read_logical(scout, actor="attacker")
    controller.write_logical(scout, data, actor="attacker")
    controller.precharge(1, actor="attacker")
    controller.advance_time(controller.ns_until_refresh())
    trace.close()
    return controller, trace


GOLDEN_WORKLOADS = {
    "fig6-defended": _fig6_defended,
    "hammer-window": _hammer_window,
}


def record_workload(name: str, seed: int = 0) -> tuple[MemoryController, CommandTrace]:
    """Run one golden workload and return its (controller, closed trace)."""
    try:
        builder = GOLDEN_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown trace workload {name!r}; available: "
            f"{', '.join(sorted(GOLDEN_WORKLOADS))}"
        ) from None
    return builder(seed=seed)
