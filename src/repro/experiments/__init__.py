"""Experiment orchestration: scenario registry, parallel runner, caching.

This package turns the repo's experiments into declarative, batched,
cacheable *scenarios* with one shared execution path:

* :mod:`repro.experiments.registry` — ``@scenario`` specs for every paper
  figure/table plus sweep grids; resolved by name.
* :mod:`repro.experiments.runner` — :func:`run_scenario` fans seeded
  trials over a pluggable backend and aggregates mean/std/95%-CI metrics.
* :mod:`repro.experiments.backends` — the execution backends: serial,
  local process pool, and sharded CLI subprocesses (``--shard i/N`` +
  ``repro merge`` scale one sweep across machines with byte-identical
  artifacts).
* :mod:`repro.experiments.transport` — where sharded chunk workers run:
  local subprocesses, ssh hosts with quarantine + graceful degradation,
  or a seeded fault-injecting chaos wrapper.
* :mod:`repro.experiments.cache` — :class:`PresetCache` stores trained
  preset weights as ``.npz`` keyed by the recipe hash, so each preset
  trains once ever.
* :mod:`repro.experiments.artifacts` — JSON results under
  ``benchmarks/results/``.
* :mod:`repro.experiments.scenarios` — the built-in scenario definitions.

Typical usage::

    from repro.experiments import run_scenario, write_artifact
    result = run_scenario("fig8b", trials=8, jobs=4, seed=0)
    write_artifact(result)

or from the shell: ``python -m repro run fig8b --trials 8 --jobs 4``.
"""

from repro.experiments.artifacts import (
    default_bench_dir,
    default_results_dir,
    load_artifact,
    quarantine_corrupt_file,
    write_artifact,
    write_bench_artifact,
)
from repro.experiments.cache import (
    PresetCache,
    ProfileCache,
    default_cache_root,
    default_profile_root,
)
from repro.experiments.registry import (
    Scenario,
    get_scenario,
    iter_scenarios,
    register,
    scenario,
    scenario_names,
    unregister,
)
from repro.experiments.backends import (
    Backend,
    ExecutionPlan,
    ProcessPoolBackend,
    SerialBackend,
    ShardedBackend,
    discover_chunks,
    discover_shards,
    discover_streams,
    merge_shards,
    parse_shard,
    read_stream,
    run_chunk,
    run_shard,
    shard_indices,
)
from repro.experiments.runner import (
    MetricStats,
    ScenarioResult,
    TrialContext,
    TrialStream,
    aggregate_result,
    run_scenario,
    trial_seed,
)
from repro.experiments.transport import (
    ChaosTransport,
    HostHealth,
    LocalSubprocessTransport,
    SSHTransport,
    Transport,
    TransportError,
    WorkerSpec,
    build_transport,
    parse_hosts,
)
from repro.experiments import scenarios  # noqa: F401  (registers built-ins)

__all__ = [
    "Scenario",
    "scenario",
    "register",
    "unregister",
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
    "TrialContext",
    "TrialStream",
    "MetricStats",
    "ScenarioResult",
    "aggregate_result",
    "run_scenario",
    "trial_seed",
    "Backend",
    "ExecutionPlan",
    "SerialBackend",
    "ProcessPoolBackend",
    "ShardedBackend",
    "parse_shard",
    "shard_indices",
    "run_shard",
    "run_chunk",
    "read_stream",
    "discover_shards",
    "discover_chunks",
    "discover_streams",
    "merge_shards",
    "Transport",
    "TransportError",
    "WorkerSpec",
    "LocalSubprocessTransport",
    "SSHTransport",
    "ChaosTransport",
    "HostHealth",
    "parse_hosts",
    "build_transport",
    "PresetCache",
    "ProfileCache",
    "default_cache_root",
    "default_profile_root",
    "default_results_dir",
    "default_bench_dir",
    "write_artifact",
    "write_bench_artifact",
    "load_artifact",
    "quarantine_corrupt_file",
]
