"""The ``tournament-matrix`` scenario: every attacker vs every defense.

Generalizes the paper's Fig. 6/7 comparisons into a full cross product:
a grid of **attacker x defense x model x budget** cells, each cell one
trial of the runner.  Attackers and defenses resolve by name through
their registries (:mod:`repro.attacks.registry`,
:mod:`repro.defenses.registry`), so a new ``@attacker`` or ``@defense``
joins the tournament by registering and being named on the roster —
no scenario change needed.

Cell-to-trial mapping: trial ``i`` runs cell ``i % len(cells)`` in
deterministic grid order (models > defenses > attackers > budgets, the
roster orders as given); trials beyond the grid size are Monte-Carlo
replicates with fresh derived seeds.  Every trial reports the same flat
metric vocabulary (:data:`repro.analysis.defense_eval.
TOURNAMENT_CELL_METRICS` plus the cell coordinates), which keeps the
aggregate artifact byte-identical across serial / process-pool /
sharded backends by the runner's usual construction.

The per-cell cost hint multiplies the registered defense and attacker
``cost`` fields with the flip budget, so the sharded backend leases the
expensive cells (profiled defenses, progressive attackers) first.
"""

from __future__ import annotations

from repro.analysis.defense_eval import (
    evaluate_tournament_cell,
    tournament_matrix_rows,
)
from repro.experiments.registry import scenario
from repro.nn.quant import QuantizedModel
from repro.utils.tabulate import format_table

__all__ = ["tournament_cells"]

_DEFAULT_MODELS = ("resnet20_cifar",)
_DEFAULT_DEFENSES = ("none", "dnn-defender", "shadow", "radar")
_DEFAULT_ATTACKERS = ("random", "bfa", "smart-bfa")
_DEFAULT_BUDGETS = (10,)


def _str_grid(value, default: tuple[str, ...]) -> tuple[str, ...]:
    """Coerce a roster parameter (tuple or ``"a,b,c"`` CLI string)."""
    if value is None:
        return default
    if isinstance(value, str):
        return tuple(v for v in (s.strip() for s in value.split(",")) if v)
    return tuple(str(v) for v in value)


def _int_grid(value, default: tuple[int, ...]) -> tuple[int, ...]:
    if value is None:
        return default
    if isinstance(value, str):
        return tuple(int(v) for v in value.split(","))
    if isinstance(value, (int, float)):
        return (int(value),)
    return tuple(int(v) for v in value)


def tournament_cells(params) -> list[tuple[str, str, str, int]]:
    """The grid in trial order: (model, defense, attacker, budget)."""
    get = params.get if hasattr(params, "get") else lambda k, d=None: d
    models = _str_grid(get("models"), _DEFAULT_MODELS)
    defenses = _str_grid(get("defenses"), _DEFAULT_DEFENSES)
    attackers = _str_grid(get("attackers"), _DEFAULT_ATTACKERS)
    budgets = _int_grid(get("budgets"), _DEFAULT_BUDGETS)
    return [
        (model, defense, attacker, budget)
        for model in models
        for defense in defenses
        for attacker in attackers
        for budget in budgets
    ]


def _tournament_cost(trial_index: int, params) -> float:
    """Relative cell cost: registry hints x flip budget (never results)."""
    from repro.attacks.registry import get_attacker
    from repro.defenses.registry import get_defense

    cells = tournament_cells(params)
    _, defense, attacker, budget = cells[trial_index % len(cells)]
    try:
        defense_cost = get_defense(defense).cost
        attacker_cost = get_attacker(attacker).cost
    except KeyError:
        return 1.0  # unknown cell names fail in the trial, not the hint
    return defense_cost * attacker_cost * max(float(budget), 1.0)


@scenario(
    "tournament-matrix",
    title="Attacker x defense tournament: floor/detection/recovery matrix",
    source="generalization of Figs. 6/7",
    presets=("resnet20_cifar",),
    tags=("sweep", "attack", "tournament"),
    default_trials=len(tournament_cells({})),
    trial_cost=_tournament_cost,
)
def tournament_matrix(ctx):
    """One tournament cell (see the module docstring for the mapping)."""
    from repro.defenses.protocol import DefenseContext
    from repro.defenses.registry import build_defense

    cells = tournament_cells(ctx.params)
    index = ctx.trial_index % len(cells)
    model_name, defense_name, attacker_name, budget = cells[index]
    preset = ctx.preset(model_name)
    qmodel = QuantizedModel(preset.fresh_model())
    defense = build_defense(
        defense_name,
        DefenseContext(
            qmodel=qmodel,
            dataset=preset.dataset,
            seed=ctx.seed,
            params=dict(ctx.params),
            trial=ctx,
            preset_name=model_name,
        ),
    )
    try:
        metrics = evaluate_tournament_cell(
            attacker_name,
            defense,
            preset.dataset,
            budget=budget,
            seed=ctx.seed,
            params=dict(ctx.params),
        )
    finally:
        defense.close()
    metrics["cell_index"] = float(index)
    metrics["replicate"] = float(ctx.trial_index // len(cells))
    metrics["budget"] = float(budget)
    return {
        "metrics": metrics,
        "detail": {"cells": [list(cell) for cell in cells]},
    }


def _matrix(result) -> dict[tuple, dict[str, float]]:
    cells = [tuple(cell) for cell in result.detail["cells"]]
    return tournament_matrix_rows(cells, result.per_trial_metrics)


@tournament_matrix.check
def _tournament_check(result):
    rows = _matrix(result)
    cells = [tuple(cell) for cell in result.detail["cells"]]
    if result.trials >= len(cells):
        # Full coverage: every grid cell ran at least once.
        assert len(rows) == len(cells), (
            f"only {len(rows)}/{len(cells)} cells covered"
        )
    for cell, row in rows.items():
        assert row["clean_accuracy"] > 0.2, (cell, row["clean_accuracy"])
        # A lucky landed flip can *raise* accuracy on the finite eval
        # batch, so the floor is only bounded near the clean accuracy,
        # not strictly below it.
        assert row["floor_accuracy"] <= row["clean_accuracy"] + 0.02, (
            cell, row["floor_accuracy"], row["clean_accuracy"]
        )

    def find(defense, attacker):
        matches = [
            row for cell, row in rows.items()
            if cell[1] == defense and cell[2] == attacker
        ]
        return matches[0] if matches else None

    # Targeted beats random on the undefended model.
    undefended_bfa = find("none", "bfa")
    undefended_random = find("none", "random")
    if undefended_bfa and undefended_random:
        assert (
            undefended_bfa["accuracy_drop"]
            >= undefended_random["accuracy_drop"] - 1e-9
        )
    # RADAR catches the MSB-targeting BFA and pays a detection-ns cost...
    radar_bfa = find("radar", "bfa")
    if radar_bfa:
        assert radar_bfa["detections"] > 0
        assert radar_bfa["detection_ns"] > 0
        assert (
            radar_bfa["recovery_accuracy"]
            >= radar_bfa["floor_accuracy"] - 0.05
        )
    # ...while smart-bfa's low-bit flips are structurally invisible to it.
    radar_smart = find("radar", "smart-bfa")
    if radar_smart:
        assert radar_smart["detections"] == 0
        assert radar_smart["recovered_weights"] == 0


@tournament_matrix.reporter
def _tournament_report(result):
    rows = []
    for cell, row in sorted(_matrix(result).items()):
        model, defense, attacker, budget = cell
        rows.append(
            [
                model,
                defense,
                attacker,
                f"{budget}",
                f"{row['clean_accuracy'] * 100:.2f}",
                f"{row['floor_accuracy'] * 100:.2f}",
                f"{row['recovery_accuracy'] * 100:.2f}",
                f"{row['detection_rate'] * 100:.0f}",
                f"{row['detection_ns']:.0f}",
            ]
        )
    return format_table(
        [
            "model", "defense", "attacker", "budget", "clean (%)",
            "floor (%)", "recovered (%)", "detect (%)", "detect (ns)",
        ],
        rows,
        title=(
            f"Tournament matrix — {result.trials} trials over "
            f"{len(result.detail['cells'])} cells (means per cell)"
        ),
    )
