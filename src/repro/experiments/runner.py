"""Parallel, seeded execution of registered scenarios.

:func:`run_scenario` is the single execution path shared by the pytest
benchmarks, the ``python -m repro`` CLI, and library callers.  It fans the
requested number of independent trials out over a pluggable execution
*backend* (see :mod:`repro.experiments.backends`), aggregates the
per-trial metrics into mean/std/95%-CI statistics, and (optionally)
persists the aggregate as a JSON artifact under ``benchmarks/results/``.

Determinism contract: trial *i* derives its seed purely from the base
seed and *i* (trial 0 uses the base seed itself, so a single-trial run
reproduces the historical single-seed benchmarks bit-for-bit), and
aggregation always happens in trial order — so the aggregate is identical
regardless of the backend (serial, process pool, or sharded
subprocesses).  The JSON artifact contains only deterministic content
(wall-clock and worker counts live on the in-memory result, not in
``to_json``), so the *same bytes* land on disk no matter how the trials
were executed — the property the sharded ``repro merge`` workflow relies
on.
"""

from __future__ import annotations

import dataclasses
import json
import math
import pathlib
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.experiments.cache import PresetCache, ProfileCache
from repro.presets import TrainedPreset
from repro.utils.io import atomic_write_text

__all__ = [
    "TrialContext",
    "MetricStats",
    "ScenarioResult",
    "TrialStream",
    "aggregate_result",
    "normalize_params",
    "run_scenario",
    "scan_stream_lines",
    "trial_seed",
]


def normalize_params(params: Mapping[str, Any] | None) -> dict:
    """JSON-normalise scenario params (shared by runner and shards).

    Tuples become lists, keys become strings, and numpy scalars/arrays
    are coerced via ``tolist()`` — so the values a trial sees are
    identical whether they arrived from a library call, a stream-file
    replay, or a shard worker, and the stream/shard header comparisons
    can rely on plain equality.
    """

    def coerce(value):
        tolist = getattr(value, "tolist", None)
        if tolist is not None:  # numpy scalars and arrays
            return tolist()
        raise TypeError(
            f"scenario param value {value!r} ({type(value).__name__}) is "
            "not JSON-serializable"
        )

    return json.loads(json.dumps(dict(params or {}), default=coerce))


def trial_seed(base_seed: int, trial_index: int) -> int:
    """Derive the seed for one trial.

    Trial 0 keeps the base seed (exact parity with the pre-runner,
    single-seed benchmarks); later trials draw independent streams from a
    :class:`numpy.random.SeedSequence` keyed on ``(base_seed, index)``.
    """
    if trial_index == 0:
        return base_seed
    sequence = np.random.SeedSequence((base_seed, trial_index))
    return int(sequence.generate_state(1, dtype=np.uint64)[0] % (2**63))


@dataclass
class TrialContext:
    """Everything one trial may depend on.

    Attributes:
        scenario: Name of the scenario being run.
        trial_index: 0-based index of this trial within the run.
        seed: This trial's derived seed — the *only* source of randomness
            a trial function should use.
        params: Scenario parameters (CLI ``--param`` overrides merged over
            scenario defaults).
        cache: Preset cache used by :meth:`preset`.
    """

    scenario: str
    trial_index: int
    seed: int
    params: Mapping[str, Any] = field(default_factory=dict)
    cache: PresetCache | None = None
    profile_cache: ProfileCache | None = None

    def rng(self, stream: int = 0) -> np.random.Generator:
        """Independent generator for sub-component ``stream``."""
        return np.random.default_rng(self.seed + stream)

    def preset(self, name: str, **overrides) -> TrainedPreset:
        """Load a trained preset through the (shared, on-disk) cache."""
        cache = self.cache if self.cache is not None else PresetCache()
        return cache.load(name, **overrides)

    def profile(
        self,
        preset_name: str,
        qmodel,
        attack_x,
        attack_y,
        rounds: int,
        config=None,
        extra_key: dict | None = None,
    ):
        """Multi-round vulnerable-bit profile, via the on-disk cache.

        The cache key covers the preset recipe, the round count, the
        search configuration, and ``extra_key`` (callers must include
        whatever determined ``attack_x``/``attack_y`` — typically the
        trial seed and batch size).  A warm load replays the stored
        rounds bit-for-bit instead of re-running the BFA search.
        """
        from repro.attacks.profile import profile_vulnerable_bits
        from repro.presets import preset_spec

        cache = (
            self.profile_cache
            if self.profile_cache is not None
            else ProfileCache()
        )
        attack_config = {
            "rounds": int(rounds),
            "config": dataclasses.asdict(config) if config is not None else None,
            "extra": extra_key or {},
        }
        return cache.load(
            preset_spec(preset_name),
            attack_config,
            lambda: profile_vulnerable_bits(
                qmodel, attack_x, attack_y, rounds=rounds, config=config
            ),
        )

    def param(self, key: str, default: Any = None) -> Any:
        """Scenario parameter with a default (``--param key=value``)."""
        return self.params.get(key, default)


@dataclass(frozen=True)
class MetricStats:
    """Aggregate of one metric across trials."""

    mean: float
    std: float
    ci95: float
    n: int
    values: tuple[float, ...]

    @classmethod
    def from_values(cls, values: list[float]) -> "MetricStats":
        array = np.asarray(values, dtype=float)
        n = int(array.size)
        std = float(array.std(ddof=1)) if n > 1 else 0.0
        return cls(
            mean=float(array.mean()),
            std=std,
            ci95=1.96 * std / math.sqrt(n) if n > 1 else 0.0,
            n=n,
            values=tuple(float(v) for v in array),
        )

    def to_json(self) -> dict:
        return {
            "mean": self.mean,
            "std": self.std,
            "ci95": self.ci95,
            "n": self.n,
            "values": list(self.values),
        }


@dataclass
class ScenarioResult:
    """Aggregate outcome of a scenario run.

    ``metrics`` maps each metric name to its cross-trial statistics;
    ``detail`` carries trial 0's rich payload (series, tables) for
    reporting; ``per_trial_metrics`` preserves the raw per-trial values in
    trial order.

    ``elapsed_s``, ``jobs``, and ``backend`` describe *how* the run
    executed; they are available for reporting but deliberately excluded
    from :meth:`to_json` so the persisted artifact is byte-identical for
    the same (scenario, trials, seed, params) no matter which backend ran
    the trials.
    """

    scenario: str
    trials: int
    jobs: int
    seed: int
    params: dict
    elapsed_s: float
    metrics: dict[str, MetricStats]
    detail: dict
    per_trial_metrics: list[dict]
    check_error: str | None = None
    backend: str = "serial"

    def metric(self, name: str) -> float:
        """Mean value of one metric (the common access path in checks)."""
        return self.metrics[name].mean

    def to_json(self) -> dict:
        """JSON-artifact form (deterministic content only).

        See ``repro.experiments.artifacts``; runtime facts (``elapsed_s``,
        ``jobs``, ``backend``) stay off the artifact so that serial,
        process-pool, and shard-merged runs of the same scenario/seed
        write the same bytes.
        """
        return {
            "scenario": self.scenario,
            "trials": self.trials,
            "seed": self.seed,
            "params": self.params,
            "metrics": {k: v.to_json() for k, v in sorted(self.metrics.items())},
            "detail": self.detail,
            "per_trial_metrics": self.per_trial_metrics,
            "check_error": self.check_error,
        }


def scan_stream_lines(
    path: pathlib.Path, lines: list[str]
) -> tuple[dict | None, list[str], list[dict], bool]:
    """Torn-tolerant parse of trial-stream JSONL lines.

    The single parser behind both :class:`TrialStream` resume and
    :func:`repro.experiments.backends.read_stream` (the harvest/merge
    path), so torn-line semantics cannot fork between them.  Returns
    ``(header, intact_lines, records, torn_tail)``:

    * ``header`` — the parsed header line, or ``None`` when the file
      holds nothing but a torn header (the writer died mid-first-write;
      nothing is recoverable).
    * ``intact_lines`` — the raw lines up to (excluding) a torn tail,
      for callers that truncate before appending.
    * ``records`` — the parsed ``type == "trial"`` records, in file
      order.
    * ``torn_tail`` — True when a torn trailing line was dropped (the
      signature of a write interrupted by a crash or kill).  Because
      appends are sequential, an interrupted write can only ever be the
      *last* line — so an unparseable line with records after it (a
      corrupt header included) raises ``ValueError``: that is
      corruption, not an interrupted write, and silently dropping it
      would discard salvageable trials.
    """
    if not lines:
        return None, [], [], False
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        if len(lines) == 1:
            return None, [], [], True
        raise ValueError(
            f"{path}: header line is corrupt (not valid JSON) but trial "
            "records follow — corruption, not an interrupted write"
        ) from None
    intact = [lines[0]]
    records: list[dict] = []
    torn = False
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines):
                warnings.warn(
                    f"{path}: dropping torn trailing record (interrupted "
                    "write); its trial counts as missing and will re-run",
                    RuntimeWarning,
                )
                torn = True
                break
            raise ValueError(
                f"{path}: line {lineno} is corrupt (not valid JSON)"
            ) from None
        intact.append(line)
        if record.get("type") == "trial":
            records.append(record)
    return header, intact, records, torn


class TrialStream:
    """Append-only JSONL stream of per-trial results.

    Long sweeps stream each trial's payload as it completes (instead of
    gathering everything at the end), so a run is inspectable mid-flight
    and *resumable*: re-running with ``resume=True`` replays completed
    trials from the file and only executes the missing ones.

    File format: a ``{"type": "header", ...}`` line identifying the run
    (scenario, base seed, params, plus any ``extra_header`` fields such
    as the shard manifest written by ``repro run --shard i/N``), then one
    ``{"type": "trial", ...}`` line per completed trial carrying its
    index, derived seed, metrics, and detail payload.  Resuming against a
    header that does not match the requested run raises instead of
    silently mixing results.

    Workers running under a heartbeat interval additionally interleave
    ``{"type": "heartbeat", "time": …, "done": n}`` lines (see
    :meth:`heartbeat`) so the sharded coordinator can tell a *slow*
    worker from a *hung* one.  Heartbeats are liveness telemetry, not
    results: every stream parser keys on ``type == "trial"``, so they
    are invisible to resume, salvage, and merge — and never reach the
    artifact.  Appends and heartbeats share one lock because the
    heartbeat comes from a side thread and interleaved partial lines
    would corrupt the stream.

    Crash tolerance on resume: a torn *trailing* line — the signature of
    an ``append`` interrupted by a crash or a kill — is dropped with a
    warning (and the file truncated back to its last complete record, so
    later appends stay parseable); its trial simply re-runs.  A torn
    header means the run died before recording anything, so the stream
    starts over.  Corruption anywhere else is a hard error.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        scenario: str,
        seed: int,
        params: dict,
        resume: bool = False,
        extra_header: dict | None = None,
    ):
        self.path = pathlib.Path(path)
        self.completed: dict[int, dict] = {}
        self._lock = threading.Lock()
        self._closed = False
        header = {
            "type": "header",
            "scenario": scenario,
            "seed": seed,
            "params": params,
        }
        if extra_header:
            header.update(extra_header)
        if resume and self.path.exists():
            if self._resume_existing(header):
                return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Streaming sink by design: records are flushed one line at a time
        # as trials finish, so there is no final document to write
        # atomically; torn tails are healed on resume by scan_stream_lines.
        self._fh = open(self.path, "w")  # repro: noqa[REP005]
        self._fh.write(json.dumps(header) + "\n")
        self._fh.flush()

    def _resume_existing(self, header: dict) -> bool:
        """Replay an existing stream file; False = start the file over."""
        lines = [
            line for line in self.path.read_text().splitlines()
            if line.strip()
        ]
        if not lines:
            return False
        existing, intact, records, torn = scan_stream_lines(self.path, lines)
        if existing is None:
            warnings.warn(
                f"{self.path}: stream header is torn (interrupted write); "
                "starting the stream over",
                RuntimeWarning,
            )
            return False
        for key in header:
            if key == "type":
                continue
            if existing.get(key) != header[key]:
                raise ValueError(
                    f"cannot resume {self.path}: stored {key}="
                    f"{existing.get(key)!r} does not match requested "
                    f"{header[key]!r}"
                )
        for record in records:
            self.completed[int(record["trial_index"])] = {
                "metrics": record["metrics"],
                "detail": record.get("detail", {}),
            }
        if torn:
            # Truncate the torn tail before appending, or the next
            # record would concatenate onto the partial line.  Atomic:
            # a crash mid-rewrite must not lose the intact records this
            # rewrite exists to preserve.
            atomic_write_text(self.path, "\n".join(intact) + "\n")
        self._fh = open(self.path, "a")
        return True

    def append(self, trial_index: int, seed: int, payload: dict) -> None:
        with self._lock:
            self._fh.write(
                json.dumps(
                    {
                        "type": "trial",
                        "trial_index": trial_index,
                        "seed": seed,
                        "metrics": payload["metrics"],
                        "detail": payload.get("detail", {}),
                    }
                )
                + "\n"
            )
            self._fh.flush()

    def heartbeat(self, done: int) -> None:
        """Append a liveness record (worker wall-clock + trials done).

        Safe to call from a side thread concurrently with :meth:`append`;
        a heartbeat racing :meth:`close` is silently dropped (the worker
        is exiting — its exit code is the liveness signal from there on).
        """
        with self._lock:
            if self._closed:
                return
            self._fh.write(
                json.dumps(
                    {"type": "heartbeat", "time": time.time(), "done": done}
                )
                + "\n"
            )
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._fh.close()


def _execute_trial(
    scenario_name: str,
    trial_index: int,
    seed: int,
    params: dict,
    cache_root: str | None,
    profile_root: str | None,
) -> dict:
    """Top-level (picklable) worker: run one trial in this process."""
    from repro.experiments.registry import get_scenario

    spec = get_scenario(scenario_name)
    ctx = TrialContext(
        scenario=scenario_name,
        trial_index=trial_index,
        seed=seed,
        params=params,
        cache=PresetCache(cache_root) if cache_root is not None else PresetCache(),
        profile_cache=ProfileCache(profile_root),
    )
    return spec.run_trial(ctx)


def aggregate_result(
    name: str,
    payloads: list[dict],
    seed: int,
    params: dict,
    elapsed_s: float = 0.0,
    jobs: int = 1,
    backend: str = "serial",
) -> ScenarioResult:
    """Aggregate per-trial payloads (in trial order) into a result.

    This is the single aggregation path shared by :func:`run_scenario`
    and the sharded ``repro merge`` workflow — both produce their
    :class:`ScenarioResult` here, which is what guarantees a merged
    multi-host run serialises to the same artifact bytes as a single-host
    run.
    """
    n_trials = len(payloads)
    metric_values: dict[str, list[float]] = {}
    for payload in payloads:
        for key, value in payload["metrics"].items():
            metric_values.setdefault(key, []).append(float(value))
    for key, values in metric_values.items():
        if len(values) != n_trials:
            raise ValueError(
                f"metric {key!r} reported by {len(values)}/{n_trials} "
                "trials; metrics must be present in every trial"
            )
    return ScenarioResult(
        scenario=name,
        trials=n_trials,
        jobs=jobs,
        seed=seed,
        params=params,
        elapsed_s=elapsed_s,
        metrics={
            key: MetricStats.from_values(values)
            for key, values in metric_values.items()
        },
        detail=payloads[0].get("detail", {}),
        per_trial_metrics=[p["metrics"] for p in payloads],
        backend=backend,
    )


def run_scenario(
    name: str,
    trials: int | None = None,
    jobs: int = 1,
    seed: int = 0,
    params: Mapping[str, Any] | None = None,
    cache: PresetCache | None = None,
    profile_cache: ProfileCache | None = None,
    progress: Callable[[int, int], None] | None = None,
    stream_path: str | pathlib.Path | None = None,
    resume: bool = False,
    backend: "Backend | None" = None,
) -> ScenarioResult:
    """Run ``trials`` independent trials of scenario ``name``.

    Args:
        name: Registered scenario name (see ``repro list``).
        trials: Trial count; ``None`` uses the scenario's default.
        jobs: Worker processes.  ``1`` runs in-process (no pool); the
            aggregate is identical for any value by construction.
            Ignored when an explicit ``backend`` is supplied.
        seed: Base seed; trial seeds derive from it via
            :func:`trial_seed`.
        params: Scenario parameter overrides.
        cache: Preset cache override (its root is forwarded to workers).
        profile_cache: Attack-profile cache override (root forwarded to
            workers the same way).
        progress: Optional ``callback(done, total)`` after each trial.
        stream_path: When set, per-trial results are appended to this
            JSONL file as they complete (see :class:`TrialStream`).
        resume: With ``stream_path``, replay trials already present in
            the stream file and run only the missing ones.
        backend: Execution backend (see
            :mod:`repro.experiments.backends`).  ``None`` selects
            :class:`SerialBackend` for ``jobs == 1`` and
            :class:`ProcessPoolBackend` otherwise.

    Returns:
        The aggregated :class:`ScenarioResult` (checks are *not* run —
        callers decide whether check failures are fatal).
    """
    from repro.experiments.backends import (
        ExecutionPlan,
        ProcessPoolBackend,
        SerialBackend,
    )
    from repro.experiments.registry import get_scenario

    spec = get_scenario(name)
    n_trials = spec.default_trials if trials is None else trials
    if n_trials < 1:
        raise ValueError(f"trials must be >= 1, got {n_trials}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if backend is None:
        backend = SerialBackend() if jobs == 1 else ProcessPoolBackend(jobs)
    run_params = normalize_params(params)
    cache = cache if cache is not None else PresetCache()
    profile_cache = (
        profile_cache if profile_cache is not None else ProfileCache()
    )
    seeds = [trial_seed(seed, i) for i in range(n_trials)]

    stream: TrialStream | None = None
    if stream_path is not None:
        stream = TrialStream(
            stream_path, scenario=name, seed=seed, params=run_params,
            resume=resume,
        )

    start = time.perf_counter()
    payloads: list[dict] = [{} for _ in range(n_trials)]
    pending = list(range(n_trials))
    done = 0
    if stream is not None and stream.completed:
        pending = [i for i in pending if i not in stream.completed]
        for i, payload in stream.completed.items():
            if i < n_trials:
                payloads[i] = payload
        done = n_trials - len(pending)
        if progress is not None and done:
            progress(done, n_trials)

    def record(index: int, payload: dict) -> None:
        nonlocal done
        payloads[index] = payload
        if stream is not None:
            stream.append(index, seeds[index], payload)
        done += 1
        if progress is not None:
            progress(done, n_trials)

    plan = ExecutionPlan(
        scenario=name,
        spec=spec,
        trials=n_trials,
        seed=seed,
        seeds=seeds,
        params=run_params,
        pending=pending,
        cache=cache,
        profile_cache=profile_cache,
        record=record,
    )
    try:
        backend.run(plan)
    finally:
        # Completed trials are flushed (appended + fsynced per line) even
        # when a later trial crashes mid-sweep, so --resume can pick up
        # from the stream file afterwards.
        if stream is not None:
            stream.close()
    elapsed = time.perf_counter() - start
    return aggregate_result(
        name, payloads, seed=seed, params=run_params, elapsed_s=elapsed,
        jobs=jobs, backend=backend.name,
    )
