"""Pluggable execution backends for the scenario runner.

:func:`repro.experiments.runner.run_scenario` plans a run (trial seeds,
pending indices, caches, streaming) and hands the actual trial execution
to a *backend*:

* :class:`SerialBackend` — in-process loop, no pool.  The reference
  implementation every other backend must match bit-for-bit.
* :class:`ProcessPoolBackend` — ``--jobs N`` fan-out over a local
  ``ProcessPoolExecutor`` (fork when available, so dynamically
  registered test scenarios stay visible in workers).
* :class:`ShardedBackend` — a dynamic chunk-lease scheduler over ``N``
  CLI worker subprocesses.  Pending trial indices are split into small
  *chunks* on a work queue; each worker leases the next chunk, runs it
  as ``python -m repro run <scenario> --chunk K --trial-indices i,j,…``
  (streaming per-trial JSONL), and steals the next chunk as soon as it
  finishes — so sweep wall-clock is bounded by the total work, not by
  the slowest static shard.  A first-class fault policy rides on top:
  per-chunk timeouts (a hung worker is killed and its remaining trials
  requeued), bounded retries with the failing worker's error tail
  preserved, and salvage-on-failure (completed trials are harvested
  from every worker's stream and recorded before any raise, so
  ``--resume`` re-runs only genuinely missing trials).

Two stream-file flavours exist, and both carry the full run identity
(scenario, base seed, params, total trials) plus a manifest in their
header:

* shard streams (``<scenario>.shard-IofN.trials.jsonl``) — the static
  ``--shard I/N`` worker used for *manual* multi-machine fan-out: shard
  ``I`` of ``N`` owns trial indices ``I, I+N, I+2N, …``
  (:func:`shard_indices`).  Run shard ``0/2`` on one host, ``1/2`` on
  another, copy the files together, fuse with ``repro merge``.
* chunk streams (``<scenario>.chunk-K.trials.jsonl``) — written by the
  scheduler's chunk workers; the header's ``chunk.trial_indices`` lists
  exactly the indices the lease owned.

:func:`merge_shards` fuses any mix of the two (plus plain ``--stream``
files): headers must agree on the run identity, every per-trial seed
must re-derive from the base seed, and the union must cover every trial
— duplicates are tolerated only when the duplicate records are
identical.  Because the merged result is aggregated by the same
:func:`repro.experiments.runner.aggregate_result` path as a single-host
run, the merged artifact is byte-identical to the one ``--jobs N`` would
have written.
"""

from __future__ import annotations

import collections
import concurrent.futures
import contextlib
import heapq
import json
import math
import multiprocessing
import os
import pathlib
import random
import re
import shutil
import sys
import tempfile
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable

from repro.experiments.cache import PresetCache, ProfileCache
from repro.experiments.runner import (
    ScenarioResult,
    TrialContext,
    TrialStream,
    _execute_trial,
    aggregate_result,
    normalize_params,
    scan_stream_lines,
    trial_seed,
)
from repro.experiments.transport import (
    LocalSubprocessTransport,
    Transport,
    TransportError,
    WorkerHandle,
    WorkerSpec,
    chunk_stream_path,
)
from repro.utils.env import env_float, env_str

__all__ = [
    "Backend",
    "ExecutionPlan",
    "SerialBackend",
    "ProcessPoolBackend",
    "ShardedBackend",
    "parse_shard",
    "shard_indices",
    "shard_stream_path",
    "chunk_stream_path",
    "run_shard",
    "run_chunk",
    "read_shard",
    "read_stream",
    "discover_shards",
    "discover_chunks",
    "discover_streams",
    "merge_shards",
]


@dataclass
class ExecutionPlan:
    """Everything a backend needs to execute one scenario run.

    Attributes:
        scenario: Registered scenario name.
        spec: The resolved :class:`repro.experiments.registry.Scenario`.
        trials: Total trial count of the run.
        seed: Base seed of the run.
        seeds: Derived per-trial seeds, ``seeds[i] == trial_seed(seed, i)``.
        params: Scenario parameter overrides.
        pending: Trial indices that still need to execute (resume may
            have replayed the rest).
        cache / profile_cache: Shared caches; backends forward the roots
            to worker processes.
        record: ``record(index, payload)`` — must be called exactly once
            per pending index, from the coordinating process.  Backends
            may call it in any order; aggregation is order-independent
            because payloads land in an index-addressed list.
    """

    scenario: str
    spec: object
    trials: int
    seed: int
    seeds: list[int]
    params: dict
    pending: list[int]
    cache: PresetCache
    profile_cache: ProfileCache
    record: Callable[[int, dict], None]


class Backend:
    """Executes the pending trials of an :class:`ExecutionPlan`.

    Subclasses implement :meth:`run`; ``name`` identifies the backend in
    reports and result metadata.
    """

    name = "abstract"

    def run(self, plan: ExecutionPlan) -> None:
        raise NotImplementedError


class SerialBackend(Backend):
    """In-process, one-trial-at-a-time execution (the ``--jobs 1`` path)."""

    name = "serial"

    def run(self, plan: ExecutionPlan) -> None:
        for i in plan.pending:
            ctx = TrialContext(
                scenario=plan.scenario, trial_index=i, seed=plan.seeds[i],
                params=plan.params, cache=plan.cache,
                profile_cache=plan.profile_cache,
            )
            plan.record(i, plan.spec.run_trial(ctx))


class ProcessPoolBackend(Backend):
    """Local process-pool fan-out (the ``--jobs N`` path).

    Completed trials are recorded (and therefore streamed to JSONL) even
    when another trial in the same batch raises; the first failure is
    re-raised after the pool drains so ``--resume`` only has to re-run
    the genuinely missing trials.
    """

    name = "process-pool"

    def __init__(self, jobs: int):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def run(self, plan: ExecutionPlan) -> None:
        if self.jobs == 1 or len(plan.pending) <= 1:
            SerialBackend().run(plan)
            return
        # Fork keeps dynamically-registered scenarios (tests) visible in
        # workers; spawned workers re-import the built-ins by name.
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context("spawn")
        cache_root = str(plan.cache.root)
        profile_root = str(plan.profile_cache.root)
        first_error: BaseException | None = None
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.jobs, len(plan.pending)), mp_context=context
        ) as pool:
            futures = {
                pool.submit(
                    _execute_trial, plan.scenario, i, plan.seeds[i],
                    plan.params, cache_root, profile_root,
                ): i
                for i in plan.pending
            }
            for future in concurrent.futures.as_completed(futures):
                try:
                    plan.record(futures[future], future.result())
                except Exception as exc:  # re-raised below; KeyboardInterrupt
                    if first_error is None:  # and friends propagate at once
                        first_error = exc
        if first_error is not None:
            raise first_error


# ---------------------------------------------------------------------- #
# Fault injection (tests and the CI chaos-smoke job)
# ---------------------------------------------------------------------- #

def _maybe_inject_chaos(
    directory: pathlib.Path,
    stage: str,
    stream: TrialStream | None = None,
    hb_stop: threading.Event | None = None,
) -> None:
    """Env-triggered worker faults, for exercising the fault policy.

    ``REPRO_CHAOS`` is a comma-separated list of modes, consulted only
    by chunk *worker* processes (never by the coordinator):

    * ``crash`` — after recording a trial, exit hard (``os._exit``),
      leaving the stream file behind for salvage.  Fires once per
      stream directory: the first worker to claim the marker file dies.
    * ``hang`` — after recording a trial, sleep forever (until the
      scheduler's ``--shard-timeout`` kills the worker).  Once per
      directory, like ``crash``.
    * ``crash-start`` — exit hard before running any trial, on *every*
      lease; used to exhaust the retry budget deterministically.
    * ``stall-io`` — after recording a trial, stop writing (heartbeats
      included) but stay alive: the worker looks healthy to ``poll()``
      yet its stream goes silent, so only a timeout can reclaim its
      trials.  Once per directory, like ``crash``.
    * ``truncate-stream`` — after recording a trial, append a torn
      (half-written) record to the stream and exit hard: the classic
      interrupted-write signature the torn-tail parser must absorb.
      Once per directory.
    * ``slow`` — sleep ``REPRO_CHAOS_SLOW_S`` (default 0.75s) after
      every recorded trial, heartbeats still flowing: slow-but-alive,
      the case heartbeat-aware timeouts must *not* kill.  No marker;
      applies to every worker.

    ``REPRO_CHAOS_SCOPE=worker`` (set by
    :class:`repro.experiments.transport.ChaosTransport`, which decides
    faults per launch) skips the once-per-directory marker claim so the
    targeted worker always faults.

    ``hang`` and ``stall-io`` set ``hb_stop`` first: a stuck worker's
    heartbeat thread must stop beating, or the liveness signal would
    report the hang as mere slowness forever.
    """
    spec = env_str("REPRO_CHAOS", "")
    if not spec:
        return
    per_worker = env_str("REPRO_CHAOS_SCOPE", "") == "worker"

    def claim(mode: str) -> bool:
        if per_worker:
            return True
        marker = pathlib.Path(directory) / f".repro-chaos-{mode}"
        try:
            marker.touch(exist_ok=False)  # atomic once-per-dir claim
        except FileExistsError:
            return False
        return True

    for mode in filter(None, (m.strip() for m in spec.split(","))):
        if mode == "crash-start" and stage == "start":
            print("chaos: injected worker crash at chunk start",
                  file=sys.stderr, flush=True)
            os._exit(23)
        if stage != "trial":
            continue
        if mode == "slow":
            time.sleep(env_float("REPRO_CHAOS_SLOW_S", 0.75))
            continue
        if mode not in ("crash", "hang", "stall-io", "truncate-stream"):
            continue
        if not claim(mode):
            continue
        print(f"chaos: injected worker {mode} after a recorded trial",
              file=sys.stderr, flush=True)
        if mode == "crash":
            os._exit(23)
        if mode == "truncate-stream":
            if stream is not None:
                with stream._lock:
                    stream._fh.write('{"type": "trial", "trial_index"')
                    stream._fh.flush()
            os._exit(23)
        if hb_stop is not None:
            hb_stop.set()
        time.sleep(3600)  # hang / stall-io: a timeout kill is the only exit


# ---------------------------------------------------------------------- #
# Shard and chunk manifests
# ---------------------------------------------------------------------- #

def parse_shard(text: str) -> tuple[int, int]:
    """Parse a ``"i/N"`` shard designator into ``(index, count)``."""
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"shard must look like I/N (e.g. 0/2), got {text!r}"
        ) from None
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise ValueError(
            f"shard index must be in [0, {count}), got {index}"
        )
    return index, count


def shard_indices(trials: int, index: int, count: int) -> list[int]:
    """Trial indices owned by shard ``index`` of ``count`` (strided).

    Striding (``i, i+N, i+2N, …``) balances heterogeneous trial costs
    better than contiguous blocks and keeps every shard non-empty while
    ``index < trials``.
    """
    if not 0 <= index < count:
        raise ValueError(f"shard index must be in [0, {count}), got {index}")
    return list(range(index, trials, count))


def shard_stream_path(
    directory: str | pathlib.Path, scenario: str, index: int, count: int
) -> pathlib.Path:
    """Canonical JSONL location of one shard's trial stream."""
    return pathlib.Path(directory) / (
        f"{scenario}.shard-{index}of{count}.trials.jsonl"
    )


_CHUNK_ID_RE = re.compile(r"\.chunk-(\d+)\.trials\.jsonl$")


def _shard_header(trials: int, index: int, count: int) -> dict:
    return {
        "trials": trials,
        "shard": {
            "index": index,
            "count": count,
            "trial_indices": shard_indices(trials, index, count),
        },
    }


def _chunk_header(trials: int, chunk_id: int, indices: list[int]) -> dict:
    return {
        "trials": trials,
        "chunk": {"id": chunk_id, "trial_indices": list(indices)},
    }


def run_shard(
    name: str,
    shard: tuple[int, int],
    trials: int | None = None,
    seed: int = 0,
    params: dict | None = None,
    directory: str | pathlib.Path | None = None,
    cache: PresetCache | None = None,
    profile_cache: ProfileCache | None = None,
    resume: bool = False,
    jobs: int = 1,
    progress: Callable[[int, int], None] | None = None,
) -> pathlib.Path:
    """Execute one shard of a scenario run; returns the stream path.

    This is the worker side of ``python -m repro run <scenario> --shard
    i/N``: it runs only the trial indices owned by the shard, streaming
    each completed trial to the shard's JSONL file.  No aggregate is
    computed — that is :func:`merge_shards`' job once every shard file is
    available.
    """
    index, count = shard
    n_trials = _resolved_trials(name, trials)
    owned = shard_indices(n_trials, index, count)
    path, _ = _run_stream_worker(
        name, n_trials, owned, seed, params, directory, cache, profile_cache,
        resume=resume, jobs=jobs, progress=progress,
        stream_path_for=lambda d: shard_stream_path(d, name, index, count),
        extra_header=_shard_header(n_trials, index, count),
    )
    return path


def run_chunk(
    name: str,
    chunk_id: int,
    indices: list[int],
    trials: int | None = None,
    seed: int = 0,
    params: dict | None = None,
    directory: str | pathlib.Path | None = None,
    cache: PresetCache | None = None,
    profile_cache: ProfileCache | None = None,
    resume: bool = True,
    jobs: int = 1,
    progress: Callable[[int, int], None] | None = None,
    heartbeat_interval: float | None = None,
) -> pathlib.Path:
    """Execute one chunk lease (an explicit trial-index list).

    The worker side of ``python -m repro run <scenario> --chunk K
    --trial-indices i,j,…``, dispatched by :class:`ShardedBackend`.
    Resume defaults to on: a retried lease replays whatever its previous
    attempt managed to stream and runs only the still-missing trials.
    With ``heartbeat_interval`` set the worker interleaves liveness
    records into its stream (see :meth:`TrialStream.heartbeat`) so the
    coordinator can tell slow from hung.
    """
    if chunk_id < 0:
        raise ValueError(f"chunk id must be >= 0, got {chunk_id}")
    n_trials = _resolved_trials(name, trials)
    owned = list(dict.fromkeys(int(i) for i in indices))
    if not owned:
        raise ValueError("chunk owns no trial indices")
    bad = [i for i in owned if not 0 <= i < n_trials]
    if bad:
        raise ValueError(
            f"chunk trial indices {bad} out of range for {n_trials} trial(s)"
        )
    path, out_dir = _run_stream_worker(
        name, n_trials, owned, seed, params, directory, cache, profile_cache,
        resume=resume, jobs=jobs, progress=progress,
        stream_path_for=lambda d: chunk_stream_path(d, name, chunk_id),
        extra_header=_chunk_header(n_trials, chunk_id, owned),
        chaos=True,
        heartbeat_interval=heartbeat_interval,
    )
    return path


def _resolved_trials(name: str, trials: int | None) -> int:
    from repro.experiments.registry import get_scenario

    spec = get_scenario(name)
    n_trials = spec.default_trials if trials is None else trials
    if n_trials < 1:
        raise ValueError(f"trials must be >= 1, got {n_trials}")
    return n_trials


def _run_stream_worker(
    name: str,
    n_trials: int,
    owned: list[int],
    seed: int,
    params: dict | None,
    directory: str | pathlib.Path | None,
    cache: PresetCache | None,
    profile_cache: ProfileCache | None,
    resume: bool,
    jobs: int,
    progress: Callable[[int, int], None] | None,
    stream_path_for: Callable[[pathlib.Path], pathlib.Path],
    extra_header: dict,
    chaos: bool = False,
    heartbeat_interval: float | None = None,
) -> tuple[pathlib.Path, pathlib.Path]:
    """Shared shard/chunk worker: stream ``owned`` trials to JSONL."""
    from repro.experiments.artifacts import default_results_dir
    from repro.experiments.registry import get_scenario

    if heartbeat_interval is not None and heartbeat_interval <= 0:
        raise ValueError(
            f"heartbeat interval must be > 0 seconds, got {heartbeat_interval}"
        )
    spec = get_scenario(name)
    # Same JSON normalisation as run_scenario, so stream headers compare
    # equal to the coordinator's params regardless of input types.
    run_params = normalize_params(params)
    cache = cache if cache is not None else PresetCache()
    profile_cache = (
        profile_cache if profile_cache is not None else ProfileCache()
    )
    out_dir = (
        pathlib.Path(directory) if directory is not None
        else default_results_dir()
    )
    path = stream_path_for(out_dir)
    if chaos:
        _maybe_inject_chaos(out_dir, "start")
    seeds = [trial_seed(seed, i) for i in range(n_trials)]
    stream = TrialStream(
        path, scenario=name, seed=seed, params=run_params, resume=resume,
        extra_header=extra_header,
    )
    pending = [i for i in owned if i not in stream.completed]
    done = len(owned) - len(pending)
    hb_stop = threading.Event()
    hb_thread: threading.Thread | None = None
    if heartbeat_interval is not None:
        def _beat() -> None:
            # First beat after one interval, then steadily — reading
            # `done` racily is fine, it is telemetry not a result.
            while not hb_stop.wait(heartbeat_interval):
                stream.heartbeat(done)

        hb_thread = threading.Thread(
            target=_beat, name="trial-stream-heartbeat", daemon=True
        )
        hb_thread.start()

    def record(i: int, payload: dict) -> None:
        nonlocal done
        stream.append(i, seeds[i], payload)
        done += 1
        if progress is not None:
            progress(done, len(owned))
        if chaos:
            _maybe_inject_chaos(out_dir, "trial", stream=stream,
                                hb_stop=hb_stop)

    plan = ExecutionPlan(
        scenario=name, spec=spec, trials=n_trials, seed=seed, seeds=seeds,
        params=run_params, pending=pending, cache=cache,
        profile_cache=profile_cache, record=record,
    )
    worker = SerialBackend() if jobs == 1 else ProcessPoolBackend(jobs)
    try:
        worker.run(plan)
    finally:
        hb_stop.set()
        if hb_thread is not None:
            # Beat-in-flight must finish before the stream closes.
            hb_thread.join(timeout=5.0)
        stream.close()
    return path, out_dir


# ---------------------------------------------------------------------- #
# Reading and merging trial streams
# ---------------------------------------------------------------------- #

def _scan_stream_file(
    path: pathlib.Path,
) -> tuple[dict | None, dict[int, dict]]:
    """Parse one stream file into ``(header, {trial_index: record})``.

    ``(None, {})`` means the file holds nothing recoverable — it is
    empty, absent, or a lone torn header line (the writer died before
    recording anything).  Mid-file corruption still raises ``ValueError``
    loudly (see :func:`repro.experiments.runner.scan_stream_lines`):
    silently skipping a file that *does* hold intact records would
    re-run — or, at merge time, double-count — salvageable trials.
    """
    lines = [line for line in path.read_text().splitlines() if line.strip()]
    if not lines:
        return None, {}
    header, _, raw_records, _ = scan_stream_lines(path, lines)
    if header is None:
        return None, {}
    if header.get("type") != "header":
        raise ValueError(
            f"trial stream {path} does not start with a valid header"
        )
    records: dict[int, dict] = {}
    for record in raw_records:
        records[int(record["trial_index"])] = {
            "seed": record.get("seed"),
            "metrics": record["metrics"],
            "detail": record.get("detail", {}),
        }
    return header, records


def read_stream(path: str | pathlib.Path) -> tuple[dict, dict[int, dict]]:
    """Read one trial stream: ``(header, {trial_index: record})``.

    Each record keeps the trial's ``seed`` alongside ``metrics`` and
    ``detail`` so merging can re-validate seed derivation.  A torn
    *trailing* line — the signature of an interrupted ``append`` (worker
    killed or crashed mid-write) — is dropped with a warning, so the
    completed records above it stay salvageable; a corrupt line anywhere
    else is a hard error.
    """
    path = pathlib.Path(path)
    header, records = _scan_stream_file(path)
    if header is None:
        raise ValueError(
            f"trial stream {path} is empty (or holds only a torn header)"
        )
    return header, records


#: Back-compat alias — shard streams are read exactly like chunk streams.
read_shard = read_stream


def discover_shards(
    directory: str | pathlib.Path, scenario: str
) -> list[pathlib.Path]:
    """All shard stream files for ``scenario`` under ``directory``."""
    return sorted(
        pathlib.Path(directory).glob(f"{scenario}.shard-*of*.trials.jsonl")
    )


def discover_chunks(
    directory: str | pathlib.Path, scenario: str
) -> list[pathlib.Path]:
    """All chunk stream files for ``scenario`` under ``directory``."""
    return sorted(
        pathlib.Path(directory).glob(f"{scenario}.chunk-*.trials.jsonl")
    )


def discover_streams(
    directory: str | pathlib.Path, scenario: str
) -> list[pathlib.Path]:
    """Shard *and* chunk stream files for ``scenario`` (merge input)."""
    return discover_shards(directory, scenario) + discover_chunks(
        directory, scenario
    )


def _stream_owned(header: dict, n_trials: int) -> tuple[str, set[int]]:
    """Stream kind and the trial indices its manifest owns."""
    shard = header.get("shard")
    if shard is not None:
        return "shard", set(shard.get("trial_indices", range(n_trials)))
    chunk = header.get("chunk")
    if chunk is not None:
        return "chunk", set(chunk.get("trial_indices", ()))
    # A plain --stream file (no manifest) may hold any trial of the run.
    return "stream", set(range(n_trials))


def merge_shards(
    paths: list[str | pathlib.Path],
    scenario: str | None = None,
    elapsed_s: float = 0.0,
) -> ScenarioResult:
    """Fuse shard/chunk stream files into the canonical aggregate result.

    Validation mirrors ``TrialStream`` resume, extended across files:

    * every header must agree on scenario, base seed, params, and total
      trials;
    * shard files must agree on the shard count, with distinct indices
      (no double-submitted shard);
    * every recorded trial must belong to its file's manifest (shard
      stride or chunk index list) and carry the seed
      :func:`repro.experiments.runner.trial_seed` derives;
    * the union of trials must cover ``0..trials-1``; a trial recorded
      by more than one file (e.g. a salvaged chunk attempt plus its
      retry) is accepted only when the duplicate records are identical.

    The aggregate goes through
    :func:`repro.experiments.runner.aggregate_result`, so the returned
    result — and the artifact written from it — is identical to what a
    single-host run of the same (scenario, trials, seed, params) produces.
    """
    if not paths:
        raise ValueError("merge_shards needs at least one shard file")
    headers: list[tuple[pathlib.Path, dict]] = []
    all_records: list[tuple[pathlib.Path, dict[int, dict]]] = []
    for path in paths:
        header, records = read_stream(path)
        headers.append((pathlib.Path(path), header))
        all_records.append((pathlib.Path(path), records))

    first_path, first = headers[0]
    if scenario is not None and first.get("scenario") != scenario:
        raise ValueError(
            f"{first_path} holds scenario {first.get('scenario')!r}, "
            f"expected {scenario!r}"
        )
    for key in ("scenario", "seed", "params", "trials"):
        if key not in first:
            raise ValueError(f"{first_path} header is missing {key!r}")
        for path, header in headers[1:]:
            if header.get(key) != first[key]:
                raise ValueError(
                    f"cannot merge {path}: stored {key}="
                    f"{header.get(key)!r} does not match "
                    f"{first_path}'s {first[key]!r}"
                )
    counts = {
        h["shard"].get("count") for _, h in headers if "shard" in h
    }
    if len(counts) > 1:
        raise ValueError(
            f"shard headers disagree on shard count: {sorted(map(str, counts))}"
        )
    seen_shards: set[int] = set()
    for path, header in headers:
        if "shard" not in header:
            continue
        index = header["shard"]["index"]
        if index in seen_shards:
            raise ValueError(f"duplicate shard index {index} (at {path})")
        seen_shards.add(index)

    n_trials = int(first["trials"])
    base_seed = int(first["seed"])
    payloads: list[dict | None] = [None] * n_trials
    for (path, header), (_, records) in zip(headers, all_records):
        kind, owned = _stream_owned(header, n_trials)
        for index, record in records.items():
            if index not in owned:
                raise ValueError(
                    f"{path}: trial {index} does not belong to this "
                    f"{kind}'s manifest"
                )
            expected_seed = trial_seed(base_seed, index)
            if record["seed"] != expected_seed:
                raise ValueError(
                    f"{path}: trial {index} recorded seed {record['seed']}, "
                    f"but base seed {base_seed} derives {expected_seed}"
                )
            payload = {
                "metrics": record["metrics"], "detail": record["detail"],
            }
            if payloads[index] is not None:
                if payloads[index] != payload:
                    raise ValueError(
                        f"trial {index} appears in multiple streams with "
                        f"conflicting records (at {path})"
                    )
                continue  # identical duplicate (salvaged attempt + retry)
            payloads[index] = payload
    missing = [i for i, p in enumerate(payloads) if p is None]
    if missing:
        raise ValueError(
            f"merge is incomplete: missing trial(s) {missing} "
            f"({len(paths)} stream file(s) present)"
        )
    return aggregate_result(
        str(first["scenario"]), payloads, seed=base_seed,
        params=dict(first["params"]), elapsed_s=elapsed_s,
        jobs=len(paths), backend="sharded-merge",
    )


# ---------------------------------------------------------------------- #
# The work-stealing chunk scheduler
# ---------------------------------------------------------------------- #

#: Scheduler poll cadence.  Low enough that a finished worker's slot is
#: re-leased almost immediately; high enough to stay invisible in profiles.
_POLL_INTERVAL_S = 0.05
_ERROR_TAIL_LINES = 8
#: Backoff jitter fraction: a retry waits ``delay * (1 + U[0, 0.25))`` so
#: simultaneously-failing chunks fan back out instead of thundering in.
_BACKOFF_JITTER = 0.25
#: Adaptive chunk sizing steers each lease toward roughly this duration.
_TARGET_LEASE_S = 5.0
_EWMA_ALPHA = 0.5
#: How many consecutive launch refusals (TransportError) a chunk absorbs
#: before refusals start consuming its retry budget — keeps a transport
#: that refuses forever from spinning the scheduler.
_MAX_LAUNCH_REFUSALS = 5
#: How much of a stream file's tail to scan for the latest heartbeat.
_HEARTBEAT_TAIL_BYTES = 65536


@dataclass
class _Lease:
    """One running chunk worker: handle, manifest, timeout bookkeeping."""

    chunk_id: int
    indices: list[int]
    attempt: int
    handle: WorkerHandle
    transport: Transport
    deadline: float | None
    started: float
    extensions: int = 0


def _last_heartbeat(path: pathlib.Path) -> float | None:
    """Worker wall-clock of the newest heartbeat in a stream file's tail.

    Trial records count as liveness too — a worker steadily recording
    results is alive by definition, whether or not a heartbeat happens to
    be the last line — but trial records carry no timestamp, so only
    heartbeat lines (which do) can answer *when*.
    """
    try:
        with open(path, "rb") as fh:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            fh.seek(max(0, size - _HEARTBEAT_TAIL_BYTES))
            tail = fh.read().decode("utf-8", errors="replace")
    except OSError:
        return None
    for line in reversed(tail.splitlines()):
        if '"heartbeat"' not in line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn heartbeat: keep scanning upward
        if record.get("type") == "heartbeat" and "time" in record:
            return float(record["time"])
    return None


class ShardedBackend(Backend):
    """Run a scenario as a work-stealing pool of CLI chunk workers.

    The single-host orchestration of the sharded workflow: pending trial
    indices are partitioned into chunks on a work queue; up to
    ``shards`` worker subprocesses (``python -m repro run <scenario>
    --chunk K --trial-indices …``) hold one chunk lease each, and an
    idle worker slot immediately leases the next queued chunk instead of
    idling behind a straggler.  Worker stdout/stderr goes to a per-lease
    log file — never a pipe — so a chatty worker can't fill a pipe and
    deadlock the join, and the scheduler's poll loop never blocks on any
    single worker.

    Fault policy:

    * ``timeout`` — a lease running longer than this many seconds is
      killed; completed trials are harvested from its stream and only
      the remainder is requeued.
    * ``retries`` — a failed or timed-out chunk is re-dispatched at most
      this many times (the retried lease *resumes* its stream file, so
      prior completed trials replay instead of re-running).  When the
      budget is exhausted the error tail of every failed attempt is
      preserved in the raised ``RuntimeError``.
    * salvage-on-failure — before any raise, every worker stream is
      harvested and its completed trials recorded with the coordinator,
      so a coordinator-level ``--resume`` re-runs only genuinely
      missing trials.  An ephemeral workdir is kept (and its path
      reported) instead of being destroyed on failure.

    Because the chunk worker is the public CLI, anything this backend
    does locally can be reproduced across machines by hand — the
    cross-backend determinism tests pin serial, process-pool, and sharded
    execution to byte-identical artifacts.

    Where workers *run* is delegated to a
    :class:`repro.experiments.transport.Transport` (local subprocesses
    by default, ``ssh`` hosts, or chaos-wrapped either).  The scheduler
    only ever records trials it parsed back out of a chunk stream, so
    the exactly-once / byte-identical-artifact contract is independent
    of anything a transport does to a worker or its bytes.

    Args:
        shards: Maximum concurrent worker subprocesses.
        python: Interpreter for the workers (default: ``sys.executable``).
        workdir: Where chunk streams land; ``None`` uses a temporary
            directory (deleted after a clean run, kept on failure).
        env: Extra environment variables for the workers (merged over a
            copy of ``os.environ``; ``PYTHONPATH`` is always extended so
            workers can import ``repro`` from this checkout).
        resume: Salvage completed trials from existing shard/chunk
            streams in ``workdir`` before dispatching any worker.  Only
            meaningful with a persistent ``workdir``.
        timeout: Per-chunk lease timeout in seconds (``None`` = never
            kill a worker).  With heartbeats on, the timeout applies to
            *silence*, not runtime: a worker past its deadline that is
            still heartbeating is warned about and granted another
            timeout window instead of being killed.
        retries: Re-dispatch budget per chunk after its first failure.
        chunk_size: Trials per chunk lease; ``None`` auto-sizes to
            ``ceil(pending / (4 * shards))`` so each worker sees ~4
            leases and stealing has room to balance stragglers — and
            then *adapts*: an EWMA of observed per-trial seconds steers
            later leases toward ~5s each (never above a worker's fair
            share of the remainder), so cheap trials coalesce and
            expensive ones spread out.  An explicit size disables
            adaptation.
        static: Emulate the legacy static schedule instead of stealing:
            exactly one lease per worker, holding that worker's strided
            slice of the pending indices (``pending[k::shards]``) —
            wall-clock is then bounded by the slowest shard.  The fault
            policy still applies.  Kept as the measurable baseline for
            the ``straggler_sweep`` benchmark and as a scheduling
            control for debugging; mutually exclusive with
            ``chunk_size``.
        transport: Where chunk workers execute; ``None`` builds a
            :class:`LocalSubprocessTransport` over ``python``.
        heartbeat_interval: Ask workers to interleave heartbeat records
            into their streams every this-many seconds, and make the
            lease timeout heartbeat-aware.  ``None`` (default) preserves
            the historical behaviour: no heartbeats, timeout kills
            unconditionally.
        retry_backoff: Delay chunk retries by capped exponential backoff
            with deterministic jitter instead of requeueing immediately
            (default on; the backoff schedule is reported when the retry
            budget is exhausted).
        backoff_base: First retry delay in seconds (doubles per attempt).
        backoff_cap: Upper bound on any single retry delay.
        fallback_local: When the transport reports no healthy host left
            (every ssh/chaos host quarantined), degrade gracefully to
            local subprocess execution instead of failing the sweep.
    """

    name = "sharded"

    def __init__(
        self,
        shards: int,
        python: str | None = None,
        workdir: str | pathlib.Path | None = None,
        env: dict[str, str] | None = None,
        resume: bool = False,
        timeout: float | None = None,
        retries: int = 1,
        chunk_size: int | None = None,
        static: bool = False,
        transport: Transport | None = None,
        heartbeat_interval: float | None = None,
        retry_backoff: bool = True,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        fallback_local: bool = True,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0 seconds, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk size must be >= 1, got {chunk_size}")
        if static and chunk_size is not None:
            raise ValueError(
                "static scheduling fixes one strided lease per worker; "
                "chunk_size does not apply"
            )
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError(
                "heartbeat interval must be > 0 seconds, "
                f"got {heartbeat_interval}"
            )
        if backoff_base <= 0:
            raise ValueError(f"backoff base must be > 0, got {backoff_base}")
        if backoff_cap < backoff_base:
            raise ValueError(
                f"backoff cap ({backoff_cap}) must be >= base ({backoff_base})"
            )
        self.shards = shards
        self.python = python or sys.executable
        self.workdir = pathlib.Path(workdir) if workdir is not None else None
        self.env = dict(env or {})
        self.resume = resume
        self.timeout = timeout
        self.retries = retries
        self.chunk_size = chunk_size
        self.static = static
        self.transport = transport
        self.heartbeat_interval = heartbeat_interval
        self.retry_backoff = retry_backoff
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.fallback_local = fallback_local
        self._ewma_trial_s: float | None = None

    # ------------------------------------------------------------------ #
    # Worker plumbing
    # ------------------------------------------------------------------ #

    def _worker_extras(self, plan: ExecutionPlan) -> dict[str, str]:
        """Coordinator-owned env extras shipped to every chunk worker.

        Only the *extras* — the transport merges them over whatever base
        environment its execution venue provides (``os.environ`` for
        local subprocesses, the remote login env for ssh).
        """
        extras = dict(self.env)
        # Chunk workers must resolve the exact same caches as this
        # process, whatever roots the caller passed programmatically.
        extras["REPRO_CACHE_DIR"] = str(plan.cache.root)
        extras["REPRO_PROFILE_DIR"] = str(plan.profile_cache.root)
        return extras

    def _partition(self, pending: list[int], first_id: int) -> list[tuple[int, list[int]]]:
        """Split pending indices into (chunk_id, indices) leases."""
        if self.static:
            # Legacy schedule: one strided lease per worker, no stealing.
            slices = [pending[k::self.shards] for k in range(self.shards)]
            return [
                (first_id + k, indices)
                for k, indices in enumerate(s for s in slices if s)
            ]
        size = self.chunk_size
        if size is None:
            size = max(1, math.ceil(len(pending) / (4 * self.shards)))
        return [
            (first_id + k, pending[offset:offset + size])
            for k, offset in enumerate(range(0, len(pending), size))
        ]

    def _launch(
        self,
        plan: ExecutionPlan,
        directory: pathlib.Path,
        chunk_id: int,
        indices: list[int],
        attempt: int,
        extras: dict[str, str],
        transport: Transport,
    ) -> _Lease:
        spec = WorkerSpec(
            scenario=plan.scenario, chunk_id=chunk_id, indices=list(indices),
            trials=plan.trials, seed=plan.seed, params=plan.params,
            workdir=directory, attempt=attempt, env=extras,
            heartbeat_interval=self.heartbeat_interval,
        )
        handle = transport.start(spec)
        now = time.monotonic()
        deadline = now + self.timeout if self.timeout is not None else None
        return _Lease(
            chunk_id=chunk_id, indices=list(indices), attempt=attempt,
            handle=handle, transport=transport, deadline=deadline,
            started=now,
        )

    def _backoff_delay(self, chunk_id: int, attempt: int) -> float:
        """Seconds to wait before re-dispatching ``chunk_id``.

        Capped exponential in the attempt that just failed, with
        deterministic jitter (seeded by ``(chunk_id, attempt)`` so a
        re-run of the same failing sweep waits the same delays).
        """
        if not self.retry_backoff:
            return 0.0
        base = min(
            self.backoff_cap,
            self.backoff_base * (2 ** max(0, attempt - 1)),
        )
        jitter = random.Random(f"{chunk_id}:{attempt}").random()
        return base * (1.0 + _BACKOFF_JITTER * jitter)

    def _next_chunk_size(self, remaining: int, initial: int) -> int:
        """Adaptive lease size from the per-trial latency EWMA.

        Until a latency observation exists, stick with the initial
        ~4-leases-per-worker size.  After that, aim each lease at
        roughly ``_TARGET_LEASE_S`` of work (half the lease timeout if
        that is tighter), clamped to a worker's fair share of what is
        left so the last leases cannot concentrate in one worker.
        """
        if self._ewma_trial_s is None or self._ewma_trial_s <= 0:
            return min(initial, max(1, remaining))
        target_s = _TARGET_LEASE_S
        if self.timeout is not None:
            target_s = min(target_s, self.timeout / 2)
        size = max(1, round(target_s / self._ewma_trial_s))
        fair = max(1, math.ceil(remaining / self.shards))
        return max(1, min(size, fair, initial * 4))

    def _observe_latency(self, elapsed: float, recorded: int) -> None:
        if recorded <= 0 or elapsed <= 0:
            return
        per_trial = elapsed / recorded
        if self._ewma_trial_s is None:
            self._ewma_trial_s = per_trial
        else:
            self._ewma_trial_s = (
                _EWMA_ALPHA * per_trial
                + (1.0 - _EWMA_ALPHA) * self._ewma_trial_s
            )

    def _order_pending(
        self, plan: ExecutionPlan, pending: list[int]
    ) -> list[int]:
        """Lease order: most expensive first when the scenario hints costs.

        Launching predicted-expensive trials first keeps the inevitable
        stragglers at the *start* of the run, where stealing can absorb
        them, instead of discovering one in the final lease.  A broken
        hint degrades to index order with a warning — scheduling order
        never affects results, only wall-clock.
        """
        cost_fn = getattr(plan.spec, "trial_cost", None)
        if cost_fn is None:
            return list(pending)
        try:
            costs = {i: float(cost_fn(i, plan.params)) for i in pending}
        except Exception as exc:
            warnings.warn(
                f"trial_cost hint for {plan.scenario} failed ({exc}); "
                "falling back to index order",
                RuntimeWarning,
            )
            return list(pending)
        return sorted(pending, key=lambda i: (-costs[i], i))

    # ------------------------------------------------------------------ #
    # Harvesting streams back into the coordinator
    # ------------------------------------------------------------------ #

    def _header_matches(self, plan: ExecutionPlan, header: dict) -> bool:
        return (
            header.get("scenario") == plan.scenario
            and header.get("seed") == plan.seed
            and header.get("params") == plan.params
            and header.get("trials") == plan.trials
        )

    def _record_stream(
        self,
        plan: ExecutionPlan,
        pending: set[int],
        path: pathlib.Path,
        records: dict[int, dict],
    ) -> None:
        for i in sorted(records):
            if i not in pending:
                continue
            record = records[i]
            if record["seed"] != plan.seeds[i]:
                raise ValueError(
                    f"{path}: trial {i} recorded seed {record['seed']}, "
                    f"expected {plan.seeds[i]}"
                )
            plan.record(i, {
                "metrics": record["metrics"], "detail": record["detail"],
            })
            pending.discard(i)

    def _harvest_chunk(
        self,
        plan: ExecutionPlan,
        pending: set[int],
        directory: pathlib.Path,
        chunk_id: int,
        on_corrupt: str = "raise",
    ) -> bool:
        """Record whatever a (possibly dead) chunk worker streamed.

        An empty or torn-header-only file salvages nothing (the worker
        died before recording anything).  Mid-file corruption depends on
        the caller: the resume/salvage paths use ``on_corrupt="raise"``
        (an operator should see corruption, not a silent re-run), while
        the live scheduler uses ``"quarantine"`` — the corrupt file is
        moved aside (so neither a retried worker's resume nor ``repro
        merge`` ever reads it), the lease counts as a failed attempt,
        and the retry streams into a fresh file.  Returns False exactly
        when a corrupt stream was quarantined.  Exactly-once holds
        either way: harvesting parses *before* recording, so a corrupt
        file records nothing, and its trials simply re-run.
        """
        path = chunk_stream_path(directory, plan.scenario, chunk_id)
        if not path.exists():
            return True
        try:
            header, records = _scan_stream_file(path)
        except ValueError as exc:
            if on_corrupt != "quarantine":
                raise
            from repro.experiments.artifacts import quarantine_corrupt_file

            quarantined = quarantine_corrupt_file(path)
            warnings.warn(
                f"chunk {chunk_id} stream is corrupt ({exc}); moved it to "
                f"{quarantined.name} — its unrecorded trials will re-run",
                RuntimeWarning,
            )
            return False
        if header is None:
            return True
        if not self._header_matches(plan, header):
            raise ValueError(
                f"{path}: chunk stream header does not match the "
                "coordinating run"
            )
        self._record_stream(plan, pending, path, records)
        return True

    def _salvage_existing(
        self, plan: ExecutionPlan, pending: set[int], directory: pathlib.Path
    ) -> None:
        """Resume path: harvest shard/chunk streams left by earlier runs.

        Empty or torn-header-only files are skipped (nothing to
        salvage); a stream with mid-file corruption raises loudly so the
        operator sees the corruption instead of a silent full re-run.
        """
        for path in discover_streams(directory, plan.scenario):
            header, records = _scan_stream_file(path)
            if header is None:
                continue
            if not self._header_matches(plan, header):
                warnings.warn(
                    f"{path}: stream header belongs to a different run; "
                    "ignoring it",
                    RuntimeWarning,
                )
                continue
            self._record_stream(plan, pending, path, records)

    # ------------------------------------------------------------------ #
    # The scheduler loop
    # ------------------------------------------------------------------ #

    def run(self, plan: ExecutionPlan) -> None:
        pending = set(plan.pending)
        if not pending:
            return
        if self.workdir is not None:
            directory, ephemeral = self.workdir, False
            directory.mkdir(parents=True, exist_ok=True)
        else:
            directory = pathlib.Path(
                tempfile.mkdtemp(prefix="repro-shards-")
            )
            ephemeral = True
        first_id = 0
        if self.resume:
            self._salvage_existing(plan, pending, directory)
            if not pending:
                if ephemeral:
                    shutil.rmtree(directory, ignore_errors=True)
                return
            # Leave salvaged streams on disk (they are the crash-safe
            # record) and number new chunks after the highest existing id
            # so a retried run never collides with an old manifest.
            existing = [
                int(m.group(1))
                for m in map(
                    _CHUNK_ID_RE.search,
                    map(str, discover_chunks(directory, plan.scenario)),
                )
                if m
            ]
            first_id = max(existing, default=-1) + 1
        else:
            # A fresh run in a persistent workdir must not inherit chunk
            # streams (or logs) from an earlier run of the same
            # scenario, nor spent chaos markers that would silently
            # disarm a requested fault injection.
            for stale in discover_chunks(directory, plan.scenario):
                stale.unlink()
            for stale in directory.glob(f"{plan.scenario}.chunk-*.log"):
                stale.unlink()
            for stale in directory.glob(
                f"{plan.scenario}.chunk-*.trials.jsonl.corrupt-*"
            ):
                stale.unlink()
            for stale in directory.glob(".repro-chaos-*"):
                stale.unlink()
        try:
            self._schedule(plan, pending, directory, first_id)
            if pending:
                raise RuntimeError(
                    f"chunk workers never reported trial(s) {sorted(pending)}"
                )
        except BaseException:
            if ephemeral:
                warnings.warn(
                    "sharded run failed; partial chunk streams kept for "
                    f"inspection at {directory}",
                    RuntimeWarning,
                )
            raise
        if ephemeral:
            shutil.rmtree(directory, ignore_errors=True)

    def _schedule(
        self,
        plan: ExecutionPlan,
        pending: set[int],
        directory: pathlib.Path,
        first_id: int,
    ) -> None:
        extras = self._worker_extras(plan)
        transport = self.transport or LocalSubprocessTransport(
            python=self.python
        )
        transports = [transport]  # every venue used, for final close()
        ordered = self._order_pending(plan, sorted(pending))
        queue: collections.deque[tuple[int, list[int]]] = collections.deque()
        pool: collections.deque[int] = collections.deque()
        adaptive = not self.static and self.chunk_size is None
        if adaptive:
            # Carve leases on demand so the size can adapt mid-run.
            pool.extend(ordered)
            initial_chunk = max(1, math.ceil(len(ordered) / (4 * self.shards)))
        else:
            queue.extend(self._partition(ordered, first_id))
            initial_chunk = 0
        next_id = first_id + len(queue)
        #: Chunks whose retry is scheduled for the future: a min-heap of
        #: ``(ready_at, chunk_id, indices)`` — backoff without blocking
        #: the poll loop or the other workers.
        retry_heap: list[tuple[float, int, list[int]]] = []
        attempts: dict[int, int] = collections.defaultdict(int)
        refusals: dict[int, int] = collections.defaultdict(int)
        failures: dict[int, list[str]] = {}
        backoffs: dict[int, list[float]] = {}
        fatal: list[str] = []
        running: list[_Lease] = []
        degraded = False

        def next_lease() -> tuple[int, list[int]] | None:
            nonlocal next_id
            if retry_heap and retry_heap[0][0] <= time.monotonic():
                _, chunk_id, indices = heapq.heappop(retry_heap)
                return chunk_id, indices
            if queue:
                return queue.popleft()
            if pool:
                size = self._next_chunk_size(len(pool), initial_chunk)
                indices = [pool.popleft() for _ in range(min(size, len(pool)))]
                chunk_id = next_id
                next_id += 1
                return chunk_id, indices
            return None

        def requeue(chunk_id: int, indices: list[int], attempt: int) -> None:
            delay = self._backoff_delay(chunk_id, attempt)
            if delay:  # --no-retry-backoff leaves no schedule to report
                backoffs.setdefault(chunk_id, []).append(delay)
            heapq.heappush(
                retry_heap, (time.monotonic() + delay, chunk_id, indices)
            )

        def finish(lease: _Lease, code: int | None, timed_out: bool) -> None:
            # Salvage first: whatever the worker streamed before dying is
            # recorded, and only the remainder retries.
            lease.handle.sync()
            lease.handle.close()
            owned_before = sum(1 for i in lease.indices if i in pending)
            clean_stream = self._harvest_chunk(
                plan, pending, directory, lease.chunk_id,
                on_corrupt="quarantine",
            )
            missing = [i for i in lease.indices if i in pending]
            self._observe_latency(
                time.monotonic() - lease.started,
                owned_before - len(missing),
            )
            ok = (
                code == 0 and not timed_out and clean_stream and not missing
            )
            lease.transport.report(lease.handle, ok)
            if not missing:
                if code not in (0, None) or timed_out:
                    warnings.warn(
                        f"chunk {lease.chunk_id} worker "
                        f"{'timed out' if timed_out else f'exited {code}'}"
                        " but every owned trial was salvaged from "
                        "its stream",
                        RuntimeWarning,
                    )
                return
            if timed_out:
                reason = f"timed out after {self.timeout:g}s (killed)"
            elif not clean_stream:
                reason = "streamed corrupt bytes (file quarantined)"
            elif code == 0:
                reason = "exited 0 without recording them"
            else:
                reason = f"exited {code}"
            tail = lease.handle.error_tail(_ERROR_TAIL_LINES)
            detail = (
                f"chunk {lease.chunk_id} attempt {lease.attempt} "
                f"({len(missing)} missing trial(s) {missing}) "
                f"{reason}" + (f":\n{tail}" if tail else "")
            )
            failures.setdefault(lease.chunk_id, []).append(detail)
            if attempts[lease.chunk_id] > self.retries:
                fatal.append(detail)
            else:
                # Requeue the chunk under its original manifest: the
                # retried lease resumes its stream file (unless it was
                # quarantined), so salvaged trials replay and only the
                # missing ones actually run.
                requeue(lease.chunk_id, lease.indices, lease.attempt)

        try:
            while queue or pool or retry_heap or running:
                if not degraded and not transport.available():
                    if not self.fallback_local:
                        fatal.append(
                            f"transport {transport.describe()} has no "
                            "healthy host left and local fallback is "
                            "disabled"
                        )
                    else:
                        warnings.warn(
                            f"transport {transport.describe()} has no "
                            "healthy host left; degrading to local "
                            "subprocess execution",
                            RuntimeWarning,
                        )
                        transport = LocalSubprocessTransport(
                            python=self.python
                        )
                        transports.append(transport)
                    degraded = True
                while not fatal and len(running) < self.shards:
                    item = next_lease()
                    if item is None:
                        break
                    chunk_id, indices = item
                    attempts[chunk_id] += 1
                    try:
                        running.append(self._launch(
                            plan, directory, chunk_id, indices,
                            attempts[chunk_id], extras, transport,
                        ))
                    except TransportError as exc:
                        # A host problem, not a chunk problem: requeue
                        # without consuming the chunk's retry budget —
                        # until refusals repeat enough to mean the
                        # transport itself is the failure.
                        attempts[chunk_id] -= 1
                        refusals[chunk_id] += 1
                        if refusals[chunk_id] % _MAX_LAUNCH_REFUSALS == 0:
                            attempts[chunk_id] += 1
                            detail = (
                                f"chunk {chunk_id} launch refused "
                                f"{refusals[chunk_id]} time(s) by "
                                f"{transport.describe()} ({exc}); counting "
                                "a failed attempt"
                            )
                            failures.setdefault(chunk_id, []).append(detail)
                            if attempts[chunk_id] > self.retries:
                                fatal.append(detail)
                                break
                        requeue(
                            chunk_id, indices, max(1, refusals[chunk_id])
                        )
                        break  # re-check availability before retrying
                time.sleep(_POLL_INTERVAL_S)
                still_running: list[_Lease] = []
                for lease in running:
                    code = lease.handle.poll()
                    timed_out = False
                    if (
                        code is None
                        and lease.deadline is not None
                        and time.monotonic() > lease.deadline
                    ):
                        if self._lease_is_heartbeating(lease):
                            lease.extensions += 1
                            lease.deadline = time.monotonic() + self.timeout
                            warnings.warn(
                                f"chunk {lease.chunk_id} exceeded the "
                                f"{self.timeout:g}s lease timeout but is "
                                "still heartbeating (extension "
                                f"{lease.extensions}); letting it run",
                                RuntimeWarning,
                            )
                        else:
                            timed_out = True
                    if code is None and not timed_out:
                        still_running.append(lease)
                        continue
                    if timed_out:
                        lease.handle.kill()
                        lease.handle.wait()
                    finish(lease, code, timed_out)
                running = still_running
                if fatal:
                    # Kill the survivors promptly, but harvest their
                    # streams so every completed trial is recorded before
                    # the raise (--resume then re-runs only the rest).
                    for lease in running:
                        lease.handle.kill()
                        lease.handle.wait()
                        lease.handle.sync()
                        lease.handle.close()
                        self._harvest_chunk(
                            plan, pending, directory, lease.chunk_id,
                            on_corrupt="quarantine",
                        )
                    running = []
                    break
        finally:
            for lease in running:  # interrupt path: no orphaned workers
                with contextlib.suppress(OSError):
                    lease.handle.kill()
                    lease.handle.wait()
                lease.handle.close()
            for venue in transports:
                with contextlib.suppress(Exception):
                    venue.close()
        if fatal:
            history = [
                entry
                for chunk_id in sorted(failures)
                for entry in failures[chunk_id]
            ]
            # Fatal causes with no per-chunk record (e.g. every host
            # quarantined with local fallback disabled) still belong in
            # the operator-facing message.
            history += [entry for entry in fatal if entry not in history]
            schedule = [
                f"chunk {chunk_id} backoff schedule: "
                + ", ".join(f"{delay:.2f}s" for delay in backoffs[chunk_id])
                for chunk_id in sorted(backoffs)
                if backoffs[chunk_id]
            ]
            raise RuntimeError(
                "sharded execution failed: retry budget exhausted "
                f"(--retries {self.retries}) with trial(s) {sorted(pending)} "
                "still missing; completed trials were salvaged into the "
                "coordinating run (use --resume to re-run only the missing "
                f"ones; chunk streams under {directory}).\n"
                + "\n".join(history + schedule)
            )

    def _lease_is_heartbeating(self, lease: _Lease) -> bool:
        """Liveness check for a lease past its deadline.

        Only meaningful when this backend asked its workers to heartbeat;
        without that, the historical behaviour stands — deadline means
        kill.  The worker stamps heartbeats with its own wall-clock, so
        freshness compares against ``time.time()`` here (same machine for
        local workers; ssh hosts need sane clocks, which the generous
        grace window absorbs).
        """
        if self.heartbeat_interval is None:
            return False
        lease.handle.sync()
        beat = _last_heartbeat(lease.handle.stream_path)
        if beat is None:
            return False
        grace = max(3.0 * self.heartbeat_interval, 2.0)
        return time.time() - beat <= grace
