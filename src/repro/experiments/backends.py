"""Pluggable execution backends for the scenario runner.

:func:`repro.experiments.runner.run_scenario` plans a run (trial seeds,
pending indices, caches, streaming) and hands the actual trial execution
to a *backend*:

* :class:`SerialBackend` — in-process loop, no pool.  The reference
  implementation every other backend must match bit-for-bit.
* :class:`ProcessPoolBackend` — ``--jobs N`` fan-out over a local
  ``ProcessPoolExecutor`` (fork when available, so dynamically
  registered test scenarios stay visible in workers).
* :class:`ShardedBackend` — splits the trial indices into ``N`` shard
  manifests and runs each shard as a separate ``python -m repro run
  <scenario> --shard i/N`` subprocess.  Each shard streams per-trial
  JSONL exactly like ``--stream`` does, which is what makes the scheme
  machine-distributable: run shard ``0/2`` on one host, ``1/2`` on
  another, copy the ``*.trials.jsonl`` files together, and fuse them
  with ``python -m repro merge <scenario>``.

Sharding contract: shard ``i`` of ``N`` owns trial indices ``i, i+N,
i+2N, …`` (:func:`shard_indices`).  A shard stream file records the full
run identity in its header (scenario, base seed, params, total trials,
shard manifest); :func:`merge_shards` refuses to fuse files whose
headers disagree, whose per-trial seeds don't re-derive from the base
seed, or whose union doesn't cover every trial exactly once — the same
validation :class:`repro.experiments.runner.TrialStream` applies on
``--resume``.  Because the merged result is aggregated by the same
:func:`repro.experiments.runner.aggregate_result` path as a single-host
run, the merged artifact is byte-identical to the one ``--jobs N`` would
have written.
"""

from __future__ import annotations

import concurrent.futures
import json
import multiprocessing
import os
import pathlib
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Callable

from repro.experiments.cache import PresetCache, ProfileCache
from repro.experiments.runner import (
    ScenarioResult,
    TrialContext,
    TrialStream,
    _execute_trial,
    aggregate_result,
    normalize_params,
    trial_seed,
)

__all__ = [
    "Backend",
    "ExecutionPlan",
    "SerialBackend",
    "ProcessPoolBackend",
    "ShardedBackend",
    "parse_shard",
    "shard_indices",
    "shard_stream_path",
    "run_shard",
    "read_shard",
    "discover_shards",
    "merge_shards",
]


@dataclass
class ExecutionPlan:
    """Everything a backend needs to execute one scenario run.

    Attributes:
        scenario: Registered scenario name.
        spec: The resolved :class:`repro.experiments.registry.Scenario`.
        trials: Total trial count of the run.
        seed: Base seed of the run.
        seeds: Derived per-trial seeds, ``seeds[i] == trial_seed(seed, i)``.
        params: Scenario parameter overrides.
        pending: Trial indices that still need to execute (resume may
            have replayed the rest).
        cache / profile_cache: Shared caches; backends forward the roots
            to worker processes.
        record: ``record(index, payload)`` — must be called exactly once
            per pending index, from the coordinating process.  Backends
            may call it in any order; aggregation is order-independent
            because payloads land in an index-addressed list.
    """

    scenario: str
    spec: object
    trials: int
    seed: int
    seeds: list[int]
    params: dict
    pending: list[int]
    cache: PresetCache
    profile_cache: ProfileCache
    record: Callable[[int, dict], None]


class Backend:
    """Executes the pending trials of an :class:`ExecutionPlan`.

    Subclasses implement :meth:`run`; ``name`` identifies the backend in
    reports and result metadata.
    """

    name = "abstract"

    def run(self, plan: ExecutionPlan) -> None:
        raise NotImplementedError


class SerialBackend(Backend):
    """In-process, one-trial-at-a-time execution (the ``--jobs 1`` path)."""

    name = "serial"

    def run(self, plan: ExecutionPlan) -> None:
        for i in plan.pending:
            ctx = TrialContext(
                scenario=plan.scenario, trial_index=i, seed=plan.seeds[i],
                params=plan.params, cache=plan.cache,
                profile_cache=plan.profile_cache,
            )
            plan.record(i, plan.spec.run_trial(ctx))


class ProcessPoolBackend(Backend):
    """Local process-pool fan-out (the ``--jobs N`` path).

    Completed trials are recorded (and therefore streamed to JSONL) even
    when another trial in the same batch raises; the first failure is
    re-raised after the pool drains so ``--resume`` only has to re-run
    the genuinely missing trials.
    """

    name = "process-pool"

    def __init__(self, jobs: int):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def run(self, plan: ExecutionPlan) -> None:
        if self.jobs == 1 or len(plan.pending) <= 1:
            SerialBackend().run(plan)
            return
        # Fork keeps dynamically-registered scenarios (tests) visible in
        # workers; spawned workers re-import the built-ins by name.
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context("spawn")
        cache_root = str(plan.cache.root)
        profile_root = str(plan.profile_cache.root)
        first_error: BaseException | None = None
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.jobs, len(plan.pending)), mp_context=context
        ) as pool:
            futures = {
                pool.submit(
                    _execute_trial, plan.scenario, i, plan.seeds[i],
                    plan.params, cache_root, profile_root,
                ): i
                for i in plan.pending
            }
            for future in concurrent.futures.as_completed(futures):
                try:
                    plan.record(futures[future], future.result())
                except Exception as exc:  # re-raised below; KeyboardInterrupt
                    if first_error is None:  # and friends propagate at once
                        first_error = exc
        if first_error is not None:
            raise first_error


# ---------------------------------------------------------------------- #
# Shard manifests
# ---------------------------------------------------------------------- #

def parse_shard(text: str) -> tuple[int, int]:
    """Parse a ``"i/N"`` shard designator into ``(index, count)``."""
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"shard must look like I/N (e.g. 0/2), got {text!r}"
        ) from None
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise ValueError(
            f"shard index must be in [0, {count}), got {index}"
        )
    return index, count


def shard_indices(trials: int, index: int, count: int) -> list[int]:
    """Trial indices owned by shard ``index`` of ``count`` (strided).

    Striding (``i, i+N, i+2N, …``) balances heterogeneous trial costs
    better than contiguous blocks and keeps every shard non-empty while
    ``index < trials``.
    """
    if not 0 <= index < count:
        raise ValueError(f"shard index must be in [0, {count}), got {index}")
    return list(range(index, trials, count))


def shard_stream_path(
    directory: str | pathlib.Path, scenario: str, index: int, count: int
) -> pathlib.Path:
    """Canonical JSONL location of one shard's trial stream."""
    return pathlib.Path(directory) / (
        f"{scenario}.shard-{index}of{count}.trials.jsonl"
    )


def _shard_header(trials: int, index: int, count: int) -> dict:
    return {
        "trials": trials,
        "shard": {
            "index": index,
            "count": count,
            "trial_indices": shard_indices(trials, index, count),
        },
    }


def run_shard(
    name: str,
    shard: tuple[int, int],
    trials: int | None = None,
    seed: int = 0,
    params: dict | None = None,
    directory: str | pathlib.Path | None = None,
    cache: PresetCache | None = None,
    profile_cache: ProfileCache | None = None,
    resume: bool = False,
    jobs: int = 1,
    progress: Callable[[int, int], None] | None = None,
) -> pathlib.Path:
    """Execute one shard of a scenario run; returns the stream path.

    This is the worker side of ``python -m repro run <scenario> --shard
    i/N``: it runs only the trial indices owned by the shard, streaming
    each completed trial to the shard's JSONL file.  No aggregate is
    computed — that is :func:`merge_shards`' job once every shard file is
    available.
    """
    from repro.experiments.artifacts import default_results_dir
    from repro.experiments.registry import get_scenario

    index, count = shard
    spec = get_scenario(name)
    n_trials = spec.default_trials if trials is None else trials
    if n_trials < 1:
        raise ValueError(f"trials must be >= 1, got {n_trials}")
    # Same JSON normalisation as run_scenario, so shard headers compare
    # equal to the coordinator's params regardless of input types.
    run_params = normalize_params(params)
    cache = cache if cache is not None else PresetCache()
    profile_cache = (
        profile_cache if profile_cache is not None else ProfileCache()
    )
    out_dir = (
        pathlib.Path(directory) if directory is not None
        else default_results_dir()
    )
    path = shard_stream_path(out_dir, name, index, count)
    seeds = [trial_seed(seed, i) for i in range(n_trials)]
    owned = shard_indices(n_trials, index, count)
    stream = TrialStream(
        path, scenario=name, seed=seed, params=run_params, resume=resume,
        extra_header=_shard_header(n_trials, index, count),
    )
    pending = [i for i in owned if i not in stream.completed]
    done = len(owned) - len(pending)

    def record(i: int, payload: dict) -> None:
        nonlocal done
        stream.append(i, seeds[i], payload)
        done += 1
        if progress is not None:
            progress(done, len(owned))

    plan = ExecutionPlan(
        scenario=name, spec=spec, trials=n_trials, seed=seed, seeds=seeds,
        params=run_params, pending=pending, cache=cache,
        profile_cache=profile_cache, record=record,
    )
    worker = SerialBackend() if jobs == 1 else ProcessPoolBackend(jobs)
    try:
        worker.run(plan)
    finally:
        stream.close()
    return path


# ---------------------------------------------------------------------- #
# Reading and merging shard streams
# ---------------------------------------------------------------------- #

def read_shard(path: str | pathlib.Path) -> tuple[dict, dict[int, dict]]:
    """Read one shard stream: ``(header, {trial_index: record})``.

    Each record keeps the trial's ``seed`` alongside ``metrics`` and
    ``detail`` so the merge can re-validate seed derivation.
    """
    path = pathlib.Path(path)
    lines = [line for line in path.read_text().splitlines() if line]
    if not lines:
        raise ValueError(f"shard stream {path} is empty")
    header = json.loads(lines[0])
    if header.get("type") != "header":
        raise ValueError(f"shard stream {path} does not start with a header")
    records: dict[int, dict] = {}
    for line in lines[1:]:
        record = json.loads(line)
        if record.get("type") != "trial":
            continue
        records[int(record["trial_index"])] = {
            "seed": record.get("seed"),
            "metrics": record["metrics"],
            "detail": record.get("detail", {}),
        }
    return header, records


def discover_shards(
    directory: str | pathlib.Path, scenario: str
) -> list[pathlib.Path]:
    """All shard stream files for ``scenario`` under ``directory``."""
    return sorted(
        pathlib.Path(directory).glob(f"{scenario}.shard-*of*.trials.jsonl")
    )


def merge_shards(
    paths: list[str | pathlib.Path],
    scenario: str | None = None,
    elapsed_s: float = 0.0,
) -> ScenarioResult:
    """Fuse shard stream files into the canonical aggregate result.

    Validation mirrors ``TrialStream`` resume, extended across files:

    * every header must agree on scenario, base seed, params, total
      trials, and shard count;
    * shard indices must be distinct (no double-submitted shard);
    * every recorded trial must belong to its shard's manifest and carry
      the seed :func:`repro.experiments.runner.trial_seed` derives;
    * the union of trials must cover ``0..trials-1`` exactly once.

    The aggregate goes through
    :func:`repro.experiments.runner.aggregate_result`, so the returned
    result — and the artifact written from it — is identical to what a
    single-host run of the same (scenario, trials, seed, params) produces.
    """
    if not paths:
        raise ValueError("merge_shards needs at least one shard file")
    headers: list[tuple[pathlib.Path, dict]] = []
    all_records: list[tuple[pathlib.Path, dict[int, dict]]] = []
    for path in paths:
        header, records = read_shard(path)
        headers.append((pathlib.Path(path), header))
        all_records.append((pathlib.Path(path), records))

    first_path, first = headers[0]
    if scenario is not None and first.get("scenario") != scenario:
        raise ValueError(
            f"{first_path} holds scenario {first.get('scenario')!r}, "
            f"expected {scenario!r}"
        )
    for key in ("scenario", "seed", "params", "trials"):
        if key not in first:
            raise ValueError(f"{first_path} header is missing {key!r}")
        for path, header in headers[1:]:
            if header.get(key) != first[key]:
                raise ValueError(
                    f"cannot merge {path}: stored {key}="
                    f"{header.get(key)!r} does not match "
                    f"{first_path}'s {first[key]!r}"
                )
    counts = {h.get("shard", {}).get("count") for _, h in headers}
    if len(counts) != 1 or None in counts:
        raise ValueError(
            f"shard headers disagree on shard count: {sorted(map(str, counts))}"
        )
    seen_shards: set[int] = set()
    for path, header in headers:
        index = header["shard"]["index"]
        if index in seen_shards:
            raise ValueError(f"duplicate shard index {index} (at {path})")
        seen_shards.add(index)

    n_trials = int(first["trials"])
    base_seed = int(first["seed"])
    payloads: list[dict | None] = [None] * n_trials
    for (path, header), (_, records) in zip(headers, all_records):
        owned = set(header["shard"].get("trial_indices", range(n_trials)))
        for index, record in records.items():
            if index not in owned:
                raise ValueError(
                    f"{path}: trial {index} does not belong to shard "
                    f"{header['shard']['index']}/{header['shard']['count']}"
                )
            expected_seed = trial_seed(base_seed, index)
            if record["seed"] != expected_seed:
                raise ValueError(
                    f"{path}: trial {index} recorded seed {record['seed']}, "
                    f"but base seed {base_seed} derives {expected_seed}"
                )
            if payloads[index] is not None:
                raise ValueError(f"trial {index} appears in multiple shards")
            payloads[index] = {
                "metrics": record["metrics"], "detail": record["detail"],
            }
    missing = [i for i, p in enumerate(payloads) if p is None]
    if missing:
        raise ValueError(
            f"merge is incomplete: missing trial(s) {missing} "
            f"({len(seen_shards)} of {first['shard']['count']} shard files "
            "present)"
        )
    return aggregate_result(
        str(first["scenario"]), payloads, seed=base_seed,
        params=dict(first["params"]), elapsed_s=elapsed_s,
        jobs=len(seen_shards), backend="sharded-merge",
    )


class ShardedBackend(Backend):
    """Run a scenario as N ``repro run --shard i/N`` subprocesses.

    The single-host orchestration of the sharded workflow: the backend
    writes each shard's JSONL stream into a working directory, launches
    one CLI subprocess per shard, then reads the shard files back
    (re-validating headers and seeds exactly like ``repro merge``) and
    records every trial with the coordinating runner.

    Because the shard worker is the public CLI, anything this backend
    does locally can be reproduced across machines by hand — the
    cross-backend determinism tests pin serial, process-pool, and sharded
    execution to byte-identical artifacts.

    Args:
        shards: Number of shard subprocesses.
        python: Interpreter for the workers (default: ``sys.executable``).
        workdir: Where shard streams land; ``None`` uses a temporary
            directory deleted after the run.
        env: Extra environment variables for the workers (merged over a
            copy of ``os.environ``; ``PYTHONPATH`` is always extended so
            workers can import ``repro`` from this checkout).
        resume: Pass ``--resume`` to the shard workers so trials already
            present in the workdir's shard streams are replayed, not
            re-run.  Only meaningful with a persistent ``workdir``.
    """

    name = "sharded"

    def __init__(
        self,
        shards: int,
        python: str | None = None,
        workdir: str | pathlib.Path | None = None,
        env: dict[str, str] | None = None,
        resume: bool = False,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.python = python or sys.executable
        self.workdir = pathlib.Path(workdir) if workdir is not None else None
        self.env = dict(env or {})
        self.resume = resume

    def _worker_env(self, plan: ExecutionPlan) -> dict[str, str]:
        import repro

        env = dict(os.environ)
        env.update(self.env)
        package_root = str(pathlib.Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH", "")
        entries = [p for p in existing.split(os.pathsep) if p]
        if package_root not in entries:
            entries.insert(0, package_root)
        env["PYTHONPATH"] = os.pathsep.join(entries)
        # Shard workers must resolve the exact same caches as this
        # process, whatever roots the caller passed programmatically.
        env["REPRO_CACHE_DIR"] = str(plan.cache.root)
        env["REPRO_PROFILE_DIR"] = str(plan.profile_cache.root)
        return env

    def _shard_command(
        self, plan: ExecutionPlan, directory: pathlib.Path, index: int
    ) -> list[str]:
        command = [
            self.python, "-m", "repro", "run", plan.scenario,
            "--shard", f"{index}/{self.shards}",
            "--trials", str(plan.trials),
            "--seed", str(plan.seed),
            "--out", str(directory),
            "--quiet",
        ]
        if self.resume:
            command.append("--resume")
        if plan.params:
            # JSON transport keeps every value type intact; ``--param``
            # pairs would lossily re-coerce strings/lists on the worker.
            command += ["--params-json", json.dumps(plan.params)]
        return command

    def run(self, plan: ExecutionPlan) -> None:
        pending = set(plan.pending)
        if not pending:
            return
        directory = self.workdir
        cleanup: tempfile.TemporaryDirectory | None = None
        if directory is None:
            cleanup = tempfile.TemporaryDirectory(prefix="repro-shards-")
            directory = pathlib.Path(cleanup.name)
        directory.mkdir(parents=True, exist_ok=True)
        env = self._worker_env(plan)
        try:
            procs = []
            for index in range(self.shards):
                owned = shard_indices(plan.trials, index, self.shards)
                if not owned:
                    continue  # more shards than trials: nothing to own
                if not pending.intersection(owned):
                    continue  # every owned trial already replayed upstream
                procs.append((
                    index,
                    subprocess.Popen(
                        self._shard_command(plan, directory, index),
                        env=env,
                        stdout=subprocess.PIPE,
                        stderr=subprocess.PIPE,
                        text=True,
                    ),
                ))
            failures = []
            for index, proc in procs:
                _, stderr = proc.communicate()
                if proc.returncode != 0:
                    tail = "\n".join(stderr.strip().splitlines()[-8:])
                    failures.append(
                        f"shard {index}/{self.shards} exited "
                        f"{proc.returncode}:\n{tail}"
                    )
            if failures:
                raise RuntimeError(
                    "sharded execution failed:\n" + "\n".join(failures)
                )
            for index, _ in procs:
                path = shard_stream_path(
                    directory, plan.scenario, index, self.shards
                )
                header, records = read_shard(path)
                for key, want in (
                    ("scenario", plan.scenario),
                    ("seed", plan.seed),
                    ("params", plan.params),
                    ("trials", plan.trials),
                ):
                    if header.get(key) != want:
                        raise ValueError(
                            f"{path}: header {key}={header.get(key)!r} does "
                            f"not match requested {want!r}"
                        )
                for i in sorted(records):
                    record = records[i]
                    if record["seed"] != plan.seeds[i]:
                        raise ValueError(
                            f"{path}: trial {i} recorded seed "
                            f"{record['seed']}, expected {plan.seeds[i]}"
                        )
                    if i in pending:
                        plan.record(i, {
                            "metrics": record["metrics"],
                            "detail": record["detail"],
                        })
                        pending.discard(i)
            if pending:
                raise RuntimeError(
                    f"shard workers never reported trial(s) "
                    f"{sorted(pending)}"
                )
        finally:
            if cleanup is not None:
                cleanup.cleanup()
