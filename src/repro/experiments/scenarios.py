"""Built-in scenarios: every paper figure/table plus sweep grids.

Each scenario is the single source of truth for one experiment — the
pytest benchmarks under ``benchmarks/`` and the ``python -m repro`` CLI
both execute these definitions through the runner, so reproduction
assertions (``check``) and report tables (``reporter``) live here once.

Scenario naming follows the paper: ``fig1a`` … ``fig9c``, ``table2``,
``table3``, ``power``, ``ablation``, ``semi-whitebox``; the
``sweep-*`` scenarios are new Monte-Carlo grids that go beyond the paper's
published points.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    TABLE2_SPECS,
    derived_capacity_mb,
    evaluate_defense_row,
    format_accuracy_curves,
    format_latency_sweep,
    format_secured_bits_curves,
    format_security_sweep,
    latency_per_tref_ms,
    latency_sweep,
    power_comparison,
    secured_bits_sweep,
    security_sweep,
    table2_rows,
    targeted_vs_random,
    time_to_break_days,
)
from repro.analysis.defense_eval import expand_bits_to_rows
from repro.analysis.report import to_json_list
from repro.attacks import (
    BehavioralDefenseExecutor,
    BfaConfig,
    LogicalDefenseExecutor,
    SoftwareFlipExecutor,
    profile_vulnerable_bits,
    sample_random_bits,
    semi_white_box_attack,
    white_box_adaptive_attack,
)
from repro.core import (
    DefendedDeployment,
    DefenderConfig,
    DNNDefender,
    SwapEngine,
    build_timeline,
    chain_aap_count,
)
from repro.dram import (
    PAPER_GEOMETRY,
    REFRESH_COMMANDS_PER_TREF,
    TRH_BY_GENERATION,
    DramDevice,
    DramGeometry,
    MemoryController,
    RowAddress,
    TimingChecker,
    TimingParams,
)
from repro.experiments.registry import scenario
from repro.mapping import ProtectionPlan
from repro.nn import QuantizedModel, SGD, Tensor, fit, make_resnet20
from repro.nn import functional as F
from repro.utils.tabulate import format_table

__all__ = ["functional_latency_ms", "BEHAVIORAL_DEFENSES"]

# Behavioural block/collateral probabilities of the competing swap/shuffle
# defenses, shared by ``table3`` and ``sweep-defense-grid`` so the two
# scenarios model RRS/SRS/SHADOW identically.  The table now lives with
# the defense registry (``repro.defenses.behavioral``) and is re-exported
# here unchanged for the scenarios and their callers.
from repro.defenses.behavioral import BEHAVIORAL_DEFENSES  # noqa: E402


def _behavioral_executor(qmodel, name, rng):
    block, collateral = BEHAVIORAL_DEFENSES[name]
    return BehavioralDefenseExecutor(
        qmodel, block_prob=block, collateral_prob=collateral, rng=rng
    )


def _dnn_defender_executor(qmodel, dataset, attack_batch, rounds,
                           profile_config, rng, ctx=None, preset_name=None,
                           seed=None):
    """Profile vulnerable bits and secure their DRAM rows (the paper's
    protection granularity); returns the defended flip executor.

    When the trial context and preset name are supplied, the profile goes
    through the on-disk :class:`repro.experiments.ProfileCache` keyed by
    (preset recipe, attack config, seed) — a warm cache replays the
    rounds instead of re-running the multi-round BFA search.
    """
    x, y = dataset.attack_batch(attack_batch, rng)
    if ctx is not None and preset_name is not None:
        profile = ctx.profile(
            preset_name, qmodel, x, y, rounds=rounds, config=profile_config,
            extra_key={
                "attack_batch": attack_batch,
                "seed": seed,
                "purpose": "dnn-defender-executor",
            },
        )
    else:
        profile = profile_vulnerable_bits(
            qmodel, x, y, rounds=rounds, config=profile_config
        )
    secured = expand_bits_to_rows(qmodel, profile.all_bits)
    return LogicalDefenseExecutor(qmodel, secured)


# ---------------------------------------------------------------------- #
# Fig. 1(a): RowHammer thresholds by DRAM generation
# ---------------------------------------------------------------------- #

@scenario(
    "fig1a",
    title="RowHammer thresholds by DRAM generation",
    source="Fig. 1(a)",
    deterministic=True,
    tags=("paper", "analytic"),
)
def fig1a(ctx):
    ratio = TRH_BY_GENERATION["DDR3 (new)"] / TRH_BY_GENERATION["LPDDR4 (new)"]
    metrics = {"ratio_ddr3_new_over_lpddr4_new": ratio}
    for generation, t_rh in TRH_BY_GENERATION.items():
        metrics[f"t_rh[{generation}]"] = float(t_rh)
    return {
        "metrics": metrics,
        "detail": {"thresholds": dict(TRH_BY_GENERATION)},
    }


@fig1a.check
def _fig1a_check(result):
    ratio = result.metric("ratio_ddr3_new_over_lpddr4_new")
    assert 4.0 < ratio < 5.0
    thresholds = result.detail["thresholds"]
    assert min(thresholds.values()) == thresholds["LPDDR4 (new)"]


@fig1a.reporter
def _fig1a_report(result):
    thresholds = result.detail["thresholds"]
    table = format_table(
        ["DRAM generation", "T_RH (hammer count)"],
        [[generation, f"{t_rh:,}"] for generation, t_rh in thresholds.items()],
        title="Fig. 1a — RowHammer threshold by generation",
    )
    ratio = result.metric("ratio_ddr3_new_over_lpddr4_new")
    return f"{table}\nDDR3(new) / LPDDR4(new) = {ratio:.2f}x (paper: ~4.5x)"


# ---------------------------------------------------------------------- #
# Fig. 6: the swap-pipeline timeline and its 3-AAP steady state
# ---------------------------------------------------------------------- #

@scenario(
    "fig6",
    title="Pipelined swap timeline; 3n+1 AAP steady state",
    source="Fig. 6",
    deterministic=True,
    tags=("paper", "dram"),
)
def fig6(ctx):
    timing = TimingParams()
    entries = build_timeline(3, timing, pipelined=True)
    timeline = [
        {
            "swap": e.swap, "step": e.step, "slot": e.slot,
            "start_ns": e.start_ns, "end_ns": e.end_ns,
            "shared_with_next": e.shared_with_next,
            "description": e.description,
        }
        for e in entries
    ]

    # Functional measurement: a chain of 8 swaps on the simulator,
    # optionally validated against the DDR timing rules
    # (``--param timing_check=strict|audit``; off by default so the
    # artifact bytes predate the checker).
    timing_check = str(ctx.param("timing_check", "off"))
    geometry = DramGeometry(
        banks=1, subarrays_per_bank=1, rows_per_subarray=64, row_bytes=64
    )
    controller = MemoryController(DramDevice(geometry), timing)
    controller.device.fill_random(np.random.default_rng(ctx.seed))
    checker = (
        TimingChecker(controller, mode=timing_check)
        if timing_check != "off" else None
    )
    engine = SwapEngine(controller, reserved_rows=2)
    rng = np.random.default_rng(ctx.seed + 1)
    targets = [RowAddress(0, 0, r) for r in range(2, 18, 2)]
    non_targets = [RowAddress(0, 0, r) for r in range(20, 36, 2)]
    for target, nt in zip(targets, non_targets):
        engine.swap_target(target, rng, non_target_logical=nt,
                           exclude=set(targets), pipelined=True)
    metrics = {
        "functional_aaps": float(engine.total_aaps),
        "analytic_aaps": float(chain_aap_count(len(targets), pipelined=True)),
        "unpipelined_aaps": float(
            chain_aap_count(len(targets), pipelined=False)
        ),
    }
    if checker is not None:
        checker.close()
        metrics["timing_violations"] = float(len(checker.violations))
    return {
        "metrics": metrics,
        "detail": {"timeline": timeline, "chain_swaps": len(targets)},
    }


@fig6.check
def _fig6_check(result):
    assert result.metric("functional_aaps") == result.metric("analytic_aaps")
    assert result.metric("functional_aaps") < result.metric("unpipelined_aaps")
    if "timing_violations" in result.metrics:
        assert result.metric("timing_violations") == 0.0


@fig6.reporter
def _fig6_report(result):
    rows = [
        [e["swap"], e["step"], e["slot"], f"{e['start_ns']:.0f}",
         f"{e['end_ns']:.0f}", "yes" if e["shared_with_next"] else "",
         e["description"]]
        for e in result.detail["timeline"]
    ]
    table = format_table(
        ["swap", "step", "slot", "start (ns)", "end (ns)", "shared", "op"],
        rows,
        title="Fig. 6 — pipelined timeline of 3 swaps",
    )
    table += (
        f"\nfunctional chain of {result.detail['chain_swaps']} swaps: "
        f"{result.metric('functional_aaps'):.0f} AAPs (analytic: "
        f"{result.metric('analytic_aaps'):.0f}; unpipelined would be "
        f"{result.metric('unpipelined_aaps'):.0f})"
    )
    return table


# ---------------------------------------------------------------------- #
# Fig. 8(a): time-to-break and defended-BFA capacity vs T_RH
# ---------------------------------------------------------------------- #

@scenario(
    "fig8a",
    title="Time-to-break and defended-BFA capacity vs T_RH",
    source="Fig. 8(a)",
    deterministic=True,
    tags=("paper", "analytic", "security"),
)
def fig8a(ctx):
    points = security_sweep()
    metrics = {}
    for p in points:
        metrics[f"ttb_days[{p.defense}@{p.t_rh}]"] = p.time_to_break_days
        metrics[f"max_bfas[{p.defense}@{p.t_rh}]"] = float(p.max_defended_bfas)
    return {"metrics": metrics, "detail": {"points": to_json_list(points)}}


@fig8a.check
def _fig8a_check(result):
    dd_4k = result.metric("ttb_days[dnn-defender@4000]")
    shadow_4k = result.metric("ttb_days[shadow@4000]")
    assert abs(dd_4k - 1180) < 15
    assert abs(shadow_4k - 894) < 10
    assert abs(dd_4k - shadow_4k - 286) < 10  # "DD protects 286 more days"
    for t_rh in (1000, 2000, 4000, 8000):
        assert (
            result.metric(f"ttb_days[dnn-defender@{t_rh}]")
            > result.metric(f"ttb_days[shadow@{t_rh}]")
        )
    for t_rh, anchor in ((1000, 7000), (2000, 14000), (4000, 28000),
                         (8000, 55000)):
        measured = result.metric(f"max_bfas[dnn-defender@{t_rh}]")
        assert abs(measured - anchor) / anchor < 0.02


@fig8a.reporter
def _fig8a_report(result):
    return format_security_sweep(result.detail["points"])


# ---------------------------------------------------------------------- #
# Fig. 8(b): defense latency per refresh interval vs number of BFAs
# ---------------------------------------------------------------------- #

def functional_latency_ms(n_targets: int, t_rh: int = 1000, seed: int = 0) -> float:
    """Measure the defender's busy time per T_ref on the live simulator."""
    geometry = DramGeometry(
        banks=4, subarrays_per_bank=8, rows_per_subarray=64, row_bytes=64
    )
    timing = TimingParams(t_rh=t_rh)
    controller = MemoryController(DramDevice(geometry), timing)
    controller.device.fill_random(np.random.default_rng(seed))
    targets, non_targets = [], []
    for bank in range(geometry.banks):
        for subarray in range(geometry.subarrays_per_bank):
            per_sub = n_targets // (geometry.banks * geometry.subarrays_per_bank)
            for row in range(2, 2 + per_sub):
                targets.append(RowAddress(bank, subarray, row))
            non_targets.append(RowAddress(bank, subarray, 40))
    plan = ProtectionPlan(
        secured_bits=set(), target_rows=targets, non_target_rows=non_targets
    )
    defender = DNNDefender(controller, plan)
    windows = int(
        timing.t_ref_ns / (timing.hammer_window_ns * defender.config.period_fraction)
    )
    windows = min(windows, 200)
    for _ in range(windows):
        defender.run_window()
        controller.advance_time(defender.period_ns)
    return defender.latency_per_tref_ms()


@scenario(
    "fig8b",
    title="Defense latency per refresh interval vs number of BFAs",
    source="Fig. 8(b)",
    deterministic=True,
    tags=("paper", "analytic", "dram"),
)
def fig8b(ctx):
    points = latency_sweep()
    metrics = {}
    for p in points:
        metrics[f"latency_ms[{p.defense}@{p.t_rh}x{p.n_bfas}]"] = p.latency_ms
    n_targets = int(ctx.param("n_targets", 64))
    metrics["functional_latency_ms"] = functional_latency_ms(
        n_targets=n_targets, seed=ctx.seed
    )
    return {
        "metrics": metrics,
        "detail": {
            "points": to_json_list(points),
            "functional_n_targets": n_targets,
        },
    }


@fig8b.check
def _fig8b_check(result):
    points = result.detail["points"]
    for p in points:
        if p["defense"] != "dnn-defender":
            continue
        shadow = result.metric(f"latency_ms[shadow@{p['t_rh']}x{p['n_bfas']}]")
        assert result.metric(
            f"latency_ms[dnn-defender@{p['t_rh']}x{p['n_bfas']}]"
        ) <= shadow + 1e-9
    for t_rh in (1000, 2000, 4000, 8000):
        series = [
            result.metric(f"latency_ms[dnn-defender@{t_rh}x{n}]")
            for n in (7000, 14000, 28000, 55000)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))
        assert series[-1] <= 32.0 + 1e-6  # saturates below T_ref/2
    assert result.metric("functional_latency_ms") > 0.0


@fig8b.reporter
def _fig8b_report(result):
    table = format_latency_sweep(result.detail["points"])
    table += (
        f"\nfunctional defender latency "
        f"({result.detail['functional_n_targets']} target rows, T_RH=1k): "
        f"{result.metric('functional_latency_ms'):.3f} ms per T_ref"
    )
    return table


# ---------------------------------------------------------------------- #
# Fig. 1(b): targeted BFA vs random flips vs DNN-Defender
# ---------------------------------------------------------------------- #

@scenario(
    "fig1b",
    title="Targeted BFA vs random flips vs DNN-Defender (ResNet-34)",
    source="Fig. 1(b)",
    presets=("resnet34_imagenet",),
    tags=("paper", "attack"),
)
def fig1b(ctx):
    preset = ctx.preset("resnet34_imagenet")
    curves = targeted_vs_random(
        preset.factory,
        preset.state,
        preset.dataset,
        bfa_flips=int(ctx.param("bfa_flips", 12)),
        random_flips=int(ctx.param("random_flips", 100)),
        defended_flips=int(ctx.param("defended_flips", 12)),
        profile_rounds=int(ctx.param("profile_rounds", 8)),
        attack_batch=int(ctx.param("attack_batch", 96)),
        bfa_config=BfaConfig(max_iterations=12, exact_eval_top=4),
        seed=ctx.seed,
    )
    by_label = {c.label: c for c in curves}
    clean = by_label["bfa"].accuracies[0]

    def early_mean(label: str) -> float:
        window = by_label[label].accuracies[1:6]
        return float(np.mean(window)) if window else clean

    bfa_early = early_mean("bfa")
    defended_early = early_mean("dnn-defender")
    return {
        "metrics": {
            "clean_accuracy": clean,
            "preset_clean_accuracy": preset.clean_accuracy,
            "bfa_final_accuracy": by_label["bfa"].accuracies[-1],
            "random_final_accuracy": by_label["random"].accuracies[-1],
            "bfa_early_accuracy": bfa_early,
            "defended_early_accuracy": defended_early,
        },
        "detail": {"curves": to_json_list(curves)},
    }


@fig1b.check
def _fig1b_check(result):
    clean = result.metric("clean_accuracy")
    # Targeted attack devastates within a handful of flips.
    assert clean - result.metric("bfa_final_accuracy") > 0.30
    # >100 random flips barely move the model (paper: ~0.4% drop).
    assert clean - result.metric("random_final_accuracy") < 0.10
    # The defense pushes the targeted attack towards the random level.
    assert (
        result.metric("defended_early_accuracy")
        > result.metric("bfa_early_accuracy") + 0.08
    )


@fig1b.reporter
def _fig1b_report(result):
    text = format_accuracy_curves(result.detail["curves"])
    clean = result.metric("preset_clean_accuracy")
    return text + f"\nclean accuracy: {clean * 100:.2f}%"


# ---------------------------------------------------------------------- #
# Fig. 9: adaptive white-box BFA vs the secured-bit budget (3 panels)
# ---------------------------------------------------------------------- #

def _fig9_trial(ctx, preset_name: str) -> dict:
    preset = ctx.preset(preset_name)
    curves = secured_bits_sweep(
        preset.factory,
        preset.state,
        preset.dataset,
        round_budgets=(1, 2, 4),
        extra_flip_budget=int(ctx.param("extra_flip_budget", 12)),
        attack_batch=int(ctx.param("attack_batch", 96)),
        profile_config=BfaConfig(max_iterations=8, exact_eval_top=4),
        seed=ctx.seed,
    )
    early_index = min(2, len(curves[0].accuracies) - 1)
    metrics = {
        "preset_clean_accuracy": preset.clean_accuracy,
        "early_accuracy_smallest_budget": curves[0].accuracies[early_index],
        "early_accuracy_largest_budget": curves[-1].accuracies[early_index],
    }
    for curve in curves:
        metrics[f"secured_bits[r{curve.profile_rounds}]"] = float(
            curve.secured_bits
        )
        metrics[f"final_accuracy[r{curve.profile_rounds}]"] = (
            curve.final_accuracy
        )
    return {
        "metrics": metrics,
        "detail": {
            "curves": to_json_list(curves),
            "preset": preset.name,
        },
    }


def _fig9_check(result):
    budgets = [c["secured_bits"] for c in result.detail["curves"]]
    assert budgets == sorted(budgets)
    assert budgets[0] > 0
    # More secured bits slows early degradation (Fig. 9 separation).
    assert (
        result.metric("early_accuracy_largest_budget")
        >= result.metric("early_accuracy_smallest_budget") - 0.05
    )


def _fig9_report(result):
    text = format_secured_bits_curves(result.detail["curves"])
    text += f"\nmodel: {result.detail['preset']}, clean accuracy "
    text += f"{result.metric('preset_clean_accuracy') * 100:.2f}%"
    return text


def _register_fig9(panel: str, preset_name: str, victim: str):
    spec = scenario(
        f"fig9{panel}",
        title=f"Secured-bit budget sweep, panel ({panel}): {victim}",
        source=f"Fig. 9({panel})",
        presets=(preset_name,),
        tags=("paper", "attack", "sweep"),
    )(lambda ctx, _name=preset_name: _fig9_trial(ctx, _name))
    spec.check(_fig9_check)
    spec.reporter(_fig9_report)
    return spec


_register_fig9("a", "vgg11_cifar", "VGG-11 / CIFAR-10-like")
_register_fig9("b", "resnet18_imagenet", "ResNet-18 / ImageNet-like")
_register_fig9("c", "resnet34_imagenet", "ResNet-34 / ImageNet-like")


# ---------------------------------------------------------------------- #
# Table 2: hardware overhead of ten RowHammer mitigation frameworks
# ---------------------------------------------------------------------- #

@scenario(
    "table2",
    title="Hardware overhead of ten RowHammer mitigations",
    source="Table 2",
    deterministic=True,
    tags=("paper", "analytic"),
)
def table2(ctx):
    rows = table2_rows(PAPER_GEOMETRY)
    by_name = {s.name: s for s in TABLE2_SPECS}
    return {
        "metrics": {
            "dd_capacity_mb": by_name["DNN-Defender"].total_capacity_mb,
            "counter_per_row_derived_mb": derived_capacity_mb("Counter per Row"),
            "shadow_derived_mb": derived_capacity_mb("SHADOW"),
        },
        "detail": {
            "rows": [[str(cell) for cell in row] for row in rows],
            "geometry": PAPER_GEOMETRY.describe(),
        },
    }


@table2.check
def _table2_check(result):
    by_name = {s.name: s for s in TABLE2_SPECS}
    dd = by_name["DNN-Defender"]
    assert result.metric("dd_capacity_mb") == 0.0
    assert dd.dram_only
    for name, spec in by_name.items():
        if name == "DNN-Defender":
            continue
        assert spec.total_capacity_mb > 0 or spec.uses_fast_memory
    assert abs(result.metric("counter_per_row_derived_mb") - 32.0) < 0.5
    shadow = result.metric("shadow_derived_mb")
    assert abs(shadow - 0.16) / 0.16 < 0.05


@table2.reporter
def _table2_report(result):
    return format_table(
        ["framework", "involved memory", "capacity overhead", "area",
         "derived"],
        result.detail["rows"],
        title=f"Table 2 — overhead on {result.detail['geometry']}",
    )


# ---------------------------------------------------------------------- #
# Table 3: defense comparison on ResNet-20 / CIFAR-10-like
# ---------------------------------------------------------------------- #

def _finetune_binary(model, dataset, epochs=3, lr=0.01, seed=0):
    """Short binarization-aware fine-tune, then bake the binary weights."""
    from repro.defenses.software import bake_binarization, enable_weight_binarization

    enable_weight_binarization(model)
    rng = np.random.default_rng(seed)
    optimizer = SGD(model.parameters(), lr=lr, momentum=0.9)
    n = dataset.x_train.shape[0]
    for _ in range(epochs):
        model.train()
        order = rng.permutation(n)
        for start in range(0, n, 64):
            idx = order[start:start + 64]
            optimizer.zero_grad()
            loss = F.cross_entropy(
                model(Tensor(dataset.x_train[idx])), dataset.y_train[idx]
            )
            loss.backward()
            optimizer.step()
    bake_binarization(model)
    model.eval()


@scenario(
    "table3",
    title="Ten-defense comparison under BFA (ResNet-20)",
    source="Table 3",
    presets=("resnet20_cifar",),
    tags=("paper", "attack", "heavy"),
)
def table3(ctx):
    from repro.defenses.software import (
        ReconstructingExecutor,
        SignActivation,
        WeightReconstructionGuard,
        finetune_with_clustering,
        width_scale_for_capacity,
    )

    preset = ctx.preset("resnet20_cifar")
    dataset = preset.dataset
    seed = ctx.seed
    attack_kw = dict(
        max_iterations=int(ctx.param("max_iterations", 30)),
        attack_batch=int(ctx.param("attack_batch", 96)),
        exact_eval_top=4,
        seed=seed,
    )
    rows = []

    # 1. Undefended baseline.
    qmodel = QuantizedModel(preset.fresh_model())
    rows.append(evaluate_defense_row("baseline", qmodel, dataset, **attack_kw))

    # 2. Piece-wise clustering.
    model = preset.fresh_model()
    finetune_with_clustering(model, dataset, epochs=2, lam=5e-4, lr=0.01)
    rows.append(
        evaluate_defense_row(
            "piece-wise clustering", QuantizedModel(model), dataset,
            **attack_kw,
        )
    )

    # 3. Binary weights.
    model = preset.fresh_model()
    _finetune_binary(model, dataset, epochs=2, seed=seed)
    rows.append(
        evaluate_defense_row(
            "binary weight", QuantizedModel(model), dataset, **attack_kw
        )
    )

    # 4. Model capacity x4 (paper: x16; scaled to CI budget).
    wide_scale = width_scale_for_capacity(0.5, 4.0)
    wide = make_resnet20(num_classes=10, width_scale=wide_scale, seed=seed)
    fit(wide, dataset, epochs=4, batch_size=64, lr=0.08, seed=seed)
    rows.append(
        evaluate_defense_row(
            "model capacity x4", QuantizedModel(wide), dataset, **attack_kw
        )
    )

    # 5. Weight reconstruction.
    qmodel = QuantizedModel(preset.fresh_model())
    guard = WeightReconstructionGuard(qmodel, percentile=99.0)
    executor = ReconstructingExecutor(SoftwareFlipExecutor(qmodel), guard)
    rows.append(
        evaluate_defense_row(
            "weight reconstruction", qmodel, dataset, executor=executor,
            **attack_kw,
        )
    )

    # 6. RA-BNN-like (binary weights + binary activations).
    rabnn = make_resnet20(
        num_classes=10, width_scale=0.5, seed=seed,
        activation_factory=SignActivation,
    )
    fit(rabnn, dataset, epochs=4, batch_size=64, lr=0.05, seed=seed)
    _finetune_binary(rabnn, dataset, epochs=2, seed=seed)
    rows.append(
        evaluate_defense_row(
            "RA-BNN (binary w+a)", QuantizedModel(rabnn), dataset, **attack_kw
        )
    )

    # 7/8/9. RRS / SRS / SHADOW behavioural models.
    for name in BEHAVIORAL_DEFENSES:
        qmodel = QuantizedModel(preset.fresh_model())
        executor = _behavioral_executor(
            qmodel, name, np.random.default_rng(seed + 7)
        )
        rows.append(
            evaluate_defense_row(
                name, qmodel, dataset, executor=executor, **attack_kw
            )
        )

    # 10. DNN-Defender under the adaptive white-box attacker.
    qmodel = QuantizedModel(preset.fresh_model())
    executor = _dnn_defender_executor(
        qmodel, dataset, attack_batch=int(ctx.param("attack_batch", 96)),
        rounds=6, profile_config=BfaConfig(max_iterations=10, exact_eval_top=4),
        rng=np.random.default_rng(seed),
        ctx=ctx, preset_name="resnet20_cifar", seed=seed,
    )
    rows.append(
        evaluate_defense_row(
            "DNN-Defender", qmodel, dataset, executor=executor, **attack_kw
        )
    )

    metrics = {}
    for row in rows:
        metrics[f"clean[{row.name}]"] = row.clean_accuracy
        metrics[f"post[{row.name}]"] = row.post_attack_accuracy
        metrics[f"flips[{row.name}]"] = float(row.bit_flips)
    return {
        "metrics": metrics,
        "detail": {
            "rows": [
                {
                    "name": r.name,
                    "clean_accuracy": r.clean_accuracy,
                    "post_attack_accuracy": r.post_attack_accuracy,
                    "bit_flips": r.bit_flips,
                }
                for r in rows
            ]
        },
    }


@table3.check
def _table3_check(result):
    names = [r["name"] for r in result.detail["rows"]]
    baseline_clean = result.metric("clean[baseline]")
    baseline_post = result.metric("post[baseline]")
    dd_clean = result.metric("clean[DNN-Defender]")
    dd_post = result.metric("post[DNN-Defender]")
    # Baseline collapses hard.
    assert baseline_post < baseline_clean - 0.4
    # DNN-Defender: no clean-accuracy drop, best post-attack accuracy.
    assert dd_post >= dd_clean - 0.05
    for name in names:
        assert dd_post >= result.metric(f"post[{name}]") - 0.02
    # Hardware swap defenses retain far more accuracy than the baseline.
    for name in ("RRS", "SRS", "SHADOW"):
        assert result.metric(f"post[{name}]") > baseline_post
    assert dd_post >= result.metric("post[SHADOW]")


@table3.reporter
def _table3_report(result):
    return format_table(
        ["defense", "clean acc (%)", "post-attack acc (%)", "flip attempts"],
        [
            [r["name"], f"{r['clean_accuracy'] * 100:.2f}",
             f"{r['post_attack_accuracy'] * 100:.2f}", r["bit_flips"]]
            for r in result.detail["rows"]
        ],
        title="Table 3 — defense comparison (ResNet-20, CIFAR-10-like)",
    )


# ---------------------------------------------------------------------- #
# Section 5.1 power claims
# ---------------------------------------------------------------------- #

@scenario(
    "power",
    title="Power: 1.6% saving vs SHADOW-1k, 3.4x vs SRS",
    source="Section 5.1",
    deterministic=True,
    tags=("paper", "analytic"),
)
def power(ctx):
    result = power_comparison()
    return {"metrics": dict(result), "detail": {}}


@power.check
def _power_check(result):
    assert abs(result.metric("saving_vs_shadow_1k_percent") - 1.6) < 0.3
    assert abs(result.metric("improvement_vs_srs") - 3.4) < 0.3


@power.reporter
def _power_report(result):
    return format_table(
        ["metric", "value", "paper"],
        [
            ["DD defense power (mW)",
             f"{result.metric('dd_power_mw'):.1f}", "-"],
            ["SHADOW defense power (mW)",
             f"{result.metric('shadow_power_mw'):.1f}", "-"],
            ["SRS defense power (mW)",
             f"{result.metric('srs_power_mw'):.1f}", "-"],
            ["total-power saving vs SHADOW@1k",
             f"{result.metric('saving_vs_shadow_1k_percent'):.2f}%", "1.6%"],
            ["defense-power improvement vs SRS",
             f"{result.metric('improvement_vs_srs'):.2f}x", "3.4x"],
        ],
        title="Section 5.1 — power comparison",
    )


# ---------------------------------------------------------------------- #
# Ablations: pipelining, priority protection
# ---------------------------------------------------------------------- #

@scenario(
    "ablation",
    title="Ablations: priority bits vs random; pipelined vs flat swaps",
    source="DESIGN.md §5",
    presets=("resnet20_cifar",),
    tags=("paper", "attack"),
)
def ablation(ctx):
    """Priority bits vs random bits at equal budget, and pipelining.

    The protection comparison replays a defense-unaware (semi-white-box)
    BFA through each secured set: the profiler's own bit choices block
    the planned flips, an equal number of random bits essentially never
    does.  (An adaptive attacker who *knows* the secured set just picks
    the next-best of ~half a million bits, so at this budget both
    variants degenerate to greedy-search noise — the defense-unaware
    replay is the setting where the priority ablation is measurable.)
    """
    preset = ctx.preset("resnet20_cifar")
    dataset = preset.dataset
    rng = np.random.default_rng(ctx.seed)
    x, y = dataset.attack_batch(96, rng)
    config = BfaConfig(max_iterations=10, exact_eval_top=4)

    # Priority protection vs random protection at equal budget.
    qmodel = QuantizedModel(preset.fresh_model())
    profile = profile_vulnerable_bits(qmodel, x, y, rounds=6, config=config)
    secured = profile.all_bits
    budget = len(secured)

    accuracies = {}
    blocked = {}
    for label, bits in (
        ("priority", secured),
        ("random", set(sample_random_bits(qmodel, budget,
                                          np.random.default_rng(ctx.seed + 3)))),
    ):
        victim = QuantizedModel(preset.fresh_model())
        outcome = semi_white_box_attack(
            victim, x, y,
            executor=LogicalDefenseExecutor(victim, bits),
            config=BfaConfig(max_iterations=6, exact_eval_top=4),
            eval_x=dataset.x_test, eval_y=dataset.y_test,
        )
        accuracies[label] = outcome.final_accuracy
        blocked[label] = float(len(outcome.blocked))

    # Pipelining: analytic latency below the saturation point.
    timing = TimingParams(t_rh=4000)
    latency_pipe = latency_per_tref_ms("dnn-defender", 7000, timing)
    latency_flat = latency_per_tref_ms("dnn-defender-unpipelined", 7000,
                                       timing)
    return {
        "metrics": {
            "secured_bit_budget": float(budget),
            "post_attack_accuracy_priority": accuracies["priority"],
            "post_attack_accuracy_random": accuracies["random"],
            "blocked_flips_priority": blocked["priority"],
            "blocked_flips_random": blocked["random"],
            "latency_pipelined_ms": latency_pipe,
            "latency_unpipelined_ms": latency_flat,
        },
        "detail": {},
    }


@ablation.check
def _ablation_check(result):
    # Priority protection strictly helps at equal budget: it blocks more
    # of the planned flips and retains more accuracy.
    assert (
        result.metric("blocked_flips_priority")
        > result.metric("blocked_flips_random")
    )
    assert (
        result.metric("post_attack_accuracy_priority")
        >= result.metric("post_attack_accuracy_random")
    )
    # Pipelining strictly reduces latency below the saturation point.
    assert (
        result.metric("latency_pipelined_ms")
        < result.metric("latency_unpipelined_ms")
    )


@ablation.reporter
def _ablation_report(result):
    return format_table(
        ["ablation", "value"],
        [
            ["secured-bit budget",
             f"{result.metric('secured_bit_budget'):.0f}"],
            ["post-attack acc, priority bits (%)",
             f"{result.metric('post_attack_accuracy_priority') * 100:.2f}"],
            ["post-attack acc, random bits (%)",
             f"{result.metric('post_attack_accuracy_random') * 100:.2f}"],
            ["blocked flips, priority bits",
             f"{result.metric('blocked_flips_priority'):.0f}"],
            ["blocked flips, random bits",
             f"{result.metric('blocked_flips_random'):.0f}"],
            ["latency/T_ref pipelined (ms)",
             f"{result.metric('latency_pipelined_ms'):.2f}"],
            ["latency/T_ref unpipelined (ms)",
             f"{result.metric('latency_unpipelined_ms'):.2f}"],
        ],
        title="Ablations — priority protection and swap pipelining",
    )


# ---------------------------------------------------------------------- #
# Section 5.2: semi-white-box BFA through the full DRAM path
# ---------------------------------------------------------------------- #

@scenario(
    "semi-whitebox",
    title="Semi-white-box BFA fails end-to-end through defended DRAM",
    source="Section 5.2",
    presets=("resnet20_cifar",),
    tags=("paper", "attack", "dram"),
)
def semi_whitebox(ctx):
    preset = ctx.preset("resnet20_cifar")
    deployment = DefendedDeployment.from_preset(
        preset,
        geometry=DramGeometry(
            banks=2, subarrays_per_bank=8, rows_per_subarray=64,
            row_bytes=256,
        ),
        timing=TimingParams(t_rh=1000),
        profile_rounds=2,
        profile_config=BfaConfig(max_iterations=8, exact_eval_top=4),
        attack_batch_size=96,
        seed=ctx.seed,
    )
    rng = np.random.default_rng(ctx.seed + 1)
    x, y = preset.dataset.attack_batch(96, rng)
    result = semi_white_box_attack(
        deployment.qmodel, x, y,
        executor=deployment.hammer_executor(),
        config=BfaConfig(max_iterations=8, exact_eval_top=4),
        eval_x=preset.dataset.x_test, eval_y=preset.dataset.y_test,
    )
    return {
        "metrics": {
            "planned_flips": float(len(result.planned_sequence)),
            "landed_flips": float(len(result.landed)),
            "blocked_flips": float(len(result.blocked)),
            "initial_accuracy": result.initial_accuracy,
            "final_accuracy": result.final_accuracy,
            "accuracy_drop": result.accuracy_drop,
            "defender_swaps": float(deployment.defender.stats.swaps_executed),
        },
        "detail": {},
    }


@semi_whitebox.check
def _semi_whitebox_check(result):
    assert result.metric("planned_flips") > 0
    assert (
        result.metric("blocked_flips")
        >= result.metric("planned_flips") // 2
    )
    assert result.metric("accuracy_drop") < 0.10
    assert result.metric("defender_swaps") > 0


@semi_whitebox.reporter
def _semi_whitebox_report(result):
    return format_table(
        ["metric", "value"],
        [
            ["planned flips", f"{result.metric('planned_flips'):.0f}"],
            ["landed", f"{result.metric('landed_flips'):.0f}"],
            ["blocked by defense", f"{result.metric('blocked_flips'):.0f}"],
            ["initial accuracy (%)",
             f"{result.metric('initial_accuracy') * 100:.2f}"],
            ["final accuracy (%)",
             f"{result.metric('final_accuracy') * 100:.2f}"],
            ["defender swaps executed",
             f"{result.metric('defender_swaps'):.0f}"],
        ],
        title="Section 5.2 — semi-white-box BFA vs DNN-Defender (DRAM path)",
    )


# ---------------------------------------------------------------------- #
# Sweep: model x defense Monte-Carlo grid (beyond the paper's points)
# ---------------------------------------------------------------------- #

_SWEEP_DEFENSES = ("baseline", "dnn-defender", "RRS", "SRS", "SHADOW")


@scenario(
    "sweep-defense-grid",
    title="Model x defense grid: post-attack accuracy Monte-Carlo",
    source="extension of Table 3",
    presets=("resnet20_cifar",),
    tags=("sweep", "attack"),
    default_trials=3,
)
def sweep_defense_grid(ctx):
    """One Monte-Carlo sample of the defense grid.

    Unlike ``table3`` (one calibrated run per defense at the paper's
    seeds), every trial re-rolls the attack batch, the behavioural
    defense outcomes, and the profiler, so aggregate means/CIs quantify
    the *distribution* of post-attack accuracy per defense.
    """
    preset = ctx.preset(str(ctx.param("model", "resnet20_cifar")))
    dataset = preset.dataset
    seed = ctx.seed
    attack_kw = dict(
        max_iterations=int(ctx.param("max_iterations", 12)),
        attack_batch=int(ctx.param("attack_batch", 96)),
        exact_eval_top=4,
        seed=seed,
    )
    metrics = {}
    for index, name in enumerate(_SWEEP_DEFENSES):
        qmodel = QuantizedModel(preset.fresh_model())
        executor = None
        if name == "dnn-defender":
            executor = _dnn_defender_executor(
                qmodel, dataset, attack_batch=attack_kw["attack_batch"],
                rounds=int(ctx.param("profile_rounds", 4)),
                profile_config=BfaConfig(max_iterations=8, exact_eval_top=4),
                rng=np.random.default_rng(seed),
                ctx=ctx, preset_name=str(ctx.param("model", "resnet20_cifar")),
                seed=seed,
            )
        elif name in BEHAVIORAL_DEFENSES:
            executor = _behavioral_executor(
                qmodel, name, ctx.rng(stream=100 + index)
            )
        row = evaluate_defense_row(
            name, qmodel, dataset, executor=executor, **attack_kw
        )
        metrics[f"clean[{name}]"] = row.clean_accuracy
        metrics[f"post[{name}]"] = row.post_attack_accuracy
        metrics[f"attempts[{name}]"] = float(row.bit_flips)
    return {"metrics": metrics, "detail": {"defenses": list(_SWEEP_DEFENSES)}}


@sweep_defense_grid.check
def _sweep_defense_grid_check(result):
    # On average the baseline collapses and DNN-Defender holds the line.
    assert (
        result.metric("post[dnn-defender]") >= result.metric("post[baseline]")
    )
    assert (
        result.metric("post[dnn-defender]")
        >= result.metric("clean[dnn-defender]") - 0.05
    )


@sweep_defense_grid.reporter
def _sweep_defense_grid_report(result):
    rows = []
    for name in result.detail["defenses"]:
        post = result.metrics[f"post[{name}]"]
        rows.append(
            [
                name,
                f"{result.metric(f'clean[{name}]') * 100:.2f}",
                f"{post.mean * 100:.2f} ± {post.ci95 * 100:.2f}",
                f"{result.metric(f'attempts[{name}]'):.1f}",
            ]
        )
    return format_table(
        ["defense", "clean acc (%)", "post-attack acc (%)", "attempts"],
        rows,
        title=(
            f"Defense grid — {result.trials} trials, "
            "mean ± 95% CI per defense"
        ),
    )


# ---------------------------------------------------------------------- #
# Sweep: hammer-rate grid on the live simulator
# ---------------------------------------------------------------------- #

def _int_grid(value, default: tuple[int, ...]) -> tuple[int, ...]:
    """Coerce a grid parameter (tuple, scalar, or "a,b,c" CLI string)."""
    if value is None:
        return default
    if isinstance(value, str):
        return tuple(int(v) for v in value.split(","))
    if isinstance(value, (int, float)):
        return (int(value),)  # --param grid=4000 coerces to a scalar
    return tuple(int(v) for v in value)


def _float_grid(value, default: tuple[float, ...]) -> tuple[float, ...]:
    """``_int_grid`` for float-valued axes (refresh intervals, budgets)."""
    if value is None:
        return default
    if isinstance(value, str):
        return tuple(float(v) for v in value.split(","))
    if isinstance(value, (int, float)):
        return (float(value),)
    return tuple(float(v) for v in value)


@scenario(
    "sweep-hammer-rate",
    title="Hammer-rate (T_RH) grid: functional vs analytic defender cost",
    source="extension of Fig. 8",
    deterministic=True,
    tags=("sweep", "dram", "analytic"),
)
def sweep_hammer_rate(ctx):
    grid = _int_grid(ctx.param("t_rh_grid"), (1000, 2000, 4000, 8000))
    n_targets = int(ctx.param("n_targets", 64))
    metrics = {}
    for t_rh in grid:
        timing = TimingParams(t_rh=t_rh)
        metrics[f"functional_ms[{t_rh}]"] = functional_latency_ms(
            n_targets=n_targets, t_rh=t_rh, seed=ctx.seed
        )
        metrics[f"analytic_ms[{t_rh}]"] = latency_per_tref_ms(
            "dnn-defender", n_targets, timing
        )
        metrics[f"ttb_days[{t_rh}]"] = time_to_break_days(
            "dnn-defender", timing
        )
    return {
        "metrics": metrics,
        "detail": {"t_rh_grid": list(grid), "n_targets": n_targets},
    }


@sweep_hammer_rate.check
def _sweep_hammer_rate_check(result):
    grid = result.detail["t_rh_grid"]
    for t_rh in grid:
        assert result.metric(f"functional_ms[{t_rh}]") > 0.0
    # Time-to-break is linear in T_RH: strictly increasing along the grid.
    days = [result.metric(f"ttb_days[{t_rh}]") for t_rh in grid]
    assert all(b > a for a, b in zip(days, days[1:]))


@sweep_hammer_rate.reporter
def _sweep_hammer_rate_report(result):
    rows = [
        [
            t_rh,
            f"{result.metric(f'functional_ms[{t_rh}]'):.3f}",
            f"{result.metric(f'analytic_ms[{t_rh}]'):.3f}",
            f"{result.metric(f'ttb_days[{t_rh}]'):.0f}",
        ]
        for t_rh in result.detail["t_rh_grid"]
    ]
    return format_table(
        ["T_RH", "functional (ms)", "analytic (ms)", "time-to-break (days)"],
        rows,
        title=(
            f"Hammer-rate grid — {result.detail['n_targets']} target rows, "
            "functional defender vs analytic model"
        ),
    )


# ---------------------------------------------------------------------- #
# Sweep: refresh interval x T_RH x defense budget, under timing audit
# ---------------------------------------------------------------------- #

@scenario(
    "sweep-refresh-trh",
    title="Refresh interval x T_RH x defense-budget grid under timing audit",
    source="extension of Fig. 8 / Section 5.1",
    deterministic=True,
    tags=("sweep", "dram"),
    default_trials=2,
)
def sweep_refresh_trh(ctx):
    """Defender cost across the refresh/threshold/budget trade-off.

    Shrinking ``T_ref`` hardens against RowHammer (fewer activations fit
    before the victim is refreshed) but raises the refresh bus overhead
    ``tRFC / tREFI``; shrinking the defender's ``period_fraction`` spends
    less of each hammer window on swaps at the cost of per-window
    coverage.  Every grid cell runs the functional defender loop on the
    live simulator with a :class:`TimingChecker` in audit mode attached —
    the sweep doubles as a timing-legality audit of the whole defended
    command stream, and the check asserts zero violations.
    """
    t_ref_grid = _float_grid(ctx.param("t_ref_grid"), (32.0, 64.0))
    t_rh_grid = _int_grid(ctx.param("t_rh_grid"), (1000, 4000))
    budget_grid = _float_grid(ctx.param("budget_grid"), (0.5, 1.0))
    n_targets = int(ctx.param("n_targets", 32))
    geometry = DramGeometry(
        banks=4, subarrays_per_bank=8, rows_per_subarray=64, row_bytes=64
    )
    metrics = {}
    total_violations = 0
    commands_checked = 0
    for t_ref in t_ref_grid:
        timing_ref = TimingParams(
            t_ref_ms=t_ref,
            t_refi_ns=t_ref * 1e6 / REFRESH_COMMANDS_PER_TREF,
        )
        metrics[f"refresh_overhead[{t_ref:g}]"] = (
            timing_ref.refresh_overhead_fraction
        )
        for t_rh in t_rh_grid:
            for budget in budget_grid:
                timing = TimingParams(
                    t_ref_ms=t_ref,
                    t_refi_ns=t_ref * 1e6 / REFRESH_COMMANDS_PER_TREF,
                    t_rh=t_rh,
                )
                controller = MemoryController(DramDevice(geometry), timing)
                controller.device.fill_random(
                    np.random.default_rng(ctx.seed)
                )
                targets, non_targets = [], []
                per_sub = n_targets // (
                    geometry.banks * geometry.subarrays_per_bank
                )
                for bank in range(geometry.banks):
                    for subarray in range(geometry.subarrays_per_bank):
                        for row in range(2, 2 + per_sub):
                            targets.append(RowAddress(bank, subarray, row))
                        non_targets.append(RowAddress(bank, subarray, 40))
                plan = ProtectionPlan(
                    secured_bits=set(), target_rows=targets,
                    non_target_rows=non_targets,
                )
                defender = DNNDefender(
                    controller, plan,
                    config=DefenderConfig(period_fraction=budget),
                )
                with TimingChecker(controller, mode="audit") as checker:
                    windows = int(
                        timing.t_ref_ns
                        / (timing.hammer_window_ns * budget)
                    )
                    windows = min(windows, 30)
                    for _ in range(windows):
                        defender.run_window()
                        controller.advance_time(defender.period_ns)
                total_violations += len(checker.violations)
                commands_checked += checker.commands_checked
                key = f"{t_ref:g}x{t_rh}x{budget:g}"
                metrics[f"latency_ms[{key}]"] = (
                    defender.latency_per_tref_ms()
                )
                metrics[f"swaps[{key}]"] = float(
                    defender.stats.swaps_executed
                )
    metrics["timing_violations"] = float(total_violations)
    metrics["commands_checked"] = float(commands_checked)
    return {
        "metrics": metrics,
        "detail": {
            "t_ref_grid": list(t_ref_grid),
            "t_rh_grid": list(t_rh_grid),
            "budget_grid": list(budget_grid),
            "n_targets": n_targets,
        },
    }


@sweep_refresh_trh.check
def _sweep_refresh_trh_check(result):
    # The defended command stream is timing-legal at every grid point.
    assert result.metric("timing_violations") == 0.0
    assert result.metric("commands_checked") > 0.0
    detail = result.detail
    for t_ref in detail["t_ref_grid"]:
        for t_rh in detail["t_rh_grid"]:
            for budget in detail["budget_grid"]:
                key = f"{t_ref:g}x{t_rh}x{budget:g}"
                assert result.metric(f"swaps[{key}]") > 0.0
                assert result.metric(f"latency_ms[{key}]") > 0.0
    # Shrinking the refresh interval raises the refresh bus overhead.
    overheads = [
        result.metric(f"refresh_overhead[{t_ref:g}]")
        for t_ref in detail["t_ref_grid"]
    ]
    assert all(a >= b for a, b in zip(overheads, overheads[1:]))


@sweep_refresh_trh.reporter
def _sweep_refresh_trh_report(result):
    detail = result.detail
    rows = []
    for t_ref in detail["t_ref_grid"]:
        for t_rh in detail["t_rh_grid"]:
            for budget in detail["budget_grid"]:
                key = f"{t_ref:g}x{t_rh}x{budget:g}"
                rows.append(
                    [
                        f"{t_ref:g}",
                        t_rh,
                        f"{budget:g}",
                        f"{result.metric(f'latency_ms[{key}]'):.3f}",
                        f"{result.metric(f'swaps[{key}]'):.0f}",
                        f"{result.metric(f'refresh_overhead[{t_ref:g}]') * 100:.2f}",
                    ]
                )
    table = format_table(
        ["T_ref (ms)", "T_RH", "budget", "latency (ms)", "swaps",
         "refresh ovh (%)"],
        rows,
        title=(
            f"Refresh x T_RH x budget grid — {detail['n_targets']} target "
            "rows, audit-mode timing checker"
        ),
    )
    table += (
        f"\ntiming audit: {result.metric('timing_violations'):.0f} "
        f"violation(s) over {result.metric('commands_checked'):.0f} "
        "checked command(s)"
    )
    return table


# ---------------------------------------------------------------------- #
# Sweep: model x attack-budget x T_RH through the full DRAM path
# ---------------------------------------------------------------------- #

def _sweep_attack_trh_cost(trial_index: int, params: dict) -> float:
    """Relative trial cost: one deployment + attack per (T_RH, budget) point.

    A sharded-scheduler hint (see ``Scenario.trial_cost``): cost scales
    with the grid size and the summed flip budgets, so grid-enlarged
    runs (``--param t_rh_grid=...``) lease their trials ahead of
    default-grid trials in mixed-resume pools.  Trials are otherwise
    iid, so the index only tie-breaks.
    """
    t_rh_grid = _int_grid(params.get("t_rh_grid"), (1000, 4000))
    budget_grid = _int_grid(params.get("budget_grid"), (4, 8))
    return float(len(t_rh_grid) * sum(budget_grid))


@scenario(
    "sweep-attack-trh",
    title="Model x attack-budget x T_RH grid through the defended DRAM path",
    source="extension of Figs. 7-8",
    presets=("resnet20_cifar",),
    tags=("sweep", "attack", "dram"),
    default_trials=2,
    trial_cost=_sweep_attack_trh_cost,
)
def sweep_attack_trh(ctx):
    """End-to-end accuracy-under-attack grid.

    For every (T_RH, flip budget) grid point a fresh defended deployment
    is built (attacks mutate their victim) and a semi-white-box BFA is
    replayed through the simulated DRAM path — the sweep-scale version
    of the paper's headline claim that protection holds across RowHammer
    thresholds and attack budgets.  ``--param model=...`` swaps the
    victim architecture, extending the grid along the model axis.
    """
    model = str(ctx.param("model", "resnet20_cifar"))
    preset = ctx.preset(model)
    t_rh_grid = _int_grid(ctx.param("t_rh_grid"), (1000, 4000))
    budget_grid = _int_grid(ctx.param("budget_grid"), (4, 8))
    attack_batch = int(ctx.param("attack_batch", 96))
    rng = np.random.default_rng(ctx.seed + 1)
    x, y = preset.dataset.attack_batch(attack_batch, rng)
    metrics = {}
    for t_rh in t_rh_grid:
        for budget in budget_grid:
            deployment = DefendedDeployment.from_preset(
                preset,
                geometry=DramGeometry(
                    banks=2, subarrays_per_bank=8, rows_per_subarray=64,
                    row_bytes=256,
                ),
                timing=TimingParams(t_rh=t_rh),
                profile_rounds=int(ctx.param("profile_rounds", 2)),
                profile_config=BfaConfig(max_iterations=8, exact_eval_top=4),
                attack_batch_size=attack_batch,
                seed=ctx.seed,
            )
            outcome = semi_white_box_attack(
                deployment.qmodel, x, y,
                executor=deployment.hammer_executor(),
                config=BfaConfig(max_iterations=budget, exact_eval_top=4),
                eval_x=preset.dataset.x_test, eval_y=preset.dataset.y_test,
            )
            key = f"{t_rh}x{budget}"
            planned = max(1, len(outcome.planned_sequence))
            metrics[f"final_acc[{key}]"] = outcome.final_accuracy
            metrics[f"acc_drop[{key}]"] = outcome.accuracy_drop
            metrics[f"blocked_frac[{key}]"] = (
                len(outcome.blocked) / planned
            )
    return {
        "metrics": metrics,
        "detail": {
            "model": model,
            "t_rh_grid": list(t_rh_grid),
            "budget_grid": list(budget_grid),
        },
    }


@sweep_attack_trh.check
def _sweep_attack_trh_check(result):
    # The defense holds the line at every grid point: most planned flips
    # are blocked and accuracy never collapses.
    for t_rh in result.detail["t_rh_grid"]:
        for budget in result.detail["budget_grid"]:
            key = f"{t_rh}x{budget}"
            assert result.metric(f"blocked_frac[{key}]") >= 0.5
            assert result.metric(f"acc_drop[{key}]") < 0.20


@sweep_attack_trh.reporter
def _sweep_attack_trh_report(result):
    rows = []
    for t_rh in result.detail["t_rh_grid"]:
        for budget in result.detail["budget_grid"]:
            key = f"{t_rh}x{budget}"
            rows.append(
                [
                    t_rh,
                    budget,
                    f"{result.metric(f'final_acc[{key}]') * 100:.2f}",
                    f"{result.metric(f'acc_drop[{key}]') * 100:.2f}",
                    f"{result.metric(f'blocked_frac[{key}]') * 100:.0f}",
                ]
            )
    return format_table(
        ["T_RH", "flip budget", "final acc (%)", "acc drop (%)",
         "blocked (%)"],
        rows,
        title=(
            f"Attack x T_RH grid — {result.detail['model']}, "
            f"{result.trials} trial(s)"
        ),
    )


# ---------------------------------------------------------------------- #
# Sweep: protected-rows budget x attack budget (the Fig. 6-7 axis)
# ---------------------------------------------------------------------- #

def _priority_rows(profile, weights_per_row: int = 256) -> list[list]:
    """Distinct DRAM row groups of a profile, in priority order.

    Rows appear in the order profiling discovered them (round by round,
    most damaging first) — the order DNN-Defender would claim protection
    slots.  Each entry is the list of profiled bits living in that row.
    """
    rows: dict[tuple[int, int], list] = {}
    for round_bits in profile.rounds:
        for bit in round_bits:
            key = (bit.layer, bit.index // weights_per_row)
            rows.setdefault(key, []).append(bit)
    return list(rows.values())


def _sweep_protected_rows_cost(trial_index: int, params: dict) -> float:
    """Relative trial cost: a profile plus one attack per grid point.

    The ``profile_rounds``-deep profiling dominates, then each
    (rows, budget) point pays one white-box adaptive attack — so the
    hint is rounds-weighted grid size.  Another sharded-scheduler lease
    ordering hint; results never depend on it.
    """
    rows_grid = _int_grid(params.get("rows_grid"), (0, 2, 4, 8))
    budget_grid = _int_grid(params.get("budget_grid"), (6,))
    rounds = int(params.get("profile_rounds", 6))
    return float(rounds + len(rows_grid) * sum(budget_grid))


@scenario(
    "sweep-protected-rows",
    title="Protected-rows x attack-budget grid: accuracy vs protection",
    source="extension of Figs. 6-7",
    presets=("resnet20_cifar",),
    tags=("sweep", "attack"),
    default_trials=2,
    trial_cost=_sweep_protected_rows_cost,
)
def sweep_protected_rows(ctx):
    """Accuracy under attack as the protected-row budget grows.

    One profile (rounds x BFA search) ranks DRAM rows by priority; the
    grid then secures the top-k rows for each k and attacks the model
    with each flip budget — reproducing, beyond the paper's published
    points, the accuracy-vs-#protected-rows axis of Figs. 6-7.
    """
    model = str(ctx.param("model", "resnet20_cifar"))
    preset = ctx.preset(model)
    dataset = preset.dataset
    rows_grid = _int_grid(ctx.param("rows_grid"), (0, 2, 4, 8))
    budget_grid = _int_grid(ctx.param("budget_grid"), (6,))
    attack_batch = int(ctx.param("attack_batch", 96))
    rng = np.random.default_rng(ctx.seed)
    x, y = dataset.attack_batch(attack_batch, rng)
    qmodel = QuantizedModel(preset.fresh_model())
    profile = ctx.profile(
        model, qmodel, x, y,
        rounds=int(ctx.param("profile_rounds", 6)),
        config=BfaConfig(max_iterations=8, exact_eval_top=4),
        extra_key={
            "attack_batch": attack_batch,
            "seed": ctx.seed,
            "purpose": "sweep-protected-rows",
        },
    )
    priority_rows = _priority_rows(profile)
    metrics = {"profiled_rows": float(len(priority_rows))}
    for k in rows_grid:
        chosen = [b for row in priority_rows[:k] for b in row]
        secured = (
            expand_bits_to_rows(qmodel, set(chosen)) if chosen else set()
        )
        metrics[f"secured_bits[r{k}]"] = float(len(secured))
        for budget in budget_grid:
            victim = QuantizedModel(preset.fresh_model())
            executor = LogicalDefenseExecutor(victim, secured)
            outcome = white_box_adaptive_attack(
                victim, x, y, executor, secured,
                config=BfaConfig(max_iterations=budget, exact_eval_top=4),
                eval_x=dataset.x_test, eval_y=dataset.y_test,
            )
            metrics[f"post_acc[r{k}xb{budget}]"] = outcome.final_accuracy
    return {
        "metrics": metrics,
        "detail": {
            "model": model,
            "rows_grid": list(rows_grid),
            "budget_grid": list(budget_grid),
        },
    }


@sweep_protected_rows.check
def _sweep_protected_rows_check(result):
    rows_grid = result.detail["rows_grid"]
    budgets = result.detail["budget_grid"]
    # The secured-bit count grows monotonically with the row budget...
    secured = [result.metric(f"secured_bits[r{k}]") for k in rows_grid]
    assert all(b >= a for a, b in zip(secured, secured[1:]))
    # ...and at the largest attack budget the most-protected point holds
    # at least as much accuracy as the least-protected one (same 5-point
    # Monte-Carlo slack as the Fig. 9 separation check).
    budget = budgets[-1]
    assert (
        result.metric(f"post_acc[r{rows_grid[-1]}xb{budget}]")
        >= result.metric(f"post_acc[r{rows_grid[0]}xb{budget}]") - 0.05
    )


@sweep_protected_rows.reporter
def _sweep_protected_rows_report(result):
    rows = []
    for k in result.detail["rows_grid"]:
        for budget in result.detail["budget_grid"]:
            rows.append(
                [
                    k,
                    f"{result.metric(f'secured_bits[r{k}]'):.0f}",
                    budget,
                    f"{result.metric(f'post_acc[r{k}xb{budget}]') * 100:.2f}",
                ]
            )
    return format_table(
        ["protected rows", "secured bits", "flip budget",
         "post-attack acc (%)"],
        rows,
        title=(
            f"Protected-rows grid — {result.detail['model']}, "
            f"{result.trials} trial(s), "
            f"{result.metric('profiled_rows'):.0f} profiled rows"
        ),
    )
