"""Worker transports for the sharded chunk-lease scheduler.

:class:`repro.experiments.backends.ShardedBackend` plans *what* runs
(chunk leases over pending trial indices, retries, salvage); a
*transport* decides *where and how* a chunk worker process runs and how
its per-trial JSONL stream gets back to the coordinator:

* :class:`LocalSubprocessTransport` — today's behaviour behind the
  interface: ``python -m repro run <scenario> --chunk K
  --trial-indices …`` as a local subprocess writing its stream straight
  into the coordinator's workdir.
* :class:`SSHTransport` — the same CLI worker dispatched over ``ssh`` to
  a pool of hosts (``--hosts host1,host2:4`` or ``REPRO_HOSTS``), with
  the chunk stream pulled back via ``scp``.  Per-host health is tracked:
  a host that keeps failing is quarantined, and when every host is
  quarantined the scheduler degrades gracefully to local execution.
* :class:`ChaosTransport` — a wrapper that injects transport faults
  (connection refused, mid-stream disconnect, stalled I/O, corrupted or
  truncated stream bytes, slow-but-alive workers) deterministically from
  a seed.  Tests and the ``remote-chaos-smoke`` CI job run real sweeps
  through it and assert the merged artifact is byte-identical to a
  serial run — the scheduler's exactly-once guarantee must hold under
  every injected fault.

The contract every transport must honour: the worker appends complete
JSONL lines to its chunk stream, and the coordinator only ever records a
trial it successfully parsed back — so a transport may lose, duplicate,
corrupt, or delay a stream without ever breaking exactly-once recording.
"""

from __future__ import annotations

import json
import os
import pathlib
import posixpath
import random
import shlex
import subprocess
import sys
import time
import uuid
from dataclasses import dataclass, field, replace

from repro.utils.env import env_str

__all__ = [
    "TransportError",
    "WorkerSpec",
    "WorkerHandle",
    "HostSpec",
    "HostHealth",
    "parse_hosts",
    "Transport",
    "LocalSubprocessTransport",
    "SSHTransport",
    "ChaosTransport",
    "CHAOS_FAULTS",
    "build_transport",
    "chunk_stream_path",
    "chunk_worker_command",
]


class TransportError(RuntimeError):
    """Launch-time transport failure (connection refused, no healthy host).

    Raised by :meth:`Transport.start`; the scheduler treats it as a
    *host* problem, not a *chunk* problem — the chunk is requeued
    without consuming its retry budget, and the failure counts toward
    the host's quarantine threshold instead.
    """

    def __init__(self, message: str, host: str | None = None):
        super().__init__(message)
        self.host = host


def chunk_stream_path(
    directory: str | pathlib.Path, scenario: str, chunk_id: int
) -> pathlib.Path:
    """Canonical JSONL location of one chunk lease's trial stream."""
    return pathlib.Path(directory) / (
        f"{scenario}.chunk-{chunk_id:04d}.trials.jsonl"
    )


@dataclass
class WorkerSpec:
    """Everything a transport needs to launch one chunk worker.

    ``env`` holds only the coordinator's *extra* variables (cache roots,
    chaos injection, user overrides) — never a full ``os.environ`` copy,
    so remote transports can ship it verbatim without leaking the local
    environment across machines.
    """

    scenario: str
    chunk_id: int
    indices: list[int]
    trials: int
    seed: int
    params: dict
    workdir: pathlib.Path
    attempt: int
    env: dict[str, str] = field(default_factory=dict)
    heartbeat_interval: float | None = None

    @property
    def stream_name(self) -> str:
        return chunk_stream_path(".", self.scenario, self.chunk_id).name

    @property
    def log_name(self) -> str:
        return (
            f"{self.scenario}.chunk-{self.chunk_id:04d}"
            f".attempt-{self.attempt}.log"
        )


def chunk_worker_command(
    python: str, spec: WorkerSpec, out_dir: str
) -> list[str]:
    """The public-CLI chunk-worker invocation for ``spec``.

    Shared by every transport so a chunk behaves identically no matter
    where it runs — the cross-backend byte-identity contract depends on
    the worker, not the wire.
    """
    command = [
        python, "-m", "repro", "run", spec.scenario,
        "--chunk", str(spec.chunk_id),
        "--trial-indices", ",".join(str(i) for i in spec.indices),
        "--trials", str(spec.trials),
        "--seed", str(spec.seed),
        "--out", str(out_dir),
        "--quiet",
    ]
    if spec.params:
        # JSON transport keeps every value type intact; ``--param``
        # pairs would lossily re-coerce strings/lists on the worker.
        command += ["--params-json", json.dumps(spec.params)]
    if spec.heartbeat_interval is not None:
        command += ["--heartbeat-interval", f"{spec.heartbeat_interval:g}"]
    return command


class WorkerHandle:
    """One launched chunk worker, whatever its transport.

    The scheduler polls it like a process: :meth:`poll` for an exit
    code, :meth:`kill` on timeout, :meth:`sync` to refresh the *local*
    copy of its stream file (a no-op for local workers), and
    :meth:`close` to release log handles and the host slot.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        host: str,
        log_path: pathlib.Path,
        stream_path: pathlib.Path,
    ):
        self.spec = spec
        self.host = host
        self.log_path = log_path
        self.stream_path = stream_path

    def poll(self) -> int | None:
        raise NotImplementedError

    def kill(self) -> None:
        raise NotImplementedError

    def wait(self) -> None:
        raise NotImplementedError

    def sync(self) -> None:
        """Refresh the local copy of the worker's stream file."""

    def close(self) -> None:
        """Release resources (idempotent)."""

    def error_tail(self, lines: int = 8) -> str:
        try:
            text = self.log_path.read_text().strip()
        except OSError:
            return ""
        return "\n".join(text.splitlines()[-lines:])


@dataclass(frozen=True)
class HostSpec:
    """One remote host: name (``user@machine`` accepted) and worker slots."""

    name: str
    slots: int = 1


def parse_hosts(text: str) -> list[HostSpec]:
    """Parse a ``host1,host2:4,user@host3`` spec into :class:`HostSpec`\\ s.

    ``host:N`` grants N concurrent worker slots on that host (default 1).
    """
    hosts: list[HostSpec] = []
    seen: set[str] = set()
    for entry in filter(None, (part.strip() for part in text.split(","))):
        name, _, slots_text = entry.partition(":")
        if not name:
            raise ValueError(f"empty host name in hosts spec {text!r}")
        try:
            slots = int(slots_text) if slots_text else 1
        except ValueError:
            raise ValueError(
                f"host slots must be an integer, got {entry!r}"
            ) from None
        if slots < 1:
            raise ValueError(f"host slots must be >= 1, got {entry!r}")
        if name in seen:
            raise ValueError(f"duplicate host {name!r} in hosts spec")
        seen.add(name)
        hosts.append(HostSpec(name=name, slots=slots))
    if not hosts:
        raise ValueError(f"hosts spec {text!r} names no hosts")
    return hosts


class HostHealth:
    """Consecutive-failure tracking with quarantine.

    A host is quarantined after ``quarantine_after`` *consecutive*
    failures (any success resets its counter).  Quarantine lasts for the
    rest of the run — the scheduler's graceful-degradation path (fall
    back to local execution) is the recovery story, not re-probing a
    host that already burned its retry budget.
    """

    def __init__(self, hosts: list[str], quarantine_after: int = 3):
        if quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, got {quarantine_after}"
            )
        self.quarantine_after = quarantine_after
        self.failures: dict[str, int] = {host: 0 for host in hosts}
        self.quarantined: set[str] = set()

    def record_success(self, host: str) -> None:
        if host in self.failures:
            self.failures[host] = 0

    def record_failure(self, host: str) -> bool:
        """Count one failure; returns True when this quarantines the host."""
        if host not in self.failures or host in self.quarantined:
            return False
        self.failures[host] += 1
        if self.failures[host] >= self.quarantine_after:
            self.quarantined.add(host)
            return True
        return False

    def healthy(self) -> list[str]:
        return [h for h in self.failures if h not in self.quarantined]

    @property
    def available(self) -> bool:
        return bool(self.healthy())


class Transport:
    """Launches chunk workers somewhere and reports host availability."""

    name = "abstract"

    def start(self, spec: WorkerSpec) -> WorkerHandle:
        """Launch one chunk worker; raises :class:`TransportError` when
        no healthy host can take it (connection refused, pool empty)."""
        raise NotImplementedError

    def report(self, handle: WorkerHandle, ok: bool) -> None:
        """Outcome feedback from the scheduler (host-health bookkeeping)."""

    def available(self) -> bool:
        """False once every host is quarantined (triggers degradation)."""
        return True

    def capacity(self) -> int | None:
        """Total healthy worker slots; ``None`` means unbounded."""
        return None

    def describe(self) -> str:
        return self.name

    def close(self) -> None:
        """Best-effort cleanup (remote scratch dirs, cached connections)."""


def _repro_package_root() -> str:
    import repro

    return str(pathlib.Path(repro.__file__).resolve().parents[1])


class _SubprocessWorkerHandle(WorkerHandle):
    """A worker backed by a local ``Popen`` (direct or an ssh client)."""

    def __init__(self, spec, host, log_path, stream_path, proc, log_file,
                 transport=None):
        super().__init__(spec, host, log_path, stream_path)
        self.proc = proc
        self._log_file = log_file
        self._transport = transport
        self._closed = False

    def poll(self) -> int | None:
        return self.proc.poll()

    def kill(self) -> None:
        try:
            self.proc.kill()
        except OSError:
            pass

    def wait(self) -> None:
        self.proc.wait()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._log_file.close()
        if self._transport is not None:
            self._transport._release(self)


class LocalSubprocessTransport(Transport):
    """Chunk workers as local subprocesses (the historical behaviour).

    Worker stdout/stderr goes to a per-lease log file — never a pipe —
    so a chatty worker cannot fill a pipe and deadlock the scheduler's
    poll loop, and the stream file is written directly into the
    coordinator's workdir (``sync`` is a no-op).
    """

    name = "local"

    def __init__(self, python: str | None = None,
                 env: dict[str, str] | None = None):
        self.python = python or sys.executable
        self.env = dict(env or {})

    def _full_env(self, spec: WorkerSpec) -> dict[str, str]:
        # The local transport intentionally ships the coordinator's
        # full environment; the worker-env *contract* (explicit extras
        # only) is enforced one layer up in backends.py.
        env = dict(os.environ)  # repro: noqa[REP003]
        env.update(self.env)
        env.update(spec.env)
        package_root = _repro_package_root()
        entries = [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
        if package_root not in entries:
            entries.insert(0, package_root)
        env["PYTHONPATH"] = os.pathsep.join(entries)
        return env

    def start(self, spec: WorkerSpec) -> WorkerHandle:
        log_path = spec.workdir / spec.log_name
        # Live Popen log sink, not an artifact: must be an open handle.
        log_file = open(log_path, "w")  # repro: noqa[REP005]
        try:
            proc = subprocess.Popen(
                chunk_worker_command(self.python, spec, str(spec.workdir)),
                env=self._full_env(spec),
                stdin=subprocess.DEVNULL,
                stdout=log_file,
                stderr=subprocess.STDOUT,
                text=True,
            )
        except BaseException:
            # Not yet wrapped in a handle, so no cleanup path would
            # ever close this file object.
            log_file.close()
            raise
        return _SubprocessWorkerHandle(
            spec, host="local", log_path=log_path,
            stream_path=chunk_stream_path(
                spec.workdir, spec.scenario, spec.chunk_id
            ),
            proc=proc, log_file=log_file,
        )

    def _release(self, handle: WorkerHandle) -> None:  # slot bookkeeping
        pass


class SSHTransport(Transport):
    """Chunk workers dispatched over ``ssh`` to a pool of hosts.

    Each worker runs the same public CLI invocation as a local worker,
    inside ``<remote_root>/<session>/<workdir-name>/`` on the remote
    host; the chunk stream is pulled back with ``scp`` on every
    :meth:`WorkerHandle.sync` (the scheduler syncs before harvesting and
    before any heartbeat-liveness decision).  Host failures the
    scheduler reports through :meth:`report` feed per-host quarantine;
    once every host is quarantined :meth:`available` turns False and the
    scheduler degrades to local execution.

    Assumptions kept deliberately explicit:

    * the remote host can already ``import repro`` (checkout on a shared
      filesystem, or ``remote_pythonpath`` pointing at one);
    * ``spec.env`` (cache roots, chaos injection) is shipped verbatim —
      on a shared filesystem the caches are then shared too; point
      ``env`` overrides at per-host paths otherwise;
    * killing a worker kills the local ssh client; the remote process is
      then orphaned until it finishes (acceptable: its stream is simply
      never harvested again, and exactly-once recording is unaffected).
    """

    name = "ssh"

    def __init__(
        self,
        hosts: str | list[HostSpec],
        python: str = "python3",
        remote_root: str = "/tmp/repro-ssh",
        remote_pythonpath: str | None = None,
        ssh_command: tuple[str, ...] = ("ssh",),
        scp_command: tuple[str, ...] = ("scp",),
        ssh_options: tuple[str, ...] | None = None,
        connect_timeout: float = 10.0,
        quarantine_after: int = 3,
        env: dict[str, str] | None = None,
    ):
        specs = parse_hosts(hosts) if isinstance(hosts, str) else list(hosts)
        if not specs:
            raise ValueError("SSHTransport needs at least one host")
        self.hosts = specs
        self.python = python
        self.remote_root = remote_root
        self.remote_pythonpath = remote_pythonpath
        self.ssh_command = tuple(ssh_command)
        self.scp_command = tuple(scp_command)
        self.ssh_options = (
            ssh_options if ssh_options is not None
            else ("-o", "BatchMode=yes",
                  "-o", f"ConnectTimeout={max(1, int(connect_timeout))}")
        )
        self.env = dict(env or {})
        self.health = HostHealth([h.name for h in specs], quarantine_after)
        self._slots = {h.name: h.slots for h in specs}
        self._load = {h.name: 0 for h in specs}
        self._session = uuid.uuid4().hex[:8]

    # -- host selection ------------------------------------------------- #

    def _pick_host(self) -> str | None:
        """Healthy host with a free slot, least-loaded first."""
        candidates = [
            host for host in self.health.healthy()
            if self._load[host] < self._slots[host]
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda h: (self._load[h], h))

    def available(self) -> bool:
        return self.health.available

    def capacity(self) -> int | None:
        return sum(self._slots[h] for h in self.health.healthy())

    def describe(self) -> str:
        return f"ssh({','.join(h.name for h in self.hosts)})"

    def report(self, handle: WorkerHandle, ok: bool) -> None:
        if ok:
            self.health.record_success(handle.host)
        elif self.health.record_failure(handle.host):
            import warnings

            warnings.warn(
                f"ssh host {handle.host} quarantined after "
                f"{self.health.quarantine_after} consecutive failure(s)",
                RuntimeWarning,
            )

    # -- launch plumbing ------------------------------------------------ #

    def _remote_dir(self, spec: WorkerSpec) -> str:
        return posixpath.join(
            self.remote_root, self._session, spec.workdir.name
        )

    def _remote_command(self, spec: WorkerSpec) -> str:
        remote_dir = self._remote_dir(spec)
        env = dict(self.env)
        env.update(spec.env)
        if self.remote_pythonpath:
            env["PYTHONPATH"] = self.remote_pythonpath
        env_prefix = ""
        if env:
            pairs = " ".join(
                f"{key}={shlex.quote(str(value))}"
                for key, value in sorted(env.items())
            )
            env_prefix = f"env {pairs} "
        worker = " ".join(
            shlex.quote(arg)
            for arg in chunk_worker_command(self.python, spec, remote_dir)
        )
        return f"mkdir -p {shlex.quote(remote_dir)} && {env_prefix}{worker}"

    def start(self, spec: WorkerSpec) -> WorkerHandle:
        host = self._pick_host()
        if host is None:
            raise TransportError(
                "no healthy ssh host with a free worker slot "
                f"(quarantined: {sorted(self.health.quarantined) or 'none'})",
            )
        log_path = spec.workdir / spec.log_name
        # Live Popen log sink, not an artifact: must be an open handle.
        log_file = open(log_path, "w")  # repro: noqa[REP005]
        command = (
            list(self.ssh_command) + list(self.ssh_options)
            + [host, self._remote_command(spec)]
        )
        try:
            proc = subprocess.Popen(
                command,
                stdin=subprocess.DEVNULL,
                stdout=log_file,
                stderr=subprocess.STDOUT,
                text=True,
            )
        except BaseException:
            log_file.close()
            raise
        self._load[host] += 1
        return _SSHWorkerHandle(
            spec, host=host, log_path=log_path,
            stream_path=chunk_stream_path(
                spec.workdir, spec.scenario, spec.chunk_id
            ),
            proc=proc, log_file=log_file, transport=self,
        )

    def _release(self, handle: WorkerHandle) -> None:
        if self._load.get(handle.host, 0) > 0:
            self._load[handle.host] -= 1

    def _fetch(self, handle: WorkerHandle) -> None:
        """Pull the worker's remote stream file into the local workdir.

        Quietly tolerates "no such file" — a worker that has not written
        its header yet simply has nothing to fetch.
        """
        remote = posixpath.join(
            self._remote_dir(handle.spec), handle.spec.stream_name
        )
        command = (
            list(self.scp_command) + ["-q"]
            + [f"{handle.host}:{remote}", str(handle.stream_path)]
        )
        subprocess.run(
            command, stdin=subprocess.DEVNULL,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            timeout=60, check=False,
        )


class _SSHWorkerHandle(_SubprocessWorkerHandle):
    def sync(self) -> None:
        self._transport._fetch(self)


#: Fault modes :class:`ChaosTransport` can inject, per launch:
#:
#: * ``refuse``            — launch raises :class:`TransportError`.
#: * ``disconnect``        — worker killed mid-stream after a seeded delay.
#: * ``stall-io``          — worker stops writing (heartbeats included)
#:                           after a recorded trial but stays alive.
#: * ``truncate-stream``   — worker dies leaving a torn final record.
#: * ``corrupt-stream``    — stream bytes corrupted in transit (mid-file).
#: * ``slow``              — worker sleeps between trials but heartbeats.
CHAOS_FAULTS = (
    "refuse",
    "disconnect",
    "stall-io",
    "truncate-stream",
    "corrupt-stream",
    "slow",
)

#: Fault modes implemented by injecting ``REPRO_CHAOS`` into the worker
#: (scope ``worker``: fires every launch, no once-per-dir marker).
_WORKER_SIDE_FAULTS = ("stall-io", "truncate-stream", "slow")


class ChaosTransport(Transport):
    """Deterministic fault injection around another transport.

    Each launch of ``(chunk_id, attempt)`` draws from a
    ``random.Random((seed, chunk_id, attempt))`` stream — re-running the
    same sweep with the same seed injects the identical fault schedule,
    which is what lets CI diff a chaos-run artifact against a serial
    one.  ``max_faults_per_chunk`` bounds the injections any one chunk
    suffers so a seeded schedule can never exhaust a retry budget sized
    above it; an explicit ``plan`` (``{(chunk_id, attempt): mode}``)
    overrides the seeded draw for tests that script one exact failure.

    With ``hosts`` set, launches rotate over that many *virtual* hosts
    whose health the scheduler's failure reports feed — quarantining
    them all flips :meth:`available` to False, which is how the
    graceful-degradation path is exercised without real machines.
    """

    name = "chaos"

    def __init__(
        self,
        inner: Transport | None = None,
        seed: int = 0,
        rate: float = 0.35,
        modes: tuple[str, ...] = CHAOS_FAULTS,
        plan: dict[tuple[int, int], str] | None = None,
        hosts: list[str] | int | None = None,
        quarantine_after: int = 2,
        max_faults_per_chunk: int = 2,
        slow_s: float = 0.75,
    ):
        unknown = [m for m in modes if m not in CHAOS_FAULTS]
        if unknown:
            raise ValueError(
                f"unknown chaos mode(s) {unknown}; pick from {CHAOS_FAULTS}"
            )
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"chaos rate must be in [0, 1], got {rate}")
        if isinstance(hosts, int):
            hosts = [f"chaos-{i}" for i in range(hosts)]
        self.inner = inner if inner is not None else LocalSubprocessTransport()
        self.seed = seed
        self.rate = rate
        self.modes = tuple(modes)
        self.plan = dict(plan or {})
        self.health = (
            HostHealth(list(hosts), quarantine_after) if hosts else None
        )
        self.max_faults_per_chunk = max_faults_per_chunk
        self.slow_s = slow_s
        self._faults_per_chunk: dict[int, int] = {}
        self._next_host = 0
        #: Every injected fault, as ``(chunk_id, attempt, mode)`` — tests
        #: assert the schedule actually fired (and is seed-reproducible).
        self.injected: list[tuple[int, int, str]] = []

    # -- fault schedule ------------------------------------------------- #

    def decide(self, chunk_id: int, attempt: int) -> str | None:
        """The fault (if any) for this launch — pure in (seed, id, attempt)."""
        if (chunk_id, attempt) in self.plan:
            return self.plan[(chunk_id, attempt)]
        if self._faults_per_chunk.get(chunk_id, 0) >= self.max_faults_per_chunk:
            return None
        rng = random.Random(f"{self.seed}:{chunk_id}:{attempt}")
        if rng.random() >= self.rate:
            return None
        return rng.choice(self.modes)

    def _virtual_host(self) -> str:
        assert self.health is not None
        healthy = self.health.healthy()
        host = healthy[self._next_host % len(healthy)]
        self._next_host += 1
        return host

    # -- Transport interface -------------------------------------------- #

    def available(self) -> bool:
        return self.health.available if self.health is not None else True

    def capacity(self) -> int | None:
        if self.health is not None:
            return len(self.health.healthy())
        return self.inner.capacity()

    def describe(self) -> str:
        return f"chaos(seed={self.seed}, over {self.inner.describe()})"

    def report(self, handle: WorkerHandle, ok: bool) -> None:
        if self.health is not None:
            if ok:
                self.health.record_success(handle.host)
            else:
                self.health.record_failure(handle.host)
        else:
            self.inner.report(handle, ok)

    def close(self) -> None:
        self.inner.close()

    def start(self, spec: WorkerSpec) -> WorkerHandle:
        host = self._virtual_host() if self.health is not None else None
        mode = self.decide(spec.chunk_id, spec.attempt)
        if mode is not None:
            self._faults_per_chunk[spec.chunk_id] = (
                self._faults_per_chunk.get(spec.chunk_id, 0) + 1
            )
            self.injected.append((spec.chunk_id, spec.attempt, mode))
        if mode == "refuse":
            if self.health is not None:
                self.health.record_failure(host)
            raise TransportError(
                f"injected connection refusal (chunk {spec.chunk_id} "
                f"attempt {spec.attempt})",
                host=host,
            )
        if mode in _WORKER_SIDE_FAULTS:
            env = dict(spec.env)
            env["REPRO_CHAOS"] = mode
            env["REPRO_CHAOS_SCOPE"] = "worker"
            if mode == "slow":
                env["REPRO_CHAOS_SLOW_S"] = f"{self.slow_s:g}"
            spec = replace(spec, env=env)
        rng = random.Random(f"{self.seed}:{spec.chunk_id}:{spec.attempt}:delay")
        handle = self.inner.start(spec)
        return _ChaosWorkerHandle(
            handle,
            host=host if host is not None else handle.host,
            mode=mode,
            kill_at=(
                time.monotonic() + rng.uniform(0.05, 0.6)
                if mode == "disconnect" else None
            ),
        )


class _ChaosWorkerHandle(WorkerHandle):
    """Delegating handle that applies in-flight/arrival faults."""

    def __init__(self, inner: WorkerHandle, host: str, mode: str | None,
                 kill_at: float | None):
        super().__init__(inner.spec, host, inner.log_path, inner.stream_path)
        self._inner = inner
        self.mode = mode
        self._kill_at = kill_at
        self._disconnected = False
        self._corrupted = False

    def poll(self) -> int | None:
        if (
            self._kill_at is not None
            and not self._disconnected
            and time.monotonic() >= self._kill_at
        ):
            self._disconnected = True
            self._inner.kill()
            self._inner.wait()
        code = self._inner.poll()
        if code is not None:
            self._arrival_fault(code)
        if code is not None and self._disconnected and code == 0:
            # The worker won the race and exited cleanly before the
            # injected disconnect; report the disconnect anyway so the
            # scheduler exercises its retry path.
            return 255
        return code

    def _arrival_fault(self, code: int) -> None:
        """Corrupt the *received* stream bytes once, after worker exit."""
        if self.mode != "corrupt-stream" or self._corrupted:
            return
        self._corrupted = True
        self.sync()
        try:
            lines = self.stream_path.read_text().splitlines()
        except OSError:
            return
        if len(lines) < 3:
            return  # header plus one record: nothing mid-file to corrupt
        victim = len(lines) // 2 or 1
        lines[victim] = lines[victim][: max(4, len(lines[victim]) // 2)]
        # Chaos transport: the torn write is the point of this test hook.
        self.stream_path.write_text("\n".join(lines) + "\n")  # repro: noqa[REP005]

    def kill(self) -> None:
        self._inner.kill()

    def wait(self) -> None:
        self._inner.wait()

    def sync(self) -> None:
        self._inner.sync()

    def close(self) -> None:
        self._inner.close()

    def error_tail(self, lines: int = 8) -> str:
        tail = self._inner.error_tail(lines)
        if self.mode == "disconnect" and self._disconnected:
            note = "chaos: injected mid-stream disconnect (worker killed)"
            tail = f"{tail}\n{note}" if tail else note
        return tail


def build_transport(
    kind: str | None,
    hosts: str | None = None,
    python: str | None = None,
    env: dict[str, str] | None = None,
    remote_python: str | None = None,
    remote_root: str | None = None,
    chaos_seed: int = 0,
    chaos_rate: float | None = None,
    chaos_modes: str | None = None,
    chaos_hosts: int | None = None,
) -> Transport | None:
    """CLI factory: map ``--transport``/``--hosts``/chaos flags to a Transport.

    ``None``/``"local"`` returns ``None`` — the scheduler then builds its
    default :class:`LocalSubprocessTransport` (preserving the historical
    ``python=``/``env=`` constructor arguments).
    """
    if kind in (None, "local"):
        return None
    if kind == "ssh":
        spec = hosts or env_str("REPRO_HOSTS", "")
        if not spec:
            raise ValueError(
                "--transport ssh needs --hosts host1[,host2:N,...] "
                "(or REPRO_HOSTS)"
            )
        kwargs: dict = {"env": env}
        if remote_python:
            kwargs["python"] = remote_python
        if remote_root:
            kwargs["remote_root"] = remote_root
        return SSHTransport(spec, **kwargs)
    if kind == "chaos":
        modes = CHAOS_FAULTS
        if chaos_modes:
            modes = tuple(
                m.strip() for m in chaos_modes.split(",") if m.strip()
            )
        return ChaosTransport(
            inner=LocalSubprocessTransport(python=python, env=env),
            seed=chaos_seed,
            rate=0.35 if chaos_rate is None else chaos_rate,
            modes=modes,
            hosts=chaos_hosts,
        )
    raise ValueError(
        f"unknown transport {kind!r}; pick from local, ssh, chaos"
    )
