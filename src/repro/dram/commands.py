"""DRAM command vocabulary and per-command cost accounting.

The memory controller issues these commands; each has a latency and an energy
cost drawn from :class:`repro.dram.timing.TimingParams`.  ``AAP`` is the
RowClone ACT-ACT-PRE sequence (two back-to-back activations with no
intervening precharge) that copies an entire row inside a sub-array in
under 100 ns [20].
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.dram.timing import TimingParams

__all__ = [
    "Command",
    "CommandEvent",
    "CommandStats",
    "command_latency_ns",
    "command_energy_pj",
]


class Command(enum.Enum):
    """DRAM bus commands modelled by the simulator."""

    # Members are singletons with identity equality, so the C-level
    # identity hash is equivalent to Enum's Python-level name hash — and
    # command counts are dict-updated on every charge, making this hot.
    __hash__ = object.__hash__

    ACT = "activate"
    PRE = "precharge"
    RD = "read"
    WR = "write"
    AAP = "rowclone_aap"   # ACT-ACT-PRE in-sub-array copy
    REF = "refresh"
    RNG = "rng"            # random-row-number generation (defender step 1)


def command_latency_ns(command: Command, timing: TimingParams) -> float:
    """Latency charged to the command bus for one command."""
    if command is Command.ACT:
        return timing.t_rc_ns
    if command is Command.PRE:
        return timing.t_rp_ns
    if command in (Command.RD, Command.WR):
        return timing.t_rc_ns
    if command is Command.AAP:
        return timing.t_aap_ns
    if command is Command.REF:
        return timing.t_rc_ns
    if command is Command.RNG:
        # The defender needs one random number per swap chain (Fig. 6); its
        # generation overlaps command slack, so it is charged a single
        # activation slot.
        return timing.t_rc_ns
    raise ValueError(f"unknown command {command!r}")


def command_energy_pj(command: Command, timing: TimingParams) -> float:
    """Energy charged for one command."""
    if command in (Command.ACT, Command.RD, Command.WR, Command.REF, Command.RNG):
        return timing.e_act_pj
    if command is Command.PRE:
        return 0.2 * timing.e_act_pj
    if command is Command.AAP:
        return timing.e_aap_pj
    raise ValueError(f"unknown command {command!r}")


@dataclass(frozen=True)
class CommandEvent:
    """One observed controller command, as delivered to command hooks.

    ``time_ns`` is the *issue* time — the controller clock before the
    command's latency is charged (activate hooks, by contrast, see the
    post-charge clock).  ``command`` is ``None`` for an idle
    ``advance_time`` gap, whose length is ``duration_ns``.  A burst of
    ``count`` activations shares one event; the individual ACTs start at
    ``time_ns + i * period`` where the period is ``t_act_eff_ns`` when
    ``hammer`` else ``t_rc_ns``.  ``auto`` marks the controller's own
    bulk refresh (charged no bus time, unlike an explicitly issued REF).
    """

    time_ns: float
    command: Command | None
    actor: str = "system"
    bank: int | None = None
    subarray: int | None = None
    row: int | None = None
    count: int = 1
    hammer: bool = False
    dst_subarray: int | None = None
    dst_row: int | None = None
    auto: bool = False
    duration_ns: float = 0.0


@dataclass
class CommandStats:
    """Running totals of issued commands, time, and energy."""

    counts: dict[Command, int] = field(default_factory=dict)
    total_time_ns: float = 0.0
    total_energy_pj: float = 0.0

    def record(self, command: Command, timing: TimingParams, repeat: int = 1) -> None:
        if repeat < 0:
            raise ValueError(f"repeat must be non-negative, got {repeat}")
        self.counts[command] = self.counts.get(command, 0) + repeat
        self.total_time_ns += command_latency_ns(command, timing) * repeat
        self.total_energy_pj += command_energy_pj(command, timing) * repeat

    def count(self, command: Command) -> int:
        return self.counts.get(command, 0)

    def merge(self, other: "CommandStats") -> None:
        for command, n in other.counts.items():
            self.counts[command] = self.counts.get(command, 0) + n
        self.total_time_ns += other.total_time_ns
        self.total_energy_pj += other.total_energy_pj
