"""DRAM substrate: geometry, timing, commands, RowHammer dynamics.

This package is the reproduction's stand-in for the paper's
Spectre/CACTI/gem5 stack: a functional, command-level DRAM model with
per-row disturbance counters, deterministic RowHammer flips past ``T_RH``,
RowClone in-DRAM copies, and actor-attributed timing/energy accounting.
"""

from repro.dram.address import AddressMapper, BitAddress, RowAddress, RowIndirection
from repro.dram.bank import Bank
from repro.dram.commands import Command, CommandEvent, CommandStats
from repro.dram.controller import MemoryController
from repro.dram.device import DramDevice
from repro.dram.faults import (
    BitFlipEvent,
    DeterministicFlipModel,
    FaultLog,
    ProfiledFlipModel,
)
from repro.dram.geometry import PAPER_GEOMETRY, SMALL_GEOMETRY, DramGeometry
from repro.dram.rowclone import RowCloneEngine
from repro.dram.subarray import Subarray
from repro.dram.timing_rules import (
    RULE_NAMES,
    TimingChecker,
    TimingViolation,
    Violation,
)
from repro.dram.trace import (
    CommandRecord,
    CommandTrace,
    LoadedTrace,
    TraceEntry,
    load_trace,
    stats_payload,
)
from repro.dram.timing import (
    DDR4_DEFAULT,
    LPDDR4_DEFAULT,
    REFRESH_COMMANDS_PER_TREF,
    TRH_BY_GENERATION,
    TRH_LPDDR4,
    TimingParams,
)

__all__ = [
    "AddressMapper",
    "BitAddress",
    "RowAddress",
    "RowIndirection",
    "Bank",
    "Command",
    "CommandEvent",
    "CommandStats",
    "MemoryController",
    "DramDevice",
    "BitFlipEvent",
    "DeterministicFlipModel",
    "FaultLog",
    "ProfiledFlipModel",
    "DramGeometry",
    "PAPER_GEOMETRY",
    "SMALL_GEOMETRY",
    "RowCloneEngine",
    "Subarray",
    "CommandRecord",
    "CommandTrace",
    "LoadedTrace",
    "TraceEntry",
    "load_trace",
    "stats_payload",
    "RULE_NAMES",
    "TimingChecker",
    "TimingViolation",
    "Violation",
    "TimingParams",
    "DDR4_DEFAULT",
    "LPDDR4_DEFAULT",
    "REFRESH_COMMANDS_PER_TREF",
    "TRH_BY_GENERATION",
    "TRH_LPDDR4",
]
