"""DRAM geometry: banks, sub-arrays, rows, and capacity arithmetic.

The paper's hardware experiments assume a 32 GB, 16-bank DDR4 module
(Table 2).  Simulating that capacity cell-for-cell in Python is wasteful, so
:class:`DramGeometry` is fully parameterised; tests and benchmarks use small
geometries while the analytical models (`repro.analysis`) use the paper's
full-size configuration, which only needs the arithmetic (row counts, bytes
per row), never the cells themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DramGeometry", "PAPER_GEOMETRY", "SMALL_GEOMETRY"]


@dataclass(frozen=True)
class DramGeometry:
    """Static shape of one DRAM device.

    Attributes:
        banks: number of banks in the device.
        subarrays_per_bank: sub-arrays per bank; RowClone's fast copy (and
            hence DNN-Defender's swap) only works within one sub-array.
        rows_per_subarray: DRAM rows per sub-array.
        row_bytes: bytes per row (row buffer size).
    """

    banks: int = 16
    subarrays_per_bank: int = 16
    rows_per_subarray: int = 512
    row_bytes: int = 8192

    def __post_init__(self) -> None:
        for name in ("banks", "subarrays_per_bank", "rows_per_subarray", "row_bytes"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.rows_per_subarray < 4:
            raise ValueError(
                "rows_per_subarray must be at least 4 so a sub-array can hold "
                "a target row, an aggressor, a random row and a reserved row"
            )

    @property
    def rows_per_bank(self) -> int:
        return self.subarrays_per_bank * self.rows_per_subarray

    @property
    def total_rows(self) -> int:
        return self.banks * self.rows_per_bank

    @property
    def row_bits(self) -> int:
        return self.row_bytes * 8

    @property
    def capacity_bytes(self) -> int:
        return self.total_rows * self.row_bytes

    @property
    def capacity_gib(self) -> float:
        return self.capacity_bytes / 2**30

    def describe(self) -> str:
        return (
            f"{self.capacity_gib:.2f} GiB: {self.banks} banks x "
            f"{self.subarrays_per_bank} subarrays x {self.rows_per_subarray} rows "
            f"x {self.row_bytes} B"
        )


# The paper's Table 2 configuration: 32 GB, 16 banks.  2 GiB/bank at 8 KiB
# rows = 262,144 rows/bank = 512 subarrays x 512 rows.
PAPER_GEOMETRY = DramGeometry(
    banks=16, subarrays_per_bank=512, rows_per_subarray=512, row_bytes=8192
)

# Default geometry for functional simulation in tests/benchmarks.
SMALL_GEOMETRY = DramGeometry(
    banks=4, subarrays_per_bank=4, rows_per_subarray=64, row_bytes=256
)
