"""Bit-flip fault records and RowHammer flip models.

The paper's hardware threat model (Section 3) is deterministic: once an
aggressor row is activated ``T_RH`` times within a refresh interval, bit
flips are imposed on the two adjacent victim rows, and the attacker — armed
with a full DRAM mapping — can place its target data so the intended bit
lands on a flippable cell ("templating" in DeepHammer terms).

Two flip models realise that abstraction:

* :class:`DeterministicFlipModel` — the paper's model: every bit the attacker
  declares as a target flips when the victim row crosses the threshold.
* :class:`ProfiledFlipModel` — a more physical model where each row has a
  persistent pseudo-random set of vulnerable cells with fixed flip
  directions; declared bits only flip if they sit on vulnerable cells, and
  hammering also flips the row's other vulnerable cells (collateral damage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol

import numpy as np

from repro.dram.address import RowAddress
from repro.utils.bits import get_bit

__all__ = [
    "BitFlipEvent",
    "FaultLog",
    "FlipModel",
    "DeterministicFlipModel",
    "ProfiledFlipModel",
]


@dataclass(frozen=True)
class BitFlipEvent:
    """One materialised RowHammer bit flip."""

    time_ns: float
    physical_row: RowAddress
    bit: int
    old_value: int
    new_value: int


@dataclass
class FaultLog:
    """Chronological record of every flip the device suffered."""

    events: list[BitFlipEvent] = field(default_factory=list)

    def record(self, event: BitFlipEvent) -> None:
        self.events.append(event)

    def flips_in_row(self, row: RowAddress) -> list[BitFlipEvent]:
        return [e for e in self.events if e.physical_row == row]

    @property
    def total_flips(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        self.events.clear()


class FlipModel(Protocol):
    """Decides which bits of a victim row flip at threshold crossing."""

    def flips_for(
        self,
        victim: RowAddress,
        declared_bits: Iterable[int],
        row_data: np.ndarray,
    ) -> list[int]:
        """Return the bit indices (within the row) that flip."""
        ...


class DeterministicFlipModel:
    """Paper threat model: all attacker-declared bits flip at threshold."""

    def flips_for(
        self,
        victim: RowAddress,
        declared_bits: Iterable[int],
        row_data: np.ndarray,
    ) -> list[int]:
        del victim, row_data
        return sorted(set(int(b) for b in declared_bits))


class ProfiledFlipModel:
    """Physical model: rows have fixed vulnerable cells with flip directions.

    Each physical row's vulnerability profile is derived deterministically
    from ``(seed, bank, subarray, row)``, so the profile survives data moves —
    cells are vulnerable, not data.

    Args:
        row_bits: bits per row.
        density: fraction of cells that are RowHammer-vulnerable.
        seed: base seed for the per-row profiles.
        collateral: if True, crossing the threshold also flips vulnerable
            cells the attacker did not declare (towards their weak value).
    """

    def __init__(
        self,
        row_bits: int,
        density: float = 0.02,
        seed: int = 0,
        collateral: bool = True,
    ):
        if not 0.0 <= density <= 1.0:
            raise ValueError(f"density must be in [0, 1], got {density}")
        self.row_bits = row_bits
        self.density = density
        self.seed = seed
        self.collateral = collateral
        self._profiles: dict[RowAddress, tuple[np.ndarray, np.ndarray]] = {}

    def profile(self, row: RowAddress) -> tuple[np.ndarray, np.ndarray]:
        """Return (vulnerable bit indices, weak values) for a physical row."""
        cached = self._profiles.get(row)
        if cached is not None:
            return cached
        rng = np.random.default_rng(
            (self.seed, row.bank, row.subarray, row.row)
        )
        n_vulnerable = int(round(self.row_bits * self.density))
        bits = rng.choice(self.row_bits, size=n_vulnerable, replace=False)
        bits.sort()
        weak_values = rng.integers(0, 2, size=n_vulnerable).astype(np.uint8)
        self._profiles[row] = (bits, weak_values)
        return bits, weak_values

    def flips_for(
        self,
        victim: RowAddress,
        declared_bits: Iterable[int],
        row_data: np.ndarray,
    ) -> list[int]:
        vulnerable, weak_values = self.profile(victim)
        declared = set(int(b) for b in declared_bits)
        flips = []
        for bit, weak in zip(vulnerable, weak_values):
            bit = int(bit)
            current = get_bit(int(row_data[bit // 8]), bit % 8)
            if current == int(weak):
                continue  # already at its weak value; nothing to flip
            if bit in declared or self.collateral:
                flips.append(bit)
        return flips
