"""RowClone convenience engine.

Thin wrapper over :class:`MemoryController` copies that picks Fast-Parallel
Mode (same sub-array, one AAP, <100 ns [20]) or Pipelined-Serial Mode
(cross-sub-array fallback) automatically, and keeps an operation count that
the defense layers report.
"""

from __future__ import annotations

from repro.dram.address import RowAddress
from repro.dram.controller import MemoryController

__all__ = ["RowCloneEngine"]


class RowCloneEngine:
    """Issue in-DRAM row copies through a memory controller."""

    def __init__(self, controller: MemoryController, actor: str = "defender"):
        self.controller = controller
        self.actor = actor
        self.fpm_copies = 0
        self.psm_copies = 0

    def copy(self, src: RowAddress, dst: RowAddress) -> None:
        """Copy ``src`` row to ``dst`` row entirely inside DRAM."""
        if src == dst:
            raise ValueError("source and destination rows are identical")
        if src.same_subarray(dst):
            self.controller.rowclone(src, dst, actor=self.actor)
            self.fpm_copies += 1
        else:
            self.controller.rowclone_psm(src, dst, actor=self.actor)
            self.psm_copies += 1

    @property
    def total_copies(self) -> int:
        return self.fpm_copies + self.psm_copies
