"""Memory controller: command issue, timing, refresh, and RowHammer dynamics.

The controller owns simulated time.  Every command advances the clock and is
charged to an *actor* ("attacker", "defender", "system", ...) so benchmarks
can separate defense latency from attack activity — the paper's "latency per
``T_ref``" metric (Fig. 8b) is exactly the defender's busy time inside one
refresh interval.

RowHammer dynamics: each activation of a physical row

1. restores the activated row's own charge (its disturbance resets),
2. adds one disturbance unit to each physically adjacent row, and
3. when a victim's disturbance crosses ``T_RH`` within a refresh interval,
   the flip model decides which of that row's bits flip (threat model of
   Section 3: deterministic flips on both neighbours by default).

Auto-refresh fires every ``T_ref`` and recharges every row, which resets all
disturbance counters — the attacker must reach the threshold *within* one
refresh interval.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

import numpy as np

from repro.dram.address import RowAddress, RowIndirection
from repro.dram.commands import (
    Command,
    CommandEvent,
    CommandStats,
    command_energy_pj,
    command_latency_ns,
)
from repro.dram.device import DramDevice
from repro.dram.faults import BitFlipEvent
from repro.dram.timing import TimingParams
from repro.utils.env import env_flag

__all__ = ["MemoryController", "fast_path_default"]

ActivateHook = Callable[[RowAddress, float, int], None]
CommandHook = Callable[[CommandEvent], None]


def fast_path_default() -> bool:
    """Resolve the controller fast-path default (env-overridable).

    ``REPRO_DRAM_FAST_PATH=0`` forces the legacy per-call neighbour path;
    anything else (including unset) enables the memoized fast path.  The
    ``repro bench`` harness uses the toggle to measure before/after.
    """
    return env_flag("REPRO_DRAM_FAST_PATH", True)


class MemoryController:
    """Single-channel memory controller over one :class:`DramDevice`.

    ``fast_path`` (default on, see :func:`fast_path_default`) enables the
    memoized neighbour/sub-array adjacency cache used by the activation
    and RowClone hot loops; the slow path recomputes adjacency per call
    and exists as a verifiable fallback for parity tests and the perf
    harness.  Both paths are functionally identical.
    """

    def __init__(
        self,
        device: DramDevice,
        timing: TimingParams,
        fast_path: bool | None = None,
    ):
        self.device = device
        self.timing = timing
        self.fast_path = fast_path_default() if fast_path is None else fast_path
        self.indirection = RowIndirection(device.mapper)
        self.now_ns: float = 0.0
        self.refresh_epoch: int = 0
        self._next_refresh_ns: float = timing.t_ref_ns
        self.stats = CommandStats()
        self.stats_by_actor: dict[str, CommandStats] = {}
        # Attacker-declared target bits per *physical* victim row; consulted
        # by the deterministic flip model when a threshold crossing occurs.
        self._declared_targets: dict[RowAddress, set[int]] = {}
        self._activate_hooks: list[ActivateHook] = []
        # Command hooks observe *every* issued command (trace recording,
        # timing-rule checking).  Emission sites are gated on the list
        # being non-empty so an unobserved controller pays nothing.
        self._command_hooks: list[CommandHook] = []
        # (src, dst) pairs whose rowclone preconditions already passed —
        # geometry-pure, so the memo is shared across controllers and a
        # repeated clone pair skips re-validation even on a fresh device.
        self._clone_checked = device.mapper.checked_clone_pairs
        # Dirty-row bookkeeping for incremental model<->DRAM sync: every
        # content change to a *logical* row records the running version it
        # happened at, so consumers (WeightLayout) can reload only rows
        # touched since their last sync.
        self.content_version: int = 0
        self._dirty_versions: dict[RowAddress, int] = {}
        # Per-command costs resolved once per controller: `_charge` runs on
        # every command and the latency/energy if-chains dominate it.
        self._latency_ns = {
            cmd: command_latency_ns(cmd, timing) for cmd in Command
        }
        self._energy_pj = {
            cmd: command_energy_pj(cmd, timing) for cmd in Command
        }

    # ------------------------------------------------------------------ #
    # Time and refresh
    # ------------------------------------------------------------------ #

    @property
    def next_refresh_ns(self) -> float:
        return self._next_refresh_ns

    def _charge(self, command: Command, actor: str, repeat: int = 1) -> None:
        if not self.fast_path:
            # Legacy accounting path (per-command cost re-derivation), kept
            # for the bench before/after comparison.
            self.stats.record(command, self.timing, repeat)
            actor_stats = self.stats_by_actor.setdefault(actor, CommandStats())
            actor_stats.record(command, self.timing, repeat)
            self.now_ns += command_latency_ns(command, self.timing) * repeat
            return
        # Pre-resolved per-command costs, recorded inline into both the
        # global and per-actor stats: _charge runs on every command.
        elapsed = self._latency_ns[command] * repeat
        energy = self._energy_pj[command] * repeat
        stats = self.stats
        stats.counts[command] = stats.counts.get(command, 0) + repeat
        stats.total_time_ns += elapsed
        stats.total_energy_pj += energy
        actor_stats = self.stats_by_actor.get(actor)
        if actor_stats is None:
            actor_stats = self.stats_by_actor.setdefault(actor, CommandStats())
        actor_stats.counts[command] = (
            actor_stats.counts.get(command, 0) + repeat
        )
        actor_stats.total_time_ns += elapsed
        actor_stats.total_energy_pj += energy
        self.now_ns += elapsed

    def _maybe_refresh(self) -> None:
        while self.now_ns >= self._next_refresh_ns:
            self.refresh_epoch += 1
            self._next_refresh_ns = (
                (self.refresh_epoch + 1) * self.timing.t_ref_ns
            )
            self.device.refresh_all()
            if self._command_hooks:
                # The bulk refresh is pinned to its scheduled boundary,
                # not the (possibly later) clock that crossed it; it
                # charges no bus time, so observers see ``auto=True``.
                self._emit(CommandEvent(
                    time_ns=self.refresh_epoch * self.timing.t_ref_ns,
                    command=Command.REF, auto=True,
                ))

    def advance_time(self, ns: float) -> None:
        """Let idle time pass (crossing refresh boundaries as needed)."""
        if ns < 0:
            raise ValueError(f"cannot advance time by {ns} ns")
        if self._command_hooks and ns > 0:
            self._emit(CommandEvent(
                time_ns=self.now_ns, command=None, duration_ns=ns,
            ))
        self.now_ns += ns
        self._maybe_refresh()

    def ns_until_refresh(self) -> float:
        return max(0.0, self.next_refresh_ns - self.now_ns)

    # ------------------------------------------------------------------ #
    # Dirty-row tracking (incremental model sync)
    # ------------------------------------------------------------------ #

    def _mark_dirty(self, logical: RowAddress) -> None:
        """Record a content change to a logical row (write/flip/copy)."""
        self.content_version += 1
        self._dirty_versions[logical] = self.content_version

    def dirty_rows_since(self, version: int) -> list[RowAddress]:
        """Logical rows whose content changed after ``version``.

        ``version`` is a value previously read from
        :attr:`content_version`; the scan is O(rows ever touched), which
        is bounded by the weight footprint plus collateral rows — orders
        of magnitude below re-reading every row.
        """
        return [
            row for row, v in self._dirty_versions.items() if v > version
        ]

    # ------------------------------------------------------------------ #
    # Adjacency fast path
    # ------------------------------------------------------------------ #

    def _disturb_neighbors(
        self, base: RowAddress, sa, rows: tuple[int, ...], count: int
    ) -> None:
        """Add ``count`` disturbance to physical neighbour rows of ``base``'s
        sub-array and check thresholds.

        RowHammer coupling never crosses a sub-array, so the neighbours of
        any row live in the *same* :class:`Subarray`, and adjacency reduces
        to row arithmetic — no address objects, validation, or lookups on
        the per-burst path.  The victim's :class:`RowAddress` is only
        materialised when its disturbance actually crosses the threshold.
        """
        disturbance = sa.disturbance
        t_rh = self.timing.t_rh
        for row in rows:
            value = disturbance.item(row) + count
            disturbance[row] = value
            if value >= t_rh:
                self._check_threshold(base.with_row(row), sa)

    def _neighbor_rows(self, row: int) -> tuple[int, ...]:
        last = self.device.geometry.rows_per_subarray - 1
        if 0 < row < last:
            return (row - 1, row + 1)
        if row == 0:
            return (1,) if last > 0 else ()
        return (row - 1,)

    # ------------------------------------------------------------------ #
    # Attack-target declarations and hooks
    # ------------------------------------------------------------------ #

    def declare_attack_targets(
        self, victim_physical: RowAddress, bits: Iterable[int]
    ) -> None:
        """Register the bits the attacker intends to flip in a victim row.

        ``bits`` may carry a whole multi-bit flip set at once — the
        batched hammer path (:meth:`repro.attacks.hammer.
        RowHammerAttacker.attempt_flips`) declares every target bit of a
        victim row in one call, so a single threshold crossing resolves
        the full set.
        """
        self.device.mapper.validate(victim_physical)
        self._declared_targets.setdefault(victim_physical, set()).update(
            int(b) for b in bits
        )

    def attack_targets(self, victim_physical: RowAddress) -> frozenset[int]:
        """Currently declared target bits for a physical victim row."""
        return frozenset(self._declared_targets.get(victim_physical, ()))

    def clear_attack_targets(self, victim_physical: RowAddress | None = None) -> None:
        if victim_physical is None:
            self._declared_targets.clear()
        else:
            self._declared_targets.pop(victim_physical, None)

    def register_activate_hook(self, hook: ActivateHook) -> None:
        """Observe activations (used by counter-based trackers/defenses)."""
        self._activate_hooks.append(hook)

    def unregister_activate_hook(self, hook: ActivateHook) -> None:
        """Remove a previously registered activation hook (no-op if absent)."""
        if hook in self._activate_hooks:
            self._activate_hooks.remove(hook)

    def register_command_hook(self, hook: CommandHook) -> None:
        """Observe every issued command (trace recording, timing checks).

        Hooks receive a :class:`CommandEvent` per command at its *issue*
        time (pre-charge clock), in issue order — including the
        controller's own boundary refreshes and idle ``advance_time``
        gaps, which is what makes a recorded stream replayable.
        """
        self._command_hooks.append(hook)

    def unregister_command_hook(self, hook: CommandHook) -> None:
        """Remove a previously registered command hook (no-op if absent)."""
        if hook in self._command_hooks:
            self._command_hooks.remove(hook)

    def _emit(self, event: CommandEvent) -> None:
        for hook in self._command_hooks:
            hook(event)

    # ------------------------------------------------------------------ #
    # Commands
    # ------------------------------------------------------------------ #

    def activate(
        self, physical: RowAddress, actor: str = "system", count: int = 1,
        hammer: bool = False,
    ) -> None:
        """Issue ``count`` ACT(+PRE) pairs to a physical row.

        ``hammer=True`` charges the calibrated effective activation period
        (``t_act_eff_ns``) used by the security model; plain accesses are
        charged ``t_rc_ns``.  Bursts are split at refresh boundaries so a
        burst cannot carry disturbance across a refresh.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.device.mapper.validate(physical)
        period = self.timing.t_act_eff_ns if hammer else self.timing.t_rc_ns
        remaining = count
        while remaining > 0:
            fit = int(self.ns_until_refresh() // period)
            chunk = min(remaining, max(fit, 1))
            self._activate_chunk(physical, actor, chunk, hammer)
            remaining -= chunk
            self._maybe_refresh()

    def _activate_chunk(
        self, physical: RowAddress, actor: str, count: int, hammer: bool
    ) -> None:
        if self.fast_path:
            # activate() already validated the address; resolve the
            # sub-array without re-validating.
            sa = self.device.banks[physical.bank].subarrays[physical.subarray]
        else:
            sa = self.device.subarray_at(physical)
        # Activation restores the activated row's own charge.
        sa.reset_disturbance(physical.row)
        self.device.bank(physical.bank).activate(physical.subarray, physical.row)
        start_ns = self.now_ns
        if hammer:
            # Hammering is ACT at the effective period; we account it as ACTs.
            self.stats.record(Command.ACT, self.timing, 0)  # count below
            self._charge_hammer(actor, count)
        else:
            self._charge(Command.ACT, actor, count)
        if self._command_hooks:
            # Emitted before the activate hooks: a hook-driven defense
            # issues its own commands from inside the hook, and the
            # triggering ACT must precede them in any recorded stream.
            self._emit(CommandEvent(
                time_ns=start_ns, command=Command.ACT, actor=actor,
                bank=physical.bank, subarray=physical.subarray,
                row=physical.row, count=count, hammer=hammer,
            ))
        for hook in self._activate_hooks:
            hook(physical, self.now_ns, count)
        if self.fast_path:
            # One batched disturbance update per neighbour for the whole
            # chunk instead of per-call validation and address resolution.
            self._disturb_neighbors(
                physical, sa, self._neighbor_rows(physical.row), count
            )
        else:
            for neighbor in self.device.mapper.compute_neighbors(physical):
                nsa = self.device.subarray_at(neighbor)
                nsa.add_disturbance(neighbor.row, count)
                self._check_threshold(neighbor)

    def _charge_hammer(self, actor: str, count: int) -> None:
        self.stats.counts[Command.ACT] = self.stats.counts.get(Command.ACT, 0) + count
        actor_stats = self.stats_by_actor.setdefault(actor, CommandStats())
        actor_stats.counts[Command.ACT] = (
            actor_stats.counts.get(Command.ACT, 0) + count
        )
        elapsed = self.timing.t_act_eff_ns * count
        energy = self.timing.e_act_pj * count
        self.stats.total_time_ns += elapsed
        self.stats.total_energy_pj += energy
        actor_stats.total_time_ns += elapsed
        actor_stats.total_energy_pj += energy
        self.now_ns += elapsed

    def _check_threshold(self, victim: RowAddress, sa=None) -> None:
        if sa is None:
            sa = self.device.subarray_at(victim)
        if sa.disturbance[victim.row] < self.timing.t_rh:
            return
        if sa.flipped_this_window[victim.row]:
            return
        declared = self._declared_targets.get(victim, set())
        row_data = sa.rows[victim.row]
        flips = self.device.flip_model.flips_for(victim, declared, row_data)
        if not flips:
            # Nothing flippable crossed; leave the window open so bits
            # declared later in the same window can still flip.
            return
        sa.flipped_this_window[victim.row] = True
        self._mark_dirty(self.indirection.logical(victim))
        for bit, old, new in sa.flip_bits(victim.row, flips):
            self.device.fault_log.record(
                BitFlipEvent(self.now_ns, victim, bit, old, new)
            )

    def precharge(self, bank: int, actor: str = "system") -> None:
        self.device.bank(bank).precharge()
        start_ns = self.now_ns
        self._charge(Command.PRE, actor)
        if self._command_hooks:
            self._emit(CommandEvent(
                time_ns=start_ns, command=Command.PRE, actor=actor, bank=bank,
            ))

    def rowclone(
        self, src: RowAddress, dst: RowAddress, actor: str = "system"
    ) -> None:
        """RowClone FPM copy: both rows must share a sub-array.

        The AAP activates source then destination back-to-back; both end up
        fully charged, and both activations disturb their physical
        neighbours (a defense's own copies can hammer, and the model keeps
        that honest).
        """
        pair = (src, dst)
        if not (self.fast_path and pair in self._clone_checked):
            self.device.mapper.validate(src)
            self.device.mapper.validate(dst)
            if not src.same_subarray(dst):
                raise ValueError(
                    f"RowClone FPM requires same sub-array: {src} vs {dst}; "
                    "use rowclone_psm for inter-sub-array copies"
                )
            if src == dst:
                raise ValueError("source and destination rows are identical")
            self._clone_checked.add(pair)
        src_row, dst_row = src.row, dst.row
        if self.fast_path:
            sa = self.device.banks[src.bank].subarrays[src.subarray]
            sa.copy_row(src_row, dst_row)
            self._mark_dirty(self.indirection.logical(dst))
            start_ns = self.now_ns
            self._charge(Command.AAP, actor)
            if self._command_hooks:
                self._emit(CommandEvent(
                    time_ns=start_ns, command=Command.AAP, actor=actor,
                    bank=src.bank, subarray=src.subarray, row=src_row,
                    dst_subarray=dst.subarray, dst_row=dst_row,
                ))
            # Both activations disturb their same-sub-array neighbours;
            # src/dst themselves end the AAP fully charged.  A row adjacent
            # to both (|src-dst| == 2) is disturbed twice, as on the slow
            # path.
            last = self.device.geometry.rows_per_subarray - 1
            rows = []
            for base in (src_row, dst_row):
                row = base - 1
                if row >= 0 and row != src_row and row != dst_row:
                    rows.append(row)
                row = base + 1
                if row <= last and row != src_row and row != dst_row:
                    rows.append(row)
            self._disturb_neighbors(src, sa, rows, 1)
            if self.now_ns >= self._next_refresh_ns:
                self._maybe_refresh()
            return
        sa = self.device.subarray_at(src)
        sa.copy_row(src_row, dst_row)
        self._mark_dirty(self.indirection.logical(dst))
        start_ns = self.now_ns
        self._charge(Command.AAP, actor)
        if self._command_hooks:
            self._emit(CommandEvent(
                time_ns=start_ns, command=Command.AAP, actor=actor,
                bank=src.bank, subarray=src.subarray, row=src_row,
                dst_subarray=dst.subarray, dst_row=dst_row,
            ))
        for row in (src, dst):
            for neighbor in self.device.mapper.compute_neighbors(row):
                if neighbor == src or neighbor == dst:
                    continue
                nsa = self.device.subarray_at(neighbor)
                nsa.add_disturbance(neighbor.row, 1)
                self._check_threshold(neighbor)
        self._maybe_refresh()

    def rowclone_psm(
        self, src: RowAddress, dst: RowAddress, actor: str = "system"
    ) -> None:
        """Pipelined-serial-mode copy across sub-arrays (slower fallback)."""
        data = self.device.read_row(src)
        self.device.subarray_at(src).reset_disturbance(src.row)
        self.device.write_row(dst, data)
        self._mark_dirty(self.indirection.logical(dst))
        # PSM streams the row through the bank I/O: one ACT per row plus a
        # transfer charged as a read+write.
        start_ns = self.now_ns
        self._charge(Command.ACT, actor, 2)
        rd_ns = self.now_ns
        self._charge(Command.RD, actor)
        wr_ns = self.now_ns
        self._charge(Command.WR, actor)
        if self._command_hooks:
            # The ACT pair is emitted as one src-bank burst, mirroring how
            # it is charged; the dst activation rides in the count.
            self._emit(CommandEvent(
                time_ns=start_ns, command=Command.ACT, actor=actor,
                bank=src.bank, subarray=src.subarray, row=src.row, count=2,
            ))
            self._emit(CommandEvent(
                time_ns=rd_ns, command=Command.RD, actor=actor,
                bank=src.bank, subarray=src.subarray, row=src.row,
            ))
            self._emit(CommandEvent(
                time_ns=wr_ns, command=Command.WR, actor=actor,
                bank=dst.bank, subarray=dst.subarray, row=dst.row,
            ))
        self._maybe_refresh()

    def generate_random_row(self, actor: str = "defender") -> None:
        """Charge one RNG slot (defender step 1 needs one random number)."""
        start_ns = self.now_ns
        self._charge(Command.RNG, actor)
        if self._command_hooks:
            self._emit(CommandEvent(
                time_ns=start_ns, command=Command.RNG, actor=actor,
            ))

    def charge_command(
        self,
        command: Command,
        actor: str = "system",
        bank: int | None = None,
        subarray: int | None = None,
        row: int | None = None,
        count: int = 1,
    ) -> None:
        """Charge a raw command with no device side effects.

        The trace-replay path for RD/WR/RNG/REF records (and the synthetic
        streams the timing tests build): the command is charged and emitted
        exactly as its originating high-level call would, but no row data
        moves and no disturbance accrues.  Device-mutating commands must go
        through :meth:`activate`/:meth:`rowclone`/:meth:`precharge`, which
        reproduce their side effects.  Like the high-level RD/WR paths,
        this does not poll the refresh boundary; the next activation or
        ``advance_time`` catches up.
        """
        if command in (Command.ACT, Command.AAP, Command.PRE):
            raise ValueError(
                f"{command.name} mutates device state; use "
                "activate/rowclone/precharge"
            )
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        start_ns = self.now_ns
        self._charge(command, actor, count)
        if self._command_hooks:
            self._emit(CommandEvent(
                time_ns=start_ns, command=command, actor=actor, bank=bank,
                subarray=subarray, row=row, count=count,
            ))

    # ------------------------------------------------------------------ #
    # Logical data access (through the indirection table)
    # ------------------------------------------------------------------ #

    def read_logical(self, logical: RowAddress, actor: str = "system") -> np.ndarray:
        physical = self.indirection.physical(logical)
        self.activate(physical, actor=actor)
        data = self.device.read_row(physical)
        start_ns = self.now_ns
        self._charge(Command.RD, actor)
        if self._command_hooks:
            self._emit(CommandEvent(
                time_ns=start_ns, command=Command.RD, actor=actor,
                bank=physical.bank, subarray=physical.subarray,
                row=physical.row,
            ))
        return data

    def write_logical(
        self, logical: RowAddress, data: np.ndarray, actor: str = "system"
    ) -> None:
        physical = self.indirection.physical(logical)
        self.activate(physical, actor=actor)
        self.device.write_row(physical, data)
        self._mark_dirty(logical)
        start_ns = self.now_ns
        self._charge(Command.WR, actor)
        if self._command_hooks:
            self._emit(CommandEvent(
                time_ns=start_ns, command=Command.WR, actor=actor,
                bank=physical.bank, subarray=physical.subarray,
                row=physical.row,
            ))

    def peek_logical(self, logical: RowAddress) -> np.ndarray:
        """Read row contents without advancing time (test/instrumentation)."""
        return self.device.read_row(self.indirection.physical(logical))

    def poke_logical(self, logical: RowAddress, data: np.ndarray) -> None:
        """Write row contents without advancing time (test/instrumentation)."""
        self.device.write_row(self.indirection.physical(logical), data)
        self._mark_dirty(logical)

    def actor_stats(self, actor: str) -> CommandStats:
        return self.stats_by_actor.setdefault(actor, CommandStats())
