"""DRAM command timing-rule checking: is the charged stream legal DDR?

The controller charges every command's latency but — before this module —
never verified that the resulting schedule respects the inter-command
windows a real device enforces (the gap the paper's Section 5.1 circuit
characterisation quietly assumes away).  :class:`TimingChecker` subscribes
to a controller's command hooks exactly like
:class:`repro.dram.trace.CommandTrace` does and validates every
ACT/PRE/RD/WR/AAP/REF against the rule constants in
:class:`repro.dram.timing.TimingParams`, in the style of the Antmicro
LPDDR4 ``TimingChecker`` (a per-(prev, curr) minimum-delay table plus
windowed rules):

===========  ===========================================================
rule         constraint
===========  ===========================================================
``tRC``      ACT-to-ACT, same bank (row cycle; an AAP occupies its bank
             for ``t_aap_ns``, enforced through this same rule)
``tRP``      PRE-to-ACT, same bank (precharge completion)
``tRAS``     ACT-to-PRE, same bank (minimum row-open time)
``tRCD``     ACT-to-RD/WR, same bank (row-to-column delay)
``tWR``      WR-to-PRE, same bank (write recovery)
``tFAW``     at most four ACTs in any rolling ``t_faw_ns`` window,
             device-wide (an AAP contributes two)
``tREFI``    every row-touching command must land within one refresh
             interval of the last refresh (the model refreshes in bulk
             every ``t_ref``, so the deadline is ``t_ref_ns`` plus one
             scheduling-slack allowance — see ``refresh_deadline_ns``)
``tRFC``     no command until ``t_rfc_ns`` after an *explicitly issued*
             REF (the controller's own bulk boundary refresh charges no
             bus time and is exempt; it only re-arms the tREFI deadline)
===========  ===========================================================

Two caveats keep the checker honest about what the model is:

* The model's ACT is an implicit ACT-PRE pair (``activate()``'s burst
  semantics), so the checker validates *spacing windows*, not open-row
  bank state machines.
* Rule constants are calibrated at or below the latencies the controller
  charges (see ``repro.dram.timing``), so a correctly charged stream is
  clean by construction; violations mean a code path issued commands
  faster than it paid for them — exactly the regression this layer exists
  to catch.

``strict`` mode raises :class:`TimingViolation` at the offending command
(mid-simulation, so the traceback points at the issuing call site);
``audit`` mode collects :class:`Violation` records for later assertion.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.dram.commands import Command, CommandEvent
from repro.dram.timing import TimingParams

__all__ = ["RULE_NAMES", "TimingChecker", "TimingViolation", "Violation"]

RULE_NAMES = (
    "tRC", "tRP", "tRAS", "tRCD", "tWR", "tFAW", "tREFI", "tRFC",
)


@dataclass(frozen=True)
class Violation:
    """One timing-rule breach observed in a command stream."""

    rule: str
    command: str
    bank: int | None
    time_ns: float
    actual_ns: float    # the gap (or interval) that was measured
    bound_ns: float     # the minimum gap (or maximum interval) required

    def describe(self) -> str:
        where = "device" if self.bank is None else f"bank {self.bank}"
        if self.rule in ("tREFI",):
            relation = "exceeds deadline"
        else:
            relation = "< required"
        return (
            f"{self.rule} violated by {self.command} on {where} at "
            f"t={self.time_ns:.2f} ns: {self.actual_ns:.2f} ns "
            f"{relation} {self.bound_ns:.2f} ns"
        )


class TimingViolation(Exception):
    """Strict-mode timing failure; carries the offending :class:`Violation`."""

    def __init__(self, violation: Violation):
        super().__init__(violation.describe())
        self.violation = violation

    @property
    def rule(self) -> str:
        return self.violation.rule


class _BankState:
    """Per-bank rule state: effective last-ACT, last-PRE, last-WR times.

    ``last_act`` is the effective start of the bank's current row cycle:
    the final activation start of a burst, or ``t + (t_aap - t_rc)`` for
    an AAP so that the tRC window enforces the AAP's full ``t_aap``
    occupancy on the next activation.
    """

    __slots__ = ("last_act", "last_pre", "last_wr")

    def __init__(self) -> None:
        self.last_act: float | None = None
        self.last_pre: float | None = None
        self.last_wr: float | None = None


class TimingChecker:
    """Validate a DRAM command stream against the timing rules.

    Args:
        controller: subscribe to this controller's command hooks (its
            :class:`TimingParams` supply the rule constants).  Pass
            ``None`` to drive the checker directly with
            :meth:`observe` on synthetic :class:`CommandEvent` streams,
            in which case ``timing`` is required.
        timing: rule constants for controller-less use (overrides the
            controller's params if both are given).
        mode: ``"strict"`` raises :class:`TimingViolation` at the first
            breach; ``"audit"`` collects into :attr:`violations`.
        epsilon_ns: float-comparison slack (well below any rule constant,
            well above accumulated double rounding).
    """

    MODES = ("strict", "audit")

    def __init__(
        self,
        controller=None,
        *,
        timing: TimingParams | None = None,
        mode: str = "strict",
        epsilon_ns: float = 1e-3,
    ):
        if mode not in self.MODES:
            raise ValueError(
                f"mode must be one of {self.MODES}, got {mode!r}"
            )
        if controller is None and timing is None:
            raise ValueError("a controller or explicit TimingParams is required")
        self.timing = timing if timing is not None else controller.timing
        self.mode = mode
        self.epsilon_ns = epsilon_ns
        self.violations: list[Violation] = []
        self.commands_checked = 0
        self._banks: dict[int, _BankState] = {}
        self._recent_acts: deque[float] = deque(maxlen=4)
        self._last_refresh = 0.0
        self._last_explicit_ref: float | None = None
        self._controller = controller
        self._closed = False
        if controller is not None:
            # Attaching mid-run: adopt the controller's refresh phase so
            # elapsed epochs are not misread as missed refreshes.
            self._last_refresh = (
                controller.refresh_epoch * self.timing.t_ref_ns
            )
            controller.register_command_hook(self.observe)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Unsubscribe from the controller (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._controller is not None:
            self._controller.unregister_command_hook(self.observe)

    def __enter__(self) -> "TimingChecker":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    @property
    def violation_counts(self) -> dict[str, int]:
        """Audit-mode violation tally per rule name."""
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return counts

    def assert_clean(self) -> None:
        """Raise :class:`TimingViolation` on the first audited breach."""
        if self.violations:
            raise TimingViolation(self.violations[0])

    def summary(self) -> dict:
        return {
            "mode": self.mode,
            "commands_checked": self.commands_checked,
            "violations": len(self.violations),
            "by_rule": self.violation_counts,
        }

    @property
    def refresh_deadline_ns(self) -> float:
        """Maximum allowed time from the last refresh to a row command.

        One bulk-refresh interval plus a slack of four worst-case command
        latencies: the controller polls the boundary between commands, so
        a command legitimately issues up to a few latencies past it (e.g.
        the forced single-ACT chunk that straddles a refresh).  Genuinely
        missed refreshes overshoot by milliseconds, not nanoseconds.
        """
        t = self.timing
        return t.t_ref_ns + 4.0 * max(t.t_rc_ns, t.t_aap_ns, t.t_act_eff_ns)

    # ------------------------------------------------------------------ #
    # Checking
    # ------------------------------------------------------------------ #

    def _flag(
        self,
        rule: str,
        event: CommandEvent,
        time_ns: float,
        actual_ns: float,
        bound_ns: float,
    ) -> None:
        name = event.command.name if event.command is not None else "IDLE"
        violation = Violation(
            rule=rule, command=name, bank=event.bank, time_ns=time_ns,
            actual_ns=actual_ns, bound_ns=bound_ns,
        )
        if self.mode == "strict":
            raise TimingViolation(violation)
        self.violations.append(violation)

    def _check_min(
        self,
        rule: str,
        event: CommandEvent,
        time_ns: float,
        prev_ns: float | None,
        window_ns: float,
    ) -> None:
        if prev_ns is None:
            return
        gap = time_ns - prev_ns
        if gap < window_ns - self.epsilon_ns:
            self._flag(rule, event, time_ns, gap, window_ns)

    def observe(self, event: CommandEvent) -> None:
        """Check one command event (the controller hook entry point)."""
        command = event.command
        if command is None or command is Command.RNG:
            # Idle gaps pass no commands; RNG occupies the random-number
            # generator, not a bank.
            return
        self.commands_checked += 1
        t = event.time_ns
        timing = self.timing
        if self._last_explicit_ref is not None and command is not Command.REF:
            self._check_min(
                "tRFC", event, t, self._last_explicit_ref, timing.t_rfc_ns
            )
        if command is Command.REF:
            if t > self._last_refresh:
                self._last_refresh = t
            if not event.auto:
                self._last_explicit_ref = t
            return
        bank = None
        if event.bank is not None:
            bank = self._banks.get(event.bank)
            if bank is None:
                bank = self._banks[event.bank] = _BankState()
        if command is Command.ACT:
            period = (
                timing.t_act_eff_ns if event.hammer else timing.t_rc_ns
            )
            self._observe_acts(
                event, t, bank,
                starts=None, count=event.count, period=period,
                effective_last=t + (event.count - 1) * period,
            )
        elif command is Command.AAP:
            # An AAP is two activations closer together than tRC allows a
            # pair of plain ACTs (RowClone's entire point); its bank
            # occupancy is t_aap, enforced by publishing an effective
            # last-ACT of t + (t_aap - t_rc) into the tRC window.
            offset = timing.t_aap_ns - timing.t_rc_ns
            self._observe_acts(
                event, t, bank,
                starts=(t, t + max(offset, 0.0)), count=2, period=None,
                effective_last=t + offset,
            )
        elif command is Command.PRE:
            if bank is not None:
                self._check_min(
                    "tRAS", event, t, bank.last_act, timing.t_ras_ns
                )
                self._check_min("tWR", event, t, bank.last_wr, timing.t_wr_ns)
                bank.last_pre = t
        elif command in (Command.RD, Command.WR):
            latency = timing.t_rc_ns
            end = t + (event.count - 1) * latency
            if bank is not None:
                self._check_min(
                    "tRCD", event, t, bank.last_act, timing.t_rcd_ns
                )
                if command is Command.WR:
                    bank.last_wr = end
            self._check_refresh_deadline(event, end)

    def _observe_acts(
        self,
        event: CommandEvent,
        t: float,
        bank: _BankState | None,
        starts: tuple[float, ...] | None,
        count: int,
        period: float | None,
        effective_last: float,
    ) -> None:
        """Shared ACT/AAP path: tRC, tRP, tFAW, and the refresh deadline.

        ``starts`` enumerates activation start times explicitly (AAP);
        otherwise they are ``t + i * period`` for ``i < count`` (burst).
        """
        timing = self.timing
        eps = self.epsilon_ns
        if bank is not None:
            self._check_min("tRC", event, t, bank.last_act, timing.t_rc_ns)
            self._check_min("tRP", event, t, bank.last_pre, timing.t_rp_ns)
        if period is not None and count > 1 and period < timing.t_rc_ns - eps:
            # Burst-internal spacing: consecutive ACTs of one burst are
            # one period apart on the same bank.
            self._flag("tRC", event, t, period, timing.t_rc_ns)
        # --- tFAW: rolling window of the last four activation starts ----
        faw = timing.t_faw_ns
        recent = self._recent_acts
        if starts is None:
            head = min(count, 4)
            starts = tuple(t + i * period for i in range(head))
        flagged_faw = False
        for start in starts:
            if (
                not flagged_faw
                and len(recent) == 4
                and start - recent[0] < faw - eps
            ):
                # One flag per event: a burst that breaks tFAW breaks it
                # at a fixed internal cadence, so further repeats of the
                # same breach add noise, not information.
                self._flag("tFAW", event, start, start - recent[0], faw)
                flagged_faw = True
            recent.append(start)
        if period is not None and count > 4:
            if not flagged_faw and 4 * period < faw - eps:
                self._flag("tFAW", event, t, 4 * period, faw)
            # The window exiting the burst holds its last four ACTs.
            recent.clear()
            recent.extend(t + (count - k) * period for k in (4, 3, 2, 1))
        if bank is not None:
            bank.last_act = effective_last
        self._check_refresh_deadline(event, effective_last)

    def _check_refresh_deadline(self, event: CommandEvent, end_ns: float) -> None:
        deadline = self._last_refresh + self.refresh_deadline_ns
        if end_ns > deadline + self.epsilon_ns:
            self._flag(
                "tREFI", event, end_ns,
                end_ns - self._last_refresh, self.refresh_deadline_ns,
            )
