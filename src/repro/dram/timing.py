"""DRAM timing and RowHammer-threshold parameters.

The paper consumes a handful of scalar timing constants from its circuit-level
(Cadence Spectre) characterisation; this module is the reproduction's
equivalent of that characterisation output:

* ``T_AAP = 90 ns`` — one RowClone ACT-ACT-PRE (in-DRAM row copy), from
  SHADOW [22] as quoted in Section 5.1 of the paper.
* ``T_swap = 3 x T_AAP`` — steady-state cost of one pipelined four-step swap
  (step 1 of swap *n+1* overlaps step 4 of swap *n*; see Fig. 6).
* ``T_ACT`` — effective per-activation period seen by the hammering process.
  The paper never states it explicitly; ``T_ACT = 118 ns`` reproduces the
  published "maximum defended BFA" anchors (7K/14K/28K/55K at
  ``T_RH`` = 1k/2k/4k/8k) exactly and is documented in EXPERIMENTS.md as a
  calibration constant.
* ``T_ref = 64 ms`` — standard DDR4 refresh interval.

The per-command *rule* constants (``t_rp_ns``, ``t_rcd_ns``, ``t_ras_ns``,
``t_rc_ns``, ``t_wr_ns``, ``t_faw_ns``, ``t_refi_ns``, ``t_rfc_ns``) feed
:class:`repro.dram.timing_rules.TimingChecker`, which validates that the
command stream the simulator charges is legal DDR.  Like ``T_ACT``, they
are calibration constants, not measurements: the defaults are
JEDEC-DDR4-class values chosen so that every window is at most the
latency the controller already charges for the governing command (e.g.
``t_ras_ns = 32 <= t_rc_ns = 46.25``; ``t_faw_ns = 30`` against a minimum
real four-ACT span of ``4 x t_rc_ns``).  That invariant is what makes a
correctly charged stream pass strict checking with zero violations — the
checker then guards the *charging logic*, catching any path that issues
commands faster than it pays for them.  ``t_refi_ns`` is the distributed
average refresh command interval (``t_ref / 8192``); the simulator
refreshes in bulk every ``t_ref``, so the checker's refresh-deadline rule
("tREFI") uses ``t_ref_ns``, while ``t_refi_ns``/``t_rfc_ns`` give the
standard refresh bus-overhead fraction (~4.5% for DDR4).

``TRH_BY_GENERATION`` is the Fig. 1(a) data: the minimum hammer count needed
to induce a flip for each DRAM generation, from Woo et al. [23].
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "TimingParams",
    "DDR4_DEFAULT",
    "LPDDR4_DEFAULT",
    "REFRESH_COMMANDS_PER_TREF",
    "TRH_BY_GENERATION",
    "TRH_LPDDR4",
]

# Refresh commands a DDR4 device distributes over one t_ref (8K rows per
# refresh cycle); scales t_refi_ns when sweeping the refresh interval.
REFRESH_COMMANDS_PER_TREF: int = 8192

# Fig. 1(a): RowHammer threshold by DRAM generation (hammer counts).
TRH_BY_GENERATION: dict[str, int] = {
    "DDR3 (old)": 139_000,
    "DDR3 (new)": 22_400,
    "DDR4 (old)": 17_500,
    "DDR4 (new)": 10_000,
    "LPDDR4 (old)": 16_800,
    "LPDDR4 (new)": 4_800,
}

# Section 4 "Timing Considerations": T_RH is set to 4,800 in LPDDR4 [23].
TRH_LPDDR4: int = TRH_BY_GENERATION["LPDDR4 (new)"]


@dataclass(frozen=True)
class TimingParams:
    """Scalar timing model for one DRAM device.

    All times are in nanoseconds unless the name says otherwise.
    """

    t_rc_ns: float = 46.25        # ACT-to-ACT same bank (row cycle)
    t_ras_ns: float = 32.0        # ACT-to-PRE minimum
    t_rp_ns: float = 13.75        # PRE duration
    t_rcd_ns: float = 13.75       # ACT-to-RD/WR same bank
    t_wr_ns: float = 15.0         # WR-to-PRE write recovery
    t_faw_ns: float = 30.0        # four-activation rolling window (device-wide)
    t_refi_ns: float = 7812.5     # distributed refresh command interval (t_ref/8192)
    t_rfc_ns: float = 350.0       # explicit-REF-to-next-command recovery
    t_aap_ns: float = 90.0        # RowClone ACT-ACT-PRE in-subarray copy
    t_act_eff_ns: float = 118.0   # effective hammer-activation period (calibrated)
    t_ref_ms: float = 64.0        # refresh interval
    t_rh: int = TRH_LPDDR4        # RowHammer threshold (activations)
    e_act_pj: float = 909.0       # energy per activation (CACTI-class estimate)
    e_aap_pj: float = 1460.0      # energy per RowClone AAP
    e_sram_access_pj: float = 240.0   # per-access SRAM tracker energy (RRS/SRS)
    e_offchip_pj: float = 6000.0      # off-chip round trip (counter-table designs)

    def __post_init__(self) -> None:
        if self.t_rh <= 0:
            raise ValueError(f"t_rh must be positive, got {self.t_rh}")
        for name in ("t_rc_ns", "t_ras_ns", "t_rp_ns", "t_rcd_ns",
                     "t_wr_ns", "t_faw_ns", "t_refi_ns", "t_rfc_ns",
                     "t_aap_ns", "t_act_eff_ns", "t_ref_ms"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.t_rfc_ns >= self.t_refi_ns:
            raise ValueError(
                "t_rfc_ns must be below t_refi_ns: a refresh command that "
                "outlasts the refresh interval leaves no bus time for data"
            )

    @property
    def t_swap_ns(self) -> float:
        """Steady-state pipelined swap cost: ``3 x T_AAP`` (Section 5.1)."""
        return 3.0 * self.t_aap_ns

    @property
    def t_swap_unpipelined_ns(self) -> float:
        """Cost of one four-step swap without the Fig. 6 overlap."""
        return 4.0 * self.t_aap_ns

    @property
    def t_ref_ns(self) -> float:
        """Refresh interval in nanoseconds."""
        return self.t_ref_ms * 1e6

    @property
    def refresh_overhead_fraction(self) -> float:
        """Fraction of bus time consumed by refresh: ``tRFC / tREFI``.

        The standard DDR figure (~4.5% at the defaults).  Shrinking the
        refresh interval to harden against RowHammer raises this cost —
        the trade-off axis the ``sweep-refresh-trh`` scenario measures.
        """
        return self.t_rfc_ns / self.t_refi_ns

    @property
    def hammer_window_ns(self) -> float:
        """Time an attacker needs to reach ``T_RH`` activations.

        This is also the deadline by which a victim row must be refreshed:
        ``T_ACT x T_RH`` (Section 5.1).
        """
        return self.t_act_eff_ns * self.t_rh

    def with_trh(self, t_rh: int) -> "TimingParams":
        """Return a copy with a different RowHammer threshold."""
        return replace(self, t_rh=int(t_rh))

    def max_swaps_per_window(self) -> int:
        """Maximum swaps fitting inside one hammer window.

        The paper's constraint: all swap operations must complete within
        ``(T_ACT x T_RH) / T_swap`` (Section 5.1).
        """
        return int(self.hammer_window_ns / self.t_swap_ns)


DDR4_DEFAULT = TimingParams()
LPDDR4_DEFAULT = TimingParams(t_rc_ns=60.0, t_rh=TRH_LPDDR4)
