"""Command-trace recording and replay: the reproduction's gem5-style stats.

The paper's evaluation framework (Fig. 7) exports memory statistics (reads,
writes, micro-ops) from gem5 into the in-house optimizer.  This module
provides the equivalent observability for the Python DRAM model — and makes
it *replayable*, so a recorded command stream doubles as a golden test
fixture that any reimplementation of the controller must reproduce.

:class:`CommandTrace` subscribes to a controller and records two views:

* the legacy bounded activation window (``entries`` plus per-bank/per-row
  aggregates that benchmarks and trackers assert on), fed by the activate
  hook exactly as before, and
* the full command stream (``commands``) — every ACT/PRE/RD/WR/AAP/REF/RNG
  plus idle ``advance_time`` gaps, with bank/row coordinates and issue
  timestamps — fed by the controller's command hooks.

The command stream serializes to JSONL (:meth:`CommandTrace.save`): a
header line carrying the geometry and :class:`TimingParams`, one line per
:class:`CommandRecord`, and a stats footer (:func:`stats_payload`).
:func:`load_trace` returns a :class:`LoadedTrace` whose :meth:`replay`
re-issues the stream through a fresh controller and reproduces
``CommandStats`` byte-for-byte: every record maps back to the high-level
call that charged it (``activate``/``rowclone``/``precharge``/
``charge_command``), bursts re-split identically at refresh boundaries
because the replay clock tracks the recorded clock exactly, and the
controller's own boundary refreshes are skipped on replay (it regenerates
them at the same instants).  Device *fault* state is not part of the
replay contract — flips charge no commands — the command stream, clock,
energy, and per-actor stats are.

A trace holds live controller hooks; :meth:`CommandTrace.close` (or using
the trace as a context manager) unregisters them, after which the trace
stops accumulating and the controller sheds the observation overhead.
"""

from __future__ import annotations

import json
import pathlib
from collections import deque
from dataclasses import asdict, dataclass

from repro.dram.address import RowAddress
from repro.dram.commands import Command, CommandEvent
from repro.dram.controller import MemoryController
from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.dram.timing import TimingParams
from repro.utils.io import atomic_write_text

__all__ = [
    "TRACE_FORMAT_VERSION",
    "TraceEntry",
    "CommandRecord",
    "CommandTrace",
    "LoadedTrace",
    "load_trace",
    "stats_payload",
]

TRACE_FORMAT_VERSION = 1

# Fixed serialization order: byte-identity of saved traces depends on it.
_RECORD_FIELDS = (
    "time_ns", "command", "actor", "bank", "subarray", "row", "count",
    "hammer", "dst_subarray", "dst_row", "auto", "duration_ns",
)


@dataclass(frozen=True)
class TraceEntry:
    """One recorded activation burst."""

    time_ns: float
    physical: RowAddress
    count: int


@dataclass(frozen=True)
class CommandRecord:
    """One serialized controller command (one JSONL row of a trace file).

    ``command`` is the :class:`Command` member name, or ``"IDLE"`` for an
    ``advance_time`` gap of ``duration_ns``.  ``time_ns`` is the issue
    time (pre-charge clock).  AAP records carry their destination row in
    ``dst_subarray``/``dst_row``.
    """

    time_ns: float
    command: str
    actor: str = "system"
    bank: int | None = None
    subarray: int | None = None
    row: int | None = None
    count: int = 1
    hammer: bool = False
    dst_subarray: int | None = None
    dst_row: int | None = None
    auto: bool = False
    duration_ns: float = 0.0

    @classmethod
    def from_event(cls, event: CommandEvent) -> "CommandRecord":
        return cls(
            time_ns=event.time_ns,
            command="IDLE" if event.command is None else event.command.name,
            actor=event.actor,
            bank=event.bank,
            subarray=event.subarray,
            row=event.row,
            count=event.count,
            hammer=event.hammer,
            dst_subarray=event.dst_subarray,
            dst_row=event.dst_row,
            auto=event.auto,
            duration_ns=event.duration_ns,
        )

    def to_json(self) -> dict:
        return {name: getattr(self, name) for name in _RECORD_FIELDS}

    @classmethod
    def from_json(cls, payload: dict) -> "CommandRecord":
        return cls(**{name: payload[name] for name in _RECORD_FIELDS})


def stats_payload(controller: MemoryController) -> dict:
    """Canonical JSON form of a controller's command statistics.

    Key order is fixed (enum order for commands, sorted actors) so equal
    stats serialize to equal bytes — the contract the golden-trace tests
    and the ``repro trace replay`` diff rely on.
    """

    def one(stats) -> dict:
        return {
            "counts": {
                cmd.name: stats.counts[cmd]
                for cmd in Command if cmd in stats.counts
            },
            "total_time_ns": stats.total_time_ns,
            "total_energy_pj": stats.total_energy_pj,
        }

    return {
        **one(controller.stats),
        "actors": {
            actor: one(stats)
            for actor, stats in sorted(controller.stats_by_actor.items())
        },
        "now_ns": controller.now_ns,
        "refresh_epoch": controller.refresh_epoch,
    }


class CommandTrace:
    """Bounded activation trace, full command stream, running aggregates.

    Args:
        controller: the controller to observe.
        window: maximum retained activation entries (older entries are
            dropped from the detailed trace; aggregates keep counting).
            The full command stream in :attr:`commands` is *unbounded* —
            one record per issued command/burst — so long-running
            simulations that only need the activation aggregates should
            ``close()`` the trace when done recording.
    """

    def __init__(self, controller: MemoryController, window: int = 10_000):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.controller = controller
        self.window = window
        self.entries: deque[TraceEntry] = deque(maxlen=window)
        self.commands: list[CommandRecord] = []
        self.activations_by_bank: dict[int, int] = {}
        self.activations_by_row: dict[RowAddress, int] = {}
        self.total_activations = 0
        self._closed = False
        controller.register_activate_hook(self._on_activate)
        controller.register_command_hook(self._on_command)

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def _on_activate(self, physical: RowAddress, time_ns: float, count: int) -> None:
        self.entries.append(TraceEntry(time_ns, physical, count))
        self.total_activations += count
        self.activations_by_bank[physical.bank] = (
            self.activations_by_bank.get(physical.bank, 0) + count
        )
        self.activations_by_row[physical] = (
            self.activations_by_row.get(physical, 0) + count
        )

    def _on_command(self, event: CommandEvent) -> None:
        self.commands.append(CommandRecord.from_event(event))

    def close(self) -> None:
        """Detach from the controller; the trace stops accumulating.

        Idempotent.  Without this, every trace ever attached keeps its
        hooks registered for the controller's lifetime and keeps paying
        (and charging memory for) observation it no longer wants.
        """
        if self._closed:
            return
        self._closed = True
        self.controller.unregister_activate_hook(self._on_activate)
        self.controller.unregister_command_hook(self._on_command)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "CommandTrace":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def hottest_rows(self, n: int = 5) -> list[tuple[RowAddress, int]]:
        """Rows with the most activations — the aggressor fingerprint a
        tracker-based defense would flag."""
        ranked = sorted(
            self.activations_by_row.items(), key=lambda item: -item[1]
        )
        return ranked[:n]

    def activations_in_span(self, start_ns: float, end_ns: float) -> int:
        """Activations recorded in a time span.

        Only the retained ``window`` of entries is visible: bursts
        already evicted from the bounded deque are *not* counted, even if
        the span covers their timestamps — callers sizing windows for
        long spans must size the trace window to match.
        """
        if end_ns < start_ns:
            raise ValueError("end_ns must be >= start_ns")
        return sum(
            e.count for e in self.entries if start_ns <= e.time_ns <= end_ns
        )

    def summary(self) -> dict[str, float]:
        return {
            "total_activations": self.total_activations,
            "distinct_rows": len(self.activations_by_row),
            "banks_touched": len(self.activations_by_bank),
            "trace_entries": len(self.entries),
            "commands_recorded": len(self.commands),
        }

    def aggregates(self) -> dict:
        """Serializable aggregate view (the golden-trace comparison set)."""
        return {
            "summary": self.summary(),
            "activations_by_bank": {
                str(bank): count
                for bank, count in sorted(self.activations_by_bank.items())
            },
            "hottest_rows": [
                [row.bank, row.subarray, row.row, count]
                for row, count in self.hottest_rows(10)
            ],
        }

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the command stream as JSONL (header, records, stats)."""
        path = pathlib.Path(path)
        geometry = self.controller.device.geometry
        header = {
            "kind": "header",
            "format": TRACE_FORMAT_VERSION,
            "geometry": {
                "banks": geometry.banks,
                "subarrays_per_bank": geometry.subarrays_per_bank,
                "rows_per_subarray": geometry.rows_per_subarray,
                "row_bytes": geometry.row_bytes,
            },
            "timing": asdict(self.controller.timing),
        }
        lines = [_dumps(header)]
        lines.extend(
            _dumps({"kind": "command", **record.to_json()})
            for record in self.commands
        )
        lines.append(_dumps({
            "kind": "stats",
            "stats": stats_payload(self.controller),
            "aggregates": self.aggregates(),
        }))
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, "\n".join(lines) + "\n")
        return path


def _dumps(payload: dict) -> str:
    return json.dumps(payload, separators=(",", ":"))


@dataclass
class LoadedTrace:
    """A parsed trace file: header, command records, recorded stats."""

    header: dict
    records: list[CommandRecord]
    stats: dict
    aggregates: dict

    @property
    def geometry(self) -> DramGeometry:
        return DramGeometry(**self.header["geometry"])

    @property
    def timing(self) -> TimingParams:
        return TimingParams(**self.header["timing"])

    def build_controller(self, fast_path: bool | None = None) -> MemoryController:
        """Fresh controller matching the recorded geometry and timing."""
        return MemoryController(
            DramDevice(self.geometry), self.timing, fast_path=fast_path
        )

    def replay(
        self,
        controller: MemoryController | None = None,
        window: int = 10_000,
    ) -> tuple[MemoryController, CommandTrace]:
        """Re-issue the recorded stream; returns (controller, new trace).

        With no ``controller`` a fresh one is built from the header.  The
        replayed controller finishes with byte-identical
        :func:`stats_payload` to the recording (asserted by the golden
        tests; diffed by ``repro trace replay``).
        """
        if controller is None:
            controller = self.build_controller()
        trace = CommandTrace(controller, window=window)
        try:
            for record in self.records:
                _replay_record(controller, record)
        finally:
            trace.close()
        return controller, trace


def _replay_record(controller: MemoryController, record: CommandRecord) -> None:
    if record.command == "IDLE":
        controller.advance_time(record.duration_ns)
        return
    command = Command[record.command]
    if command is Command.REF and record.auto:
        # The controller regenerates its own boundary refreshes at the
        # same instants; re-issuing them would double-refresh.
        return
    if command is Command.ACT:
        controller.activate(
            RowAddress(record.bank, record.subarray, record.row),
            actor=record.actor, count=record.count, hammer=record.hammer,
        )
        return
    if command is Command.AAP:
        controller.rowclone(
            RowAddress(record.bank, record.subarray, record.row),
            RowAddress(record.bank, record.dst_subarray, record.dst_row),
            actor=record.actor,
        )
        return
    if command is Command.PRE:
        controller.precharge(record.bank, actor=record.actor)
        return
    controller.charge_command(
        command, actor=record.actor, bank=record.bank,
        subarray=record.subarray, row=record.row, count=record.count,
    )


def load_trace(path: str | pathlib.Path) -> LoadedTrace:
    """Parse a JSONL trace file written by :meth:`CommandTrace.save`."""
    path = pathlib.Path(path)
    header: dict | None = None
    stats: dict | None = None
    aggregates: dict = {}
    records: list[CommandRecord] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        payload = json.loads(line)
        kind = payload.get("kind")
        if kind == "header":
            if payload.get("format") != TRACE_FORMAT_VERSION:
                raise ValueError(
                    f"{path}:{lineno}: unsupported trace format "
                    f"{payload.get('format')!r} (expected "
                    f"{TRACE_FORMAT_VERSION})"
                )
            header = payload
        elif kind == "command":
            records.append(CommandRecord.from_json(payload))
        elif kind == "stats":
            stats = payload["stats"]
            aggregates = payload.get("aggregates", {})
        else:
            raise ValueError(f"{path}:{lineno}: unknown record kind {kind!r}")
    if header is None:
        raise ValueError(f"{path}: missing trace header line")
    if stats is None:
        raise ValueError(f"{path}: missing trace stats footer")
    return LoadedTrace(
        header=header, records=records, stats=stats, aggregates=aggregates
    )
