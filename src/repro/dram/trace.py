"""Command-trace recording: the reproduction's gem5-style memory statistics.

The paper's evaluation framework (Fig. 7) exports memory statistics (reads,
writes, micro-ops) from gem5 into the in-house optimizer.  This module
provides the equivalent observability for the Python DRAM model: a
:class:`CommandTrace` subscribes to a controller and records a bounded
window of issued activations with timestamps and actors, plus per-actor and
per-bank aggregates that benchmarks and tests can assert on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.dram.address import RowAddress
from repro.dram.controller import MemoryController

__all__ = ["TraceEntry", "CommandTrace"]


@dataclass(frozen=True)
class TraceEntry:
    """One recorded activation burst."""

    time_ns: float
    physical: RowAddress
    count: int


class CommandTrace:
    """Bounded activation trace plus running aggregates.

    Args:
        controller: the controller to observe.
        window: maximum retained entries (older entries are dropped from
            the detailed trace; aggregates keep counting).
    """

    def __init__(self, controller: MemoryController, window: int = 10_000):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.controller = controller
        self.window = window
        self.entries: deque[TraceEntry] = deque(maxlen=window)
        self.activations_by_bank: dict[int, int] = {}
        self.activations_by_row: dict[RowAddress, int] = {}
        self.total_activations = 0
        controller.register_activate_hook(self._on_activate)

    def _on_activate(self, physical: RowAddress, time_ns: float, count: int) -> None:
        self.entries.append(TraceEntry(time_ns, physical, count))
        self.total_activations += count
        self.activations_by_bank[physical.bank] = (
            self.activations_by_bank.get(physical.bank, 0) + count
        )
        self.activations_by_row[physical] = (
            self.activations_by_row.get(physical, 0) + count
        )

    def hottest_rows(self, n: int = 5) -> list[tuple[RowAddress, int]]:
        """Rows with the most activations — the aggressor fingerprint a
        tracker-based defense would flag."""
        ranked = sorted(
            self.activations_by_row.items(), key=lambda item: -item[1]
        )
        return ranked[:n]

    def activations_in_span(self, start_ns: float, end_ns: float) -> int:
        """Activations recorded in a time span (within the trace window)."""
        if end_ns < start_ns:
            raise ValueError("end_ns must be >= start_ns")
        return sum(
            e.count for e in self.entries if start_ns <= e.time_ns <= end_ns
        )

    def summary(self) -> dict[str, float]:
        return {
            "total_activations": self.total_activations,
            "distinct_rows": len(self.activations_by_row),
            "banks_touched": len(self.activations_by_bank),
            "trace_entries": len(self.entries),
        }
