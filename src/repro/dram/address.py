"""Row/bit addressing and physical adjacency.

Two address spaces exist in the simulator:

* **logical rows** — what software (the DNN runtime, the attacker's mapping
  file before defense swaps) refers to.  The memory controller translates
  logical rows to physical rows through an indirection table that the
  defenses update when they move data.
* **physical rows** — actual positions in the sub-array.  RowHammer coupling
  is physical: hammering physical row *r* disturbs physical rows *r-1* and
  *r+1* of the same sub-array (the paper's single-sided model flips bits on
  the two adjacent victim rows; Section 3, threat model item 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.dram.geometry import DramGeometry

__all__ = ["RowAddress", "BitAddress", "AddressMapper", "RowIndirection"]


@dataclass(frozen=True, order=True)
class RowAddress:
    """Physical or logical position of one DRAM row.

    Addresses are dictionary keys on every simulator hot path (indirection
    lookups, adjacency caches, disturbance bookkeeping), so the hash is
    computed once at construction and ``__eq__`` is hand-rolled with the
    most-discriminating field first.
    """

    bank: int
    subarray: int
    row: int

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash", hash((self.bank, self.subarray, self.row))
        )

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if other.__class__ is RowAddress:
            return (
                self.row == other.row
                and self.subarray == other.subarray
                and self.bank == other.bank
            )
        return NotImplemented

    def with_row(self, row: int) -> "RowAddress":
        return RowAddress(self.bank, self.subarray, row)

    def same_subarray(self, other: "RowAddress") -> bool:
        return self.bank == other.bank and self.subarray == other.subarray


@dataclass(frozen=True, order=True)
class BitAddress:
    """Position of a single bit inside a row."""

    row: RowAddress
    bit: int  # absolute bit index within the row, 0 .. row_bits-1

    @property
    def byte(self) -> int:
        return self.bit // 8

    @property
    def bit_in_byte(self) -> int:
        return self.bit % 8


class AddressMapper:
    """Translate between flat row indices and :class:`RowAddress`.

    Flat index layout: ``bank`` is the most significant component, then
    ``subarray``, then ``row`` — i.e. consecutive flat indices walk rows
    within a sub-array first, which matches how the weight layout fills
    memory and keeps physically adjacent rows adjacent in flat space.
    """

    # Validation and adjacency depend only on the geometry, so the memo
    # tables are shared per-geometry across mapper instances: scenario
    # trials that build a fresh device per trial start warm instead of
    # re-deriving the same addresses every time.  Bounded by total_rows
    # per distinct geometry.
    _shared_caches: dict[
        DramGeometry, tuple[set, dict, set]
    ] = {}

    def __init__(self, geometry: DramGeometry):
        self.geometry = geometry
        shared = AddressMapper._shared_caches.get(geometry)
        if shared is None:
            shared = (set(), {}, set())
            AddressMapper._shared_caches[geometry] = shared
        self._validated: set[RowAddress] = shared[0]
        self._neighbors: dict[RowAddress, list[RowAddress]] = shared[1]
        # (src, dst) pairs that passed the RowClone FPM preconditions
        # (valid, same sub-array, distinct) — shared for the same reason.
        self.checked_clone_pairs: set[tuple[RowAddress, RowAddress]] = shared[2]

    def to_flat(self, addr: RowAddress) -> int:
        g = self.geometry
        self.validate(addr)
        return (addr.bank * g.subarrays_per_bank + addr.subarray) * g.rows_per_subarray + addr.row

    def from_flat(self, flat: int) -> RowAddress:
        g = self.geometry
        if not 0 <= flat < g.total_rows:
            raise ValueError(f"flat row index {flat} out of range [0, {g.total_rows})")
        row = flat % g.rows_per_subarray
        rest = flat // g.rows_per_subarray
        subarray = rest % g.subarrays_per_bank
        bank = rest // g.subarrays_per_bank
        return RowAddress(bank, subarray, row)

    def validate(self, addr: RowAddress) -> None:
        if addr in self._validated:
            return
        g = self.geometry
        if not 0 <= addr.bank < g.banks:
            raise ValueError(f"bank {addr.bank} out of range [0, {g.banks})")
        if not 0 <= addr.subarray < g.subarrays_per_bank:
            raise ValueError(
                f"subarray {addr.subarray} out of range [0, {g.subarrays_per_bank})"
            )
        if not 0 <= addr.row < g.rows_per_subarray:
            raise ValueError(
                f"row {addr.row} out of range [0, {g.rows_per_subarray})"
            )
        self._validated.add(addr)

    def neighbors(self, addr: RowAddress) -> list[RowAddress]:
        """Physically adjacent rows in the same sub-array (blast radius 1).

        RowHammer coupling does not cross sub-array boundaries because
        sub-arrays have separate local bit-lines and sense amplifiers.
        Adjacency is *physical* and independent of the controller's
        logical indirection, so the result is memoized per address; treat
        the returned list as read-only.
        """
        cached = self._neighbors.get(addr)
        if cached is None:
            cached = self.compute_neighbors(addr)
            self._neighbors[addr] = cached
        return cached

    def compute_neighbors(self, addr: RowAddress) -> list[RowAddress]:
        """Uncached adjacency (the pre-memoization path, kept for the
        ``repro bench`` before/after comparison)."""
        self.validate(addr)
        result = []
        if addr.row > 0:
            result.append(addr.with_row(addr.row - 1))
        if addr.row < self.geometry.rows_per_subarray - 1:
            result.append(addr.with_row(addr.row + 1))
        return result

    def iter_rows(self) -> Iterator[RowAddress]:
        """All rows of the device in flat order."""
        for flat in range(self.geometry.total_rows):
            yield self.from_flat(flat)


class RowIndirection:
    """Logical-to-physical row remapping updated by swap-based defenses.

    Starts as the identity.  ``swap(a, b)`` records that the *data* of
    logical rows ``a`` and ``b`` switched physical places.  The white-box
    attacker of Section 3 is assumed to observe these updates (it "knows the
    new location"), which is why the mapping exposes both directions.
    """

    def __init__(self, mapper: AddressMapper):
        self._mapper = mapper
        self._log_to_phys: dict[RowAddress, RowAddress] = {}
        self._phys_to_log: dict[RowAddress, RowAddress] = {}
        # Bumped on every swap; lets hot loops (the hammer driver) cache a
        # logical->physical resolution and re-resolve only after a remap.
        self.version = 0

    def physical(self, logical: RowAddress) -> RowAddress:
        return self._log_to_phys.get(logical, logical)

    def physical_set(self, logicals) -> set[RowAddress]:
        """Resolve many logical rows in one call (hot-path bulk helper)."""
        table = self._log_to_phys
        return {table.get(logical, logical) for logical in logicals}

    def logical(self, physical: RowAddress) -> RowAddress:
        return self._phys_to_log.get(physical, physical)

    def swap(self, logical_a: RowAddress, logical_b: RowAddress) -> None:
        """Swap the physical locations backing two logical rows."""
        self._mapper.validate(logical_a)
        self._mapper.validate(logical_b)
        phys_a = self.physical(logical_a)
        phys_b = self.physical(logical_b)
        self._set(logical_a, phys_b)
        self._set(logical_b, phys_a)
        self.version += 1

    def _set(self, logical: RowAddress, physical: RowAddress) -> None:
        # ``swap`` validated the logicals; physicals come out of the table
        # (or equal a validated logical), so they are valid by induction.
        if logical == physical:
            self._log_to_phys.pop(logical, None)
            self._phys_to_log.pop(physical, None)
        else:
            self._log_to_phys[logical] = physical
            self._phys_to_log[physical] = logical

    @property
    def remapped_count(self) -> int:
        return len(self._log_to_phys)
