"""A DRAM bank: an array of sub-arrays with one open row at a time."""

from __future__ import annotations

from repro.dram.geometry import DramGeometry
from repro.dram.subarray import Subarray

__all__ = ["Bank"]


class Bank:
    """One bank of the device.

    A bank has a single row buffer from the command protocol's point of view:
    at most one (subarray, row) pair is open at a time.  RowClone's
    back-to-back ACT trick requires source and destination to share a
    sub-array.
    """

    def __init__(self, geometry: DramGeometry):
        self.geometry = geometry
        self.subarrays = [
            Subarray(geometry.rows_per_subarray, geometry.row_bytes)
            for _ in range(geometry.subarrays_per_bank)
        ]
        self.open: tuple[int, int] | None = None  # (subarray, row)

    def subarray(self, index: int) -> Subarray:
        if not 0 <= index < len(self.subarrays):
            raise ValueError(
                f"subarray {index} out of range [0, {len(self.subarrays)})"
            )
        return self.subarrays[index]

    def activate(self, subarray: int, row: int) -> None:
        sa = self.subarray(subarray)
        sa._check(row)
        self.open = (subarray, row)
        sa.open_row = row

    def precharge(self) -> None:
        if self.open is not None:
            subarray, _ = self.open
            self.subarrays[subarray].open_row = None
        self.open = None

    def refresh_all(self) -> None:
        for sa in self.subarrays:
            sa.refresh_all()
        self.precharge()
