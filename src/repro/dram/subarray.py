"""One DRAM sub-array: row storage, row buffer, and disturbance counters.

The sub-array is the unit that matters for both RowClone (fast in-memory copy
only works between rows sharing local bit-lines) and RowHammer (disturbance
coupling does not cross sub-array boundaries).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Subarray"]


class Subarray:
    """Row storage plus per-row RowHammer disturbance state.

    Attributes:
        rows: ``(num_rows, row_bytes)`` uint8 backing store.
        disturbance: per-row accumulated neighbour-activation count since the
            row was last refreshed/rewritten.
        flipped_this_window: rows whose vulnerable cells already flipped since
            their last refresh (a cell that has discharged does not flip
            again until recharged).
    """

    def __init__(self, num_rows: int, row_bytes: int):
        if num_rows <= 0 or row_bytes <= 0:
            raise ValueError("num_rows and row_bytes must be positive")
        self.num_rows = num_rows
        self.row_bytes = row_bytes
        self.rows = np.zeros((num_rows, row_bytes), dtype=np.uint8)
        self.disturbance = np.zeros(num_rows, dtype=np.int64)
        self.flipped_this_window = np.zeros(num_rows, dtype=bool)
        self.open_row: int | None = None

    def _check(self, row: int) -> None:
        if not 0 <= row < self.num_rows:
            raise ValueError(f"row {row} out of range [0, {self.num_rows})")

    def read_row(self, row: int) -> np.ndarray:
        """Return a copy of a row's bytes (a read does not refresh DRAM state
        here; the controller models activation explicitly)."""
        self._check(row)
        return self.rows[row].copy()

    def write_row(self, row: int, data: np.ndarray) -> None:
        """Overwrite a row; rewriting restores charge, clearing disturbance."""
        self._check(row)
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (self.row_bytes,):
            raise ValueError(
                f"row data must have shape ({self.row_bytes},), got {data.shape}"
            )
        self.rows[row] = data
        self.reset_disturbance(row)

    def copy_row(self, src: int, dst: int) -> None:
        """In-sub-array copy (RowClone FPM). Activating the source restores
        its charge; writing the destination restores its charge too."""
        num_rows = self.num_rows
        if not (0 <= src < num_rows and 0 <= dst < num_rows):
            self._check(src)
            self._check(dst)
        self.rows[dst] = self.rows[src]
        disturbance = self.disturbance
        flipped = self.flipped_this_window
        disturbance[src] = 0
        disturbance[dst] = 0
        flipped[src] = False
        flipped[dst] = False

    def reset_disturbance(self, row: int) -> None:
        self._check(row)
        self.disturbance[row] = 0
        self.flipped_this_window[row] = False

    def add_disturbance(self, row: int, amount: int = 1) -> None:
        self._check(row)
        if amount < 0:
            raise ValueError(f"disturbance amount must be >= 0, got {amount}")
        self.disturbance[row] += amount

    def refresh_all(self) -> None:
        """Periodic auto-refresh: every cell recharged."""
        self.disturbance[:] = 0
        self.flipped_this_window[:] = False

    def flip_bits(self, row: int, bits: list[int]) -> list[tuple[int, int, int]]:
        """Apply RowHammer flips; returns (bit, old, new) per flip.

        All flips are applied as one XOR against a byte mask.  Duplicate
        bit indices cancel pairwise in the data (each occurrence toggles
        the cell once), and the per-occurrence events alternate old/new
        exactly as sequential application would report them.
        """
        self._check(row)
        if not len(bits):
            return []
        bit_array = np.asarray(bits, dtype=np.int64)
        if bit_array.min() < 0 or bit_array.max() >= self.row_bytes * 8:
            bad = bit_array[
                (bit_array < 0) | (bit_array >= self.row_bytes * 8)
            ][0]
            raise ValueError(
                f"bit {int(bad)} out of range [0, {self.row_bytes * 8})"
            )
        byte_index = bit_array >> 3
        shift = (bit_array & 7).astype(np.uint8)
        row_data = self.rows[row]
        old = (row_data[byte_index] >> shift) & 1
        mask = np.zeros(self.row_bytes, dtype=np.uint8)
        np.bitwise_xor.at(mask, byte_index, np.uint8(1) << shift)
        np.bitwise_xor(row_data, mask, out=row_data)
        events = []
        seen: dict[int, int] = {}
        for bit, value in zip(bit_array, old):
            bit = int(bit)
            occurrence = seen.get(bit, 0)
            seen[bit] = occurrence + 1
            # Odd occurrences observe the already-toggled cell.
            effective_old = int(value) ^ (occurrence & 1)
            events.append((bit, effective_old, 1 - effective_old))
        return events
