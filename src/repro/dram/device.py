"""Whole-device DRAM model: banks + flip model + fault log."""

from __future__ import annotations

import numpy as np

from repro.dram.address import AddressMapper, RowAddress
from repro.dram.bank import Bank
from repro.dram.faults import DeterministicFlipModel, FaultLog, FlipModel
from repro.dram.geometry import DramGeometry
from repro.dram.subarray import Subarray

__all__ = ["DramDevice"]


class DramDevice:
    """Functional model of one DRAM device.

    Data, disturbance counters and flips live here; command timing and the
    logical/physical indirection live in
    :class:`repro.dram.controller.MemoryController`.
    """

    def __init__(
        self,
        geometry: DramGeometry,
        flip_model: FlipModel | None = None,
    ):
        self.geometry = geometry
        self.mapper = AddressMapper(geometry)
        self.banks = [Bank(geometry) for _ in range(geometry.banks)]
        self.flip_model: FlipModel = flip_model or DeterministicFlipModel()
        self.fault_log = FaultLog()

    def bank(self, index: int) -> Bank:
        if not 0 <= index < len(self.banks):
            raise ValueError(f"bank {index} out of range [0, {len(self.banks)})")
        return self.banks[index]

    def subarray_at(self, addr: RowAddress) -> Subarray:
        self.mapper.validate(addr)
        return self.banks[addr.bank].subarray(addr.subarray)

    def read_row(self, addr: RowAddress) -> np.ndarray:
        return self.subarray_at(addr).read_row(addr.row)

    def write_row(self, addr: RowAddress, data: np.ndarray) -> None:
        self.subarray_at(addr).write_row(addr.row, data)

    def disturbance(self, addr: RowAddress) -> int:
        return int(self.subarray_at(addr).disturbance[addr.row])

    def refresh_all(self) -> None:
        for bank in self.banks:
            bank.refresh_all()

    def fill_random(self, rng: np.random.Generator) -> None:
        """Fill every row with random bytes (background memory contents)."""
        for bank in self.banks:
            for sa in bank.subarrays:
                sa.rows[:] = rng.integers(
                    0, 256, size=sa.rows.shape, dtype=np.uint8
                )
