"""``repro lint`` — static determinism & resource-safety analysis.

An :mod:`ast`-based analyzer enforcing the reproducibility invariants
the rest of this repo can only spot-check at runtime: seeded RNG
everywhere (REP001), byte-stable serialization (REP002), the worker-env
contract (REP003), hook hygiene (REP004), atomic artifact writes
(REP005), float-order discipline (REP006), fork-safe module state
(REP007) and the scenario-registration contract (REP008).

Entry points::

    python -m repro lint [paths] [--format text|json] [--select/--ignore]
                         [--baseline FILE] [--stats]

    from repro.analysis.lint import run_lint
    report = run_lint(["src/repro"])

Suppress a reviewed, intentional violation in place::

    env = dict(os.environ)  # repro: noqa[REP003] — local transport ships full env

Grandfathered findings live in ``lint-baseline.json`` at the repo root
(see :mod:`repro.analysis.lint.suppress`); CI gates on a clean run.
"""

from repro.analysis.lint.engine import (
    FileContext,
    Finding,
    LintReport,
    repo_root,
    run_lint,
)
from repro.analysis.lint.registry import (
    LintRule,
    get_rule,
    iter_rules,
    rule,
    rule_ids,
)
from repro.analysis.lint.report import (
    format_findings,
    format_rules,
    format_stats,
    to_json_text,
)
from repro.analysis.lint.suppress import Baseline, Pragmas

__all__ = [
    "FileContext",
    "Finding",
    "LintReport",
    "repo_root",
    "run_lint",
    "LintRule",
    "get_rule",
    "iter_rules",
    "rule",
    "rule_ids",
    "format_findings",
    "format_rules",
    "format_stats",
    "to_json_text",
    "Baseline",
    "Pragmas",
]
