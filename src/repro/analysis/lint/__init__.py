"""``repro lint`` — static determinism & resource-safety analysis.

An :mod:`ast`-based analyzer enforcing the reproducibility invariants
the rest of this repo can only spot-check at runtime: seeded RNG
everywhere (REP001), byte-stable serialization (REP002), the worker-env
contract (REP003), hook hygiene (REP004), atomic artifact writes
(REP005), float-order discipline (REP006), fork-safe module state
(REP007) and the scenario-registration contract (REP008) — plus, under
``--flow``, the whole-program REP1xx tier (seed provenance REP101, env
flow REP102, fork-safety races REP103, unchecked hook flow REP104) run
over a conservative call graph of the scanned tree.

Entry points::

    python -m repro lint [paths] [--format text|json] [--select/--ignore]
                         [--baseline FILE] [--stats] [--flow]
    python -m repro lint graph repro.experiments.runner.run_scenario

    from repro.analysis.lint import run_lint
    report = run_lint(["src/repro"], flow=True)

Suppress a reviewed, intentional violation in place::

    env = dict(os.environ)  # repro: noqa[REP003] — local transport ships full env

Grandfathered findings live in ``lint-baseline.json`` at the repo root
(see :mod:`repro.analysis.lint.suppress`); CI gates on a clean run.
"""

from repro.analysis.lint.engine import (
    FileContext,
    Finding,
    LintReport,
    build_index,
    repo_root,
    run_lint,
)
from repro.analysis.lint.registry import (
    LintRule,
    get_rule,
    iter_rules,
    rule,
    rule_ids,
)
from repro.analysis.lint.report import (
    format_dead_suppressions,
    format_findings,
    format_graph,
    format_rules,
    format_stats,
    to_json_text,
)
from repro.analysis.lint.suppress import Baseline, Pragmas

__all__ = [
    "FileContext",
    "Finding",
    "LintReport",
    "repo_root",
    "run_lint",
    "build_index",
    "LintRule",
    "get_rule",
    "iter_rules",
    "rule",
    "rule_ids",
    "format_findings",
    "format_rules",
    "format_stats",
    "format_graph",
    "format_dead_suppressions",
    "to_json_text",
    "Baseline",
    "Pragmas",
]
