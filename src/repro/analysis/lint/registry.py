"""Rule registry for ``repro lint``.

Mirrors the scenario-registry idiom (:mod:`repro.experiments.registry`):
rules are declarative specs registered by decorator at import time, and
every consumer — the engine, the CLI, the docs table, the fixture tests
— resolves them from one dict.

Registering a rule::

    @rule(
        "REP001",
        name="unseeded-rng",
        summary="module-level RNG without an explicit seed",
        hint="thread a seeded np.random.Generator through",
        rationale="PR 3 patched silent unseeded-RNG fallbacks",
    )
    def check_unseeded_rng(ctx):
        for node in ctx.walk(ast.Call):
            ...
            yield node, "np.random.default_rng() without a seed"

A rule is a generator over ``(ast_node, message)`` pairs; the engine
turns each pair into a :class:`repro.analysis.lint.engine.Finding`,
attaching the rule's id and fix hint.  ``exempt`` names repo-relative
path suffixes where the rule never applies (the sanctioned choke points
the rule funnels everyone else towards).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = [
    "LintRule",
    "rule",
    "register",
    "unregister",
    "get_rule",
    "rule_ids",
    "iter_rules",
    "path_is_exempt",
]

_RULE_ID = re.compile(r"^REP\d{3}$")

_REGISTRY: dict[str, "LintRule"] = {}


@dataclass(frozen=True)
class LintRule:
    """One registered static-analysis rule.

    Attributes:
        id: Stable diagnostic code (``REP001`` …) — referenced by
            suppression pragmas, baselines and ``--select/--ignore``.
        name: Kebab-case slug for humans (``unseeded-rng``).
        summary: One-line description shown by ``repro lint --list-rules``.
        hint: Fix hint appended to every finding this rule emits.
        rationale: Which recurring bug class / past PR fix the rule
            codifies (shown in the docs rule table).
        check: Generator of ``(node, message)`` pairs for one file —
            or, for flow rules, ``(ctx, node, message)`` triples over
            the whole-program index.
        exempt: Repo-relative path suffixes the rule skips — the
            sanctioned implementation sites of the invariant itself.
        flow: True for REP1xx whole-program rules: ``check`` receives a
            :class:`~repro.analysis.lint.callgraph.ProjectIndex` instead
            of one file's context, and only runs under ``--flow`` (or
            when explicitly ``--select``-ed).
    """

    id: str
    name: str
    summary: str
    hint: str
    check: Callable = field(repr=False, compare=False)
    rationale: str = ""
    exempt: tuple[str, ...] = ()
    flow: bool = False


def register(spec: LintRule) -> LintRule:
    """Add ``spec`` to the registry; bad ids and duplicates are errors."""
    if not _RULE_ID.match(spec.id):
        raise ValueError(f"rule id {spec.id!r} does not match REP###")
    if spec.id in _REGISTRY:
        raise ValueError(f"rule {spec.id!r} is already registered")
    _REGISTRY[spec.id] = spec
    return spec


def unregister(rule_id: str) -> None:
    """Remove a rule (used by tests registering throwaway rules)."""
    _REGISTRY.pop(rule_id, None)


def rule(
    rule_id: str,
    *,
    name: str,
    summary: str,
    hint: str,
    rationale: str = "",
    exempt: tuple[str, ...] = (),
    flow: bool = False,
) -> Callable[[Callable], LintRule]:
    """Decorator: register the wrapped check function as a lint rule.

    Returns the :class:`LintRule` (not the raw function), matching the
    scenario-registry convention.
    """

    def wrap(fn: Callable) -> LintRule:
        return register(
            LintRule(
                id=rule_id,
                name=name,
                summary=summary,
                hint=hint,
                check=fn,
                rationale=rationale,
                exempt=tuple(exempt),
                flow=flow,
            )
        )

    return wrap


def get_rule(rule_id: str) -> LintRule:
    """Resolve a rule by id; raise with the catalogue on miss."""
    _ensure_builtins()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"unknown lint rule {rule_id!r}; registered rules: {known}"
        ) from None


def rule_ids() -> list[str]:
    """Sorted ids of all registered rules."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def iter_rules() -> Iterator[LintRule]:
    """Iterate rules in id order."""
    _ensure_builtins()
    for rule_id in sorted(_REGISTRY):
        yield _REGISTRY[rule_id]


def path_is_exempt(relpath: str, spec: LintRule) -> bool:
    """True when ``relpath`` (posix) matches one of the rule's exemptions.

    A pattern matches the whole path or a trailing path-segment suffix:
    ``nn/seeding.py`` matches ``src/repro/nn/seeding.py`` but a pattern
    ``cli.py`` does not match ``tools/mycli.py``.
    """
    for pattern in spec.exempt:
        if relpath == pattern or relpath.endswith("/" + pattern):
            return True
    return False


def _ensure_builtins() -> None:
    """Import the built-in rule definitions exactly once.

    Same pattern as the scenario registry: lets this module be imported
    standalone while guaranteeing the REP rules are present whenever the
    registry is queried.
    """
    import repro.analysis.lint.flow_rules  # noqa: F401  (registers on import)
    import repro.analysis.lint.rules  # noqa: F401  (registers on import)
