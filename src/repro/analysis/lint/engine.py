"""AST lint engine: file discovery, parsing, rule dispatch, filtering.

The engine is deliberately execution-free — it parses every ``*.py``
file with :mod:`ast` and never imports the code under analysis, so it is
safe to run over worker entry points, chaos-injection modules and
scenario definitions without side effects.

Pipeline per file: parse → build a :class:`FileContext` (source lines,
import-alias map, parent links) → run every selected per-file rule →
attach suppression state (``# repro: noqa[REP###]`` pragmas, then the
committed baseline) → collect the survivors into a :class:`LintReport`.

Under ``--flow`` a whole-program phase runs between rule dispatch and
suppression: every parsed context feeds one
:class:`~repro.analysis.lint.callgraph.ProjectIndex`, the REP1xx flow
rules (see :mod:`repro.analysis.lint.flow_rules`) emit findings against
arbitrary files in the index, and those findings then flow through the
*same* pragma/baseline/fingerprint plumbing as per-file ones —
suppression and CI behavior are uniform across both tiers.

Diagnostics are stable: findings are sorted by (path, line, col, rule)
and fingerprinted by content rather than line number, so unrelated edits
above a grandfathered finding do not invalidate a baseline.
"""

from __future__ import annotations

import ast
import hashlib
import pathlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.analysis.lint.registry import (
    LintRule,
    get_rule,
    iter_rules,
    path_is_exempt,
)
from repro.analysis.lint.suppress import Baseline, Pragmas

__all__ = [
    "Finding",
    "FileContext",
    "LintReport",
    "run_lint",
    "build_index",
    "repo_root",
]

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[4]


def repo_root() -> pathlib.Path:
    """The repository root (``src/``'s parent)."""
    return _REPO_ROOT


@dataclass(frozen=True)
class Finding:
    """One diagnostic: where, which rule, what, and how to fix it."""

    path: str  # repo-relative posix path
    line: int
    col: int  # 1-based, matching editors and compiler convention
    rule: str
    message: str
    hint: str = ""
    fingerprint: str = ""

    def format_text(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
        }


class FileContext:
    """Everything a rule needs to inspect one parsed file."""

    def __init__(self, path: pathlib.Path, relpath: str, source: str):
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self._parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self._parents[child] = node
        self.imports = _import_aliases(self.tree)

    # -- navigation ----------------------------------------------------- #

    def walk(self, *types: type) -> Iterator[ast.AST]:
        """All nodes in the tree, optionally filtered by node type."""
        for node in ast.walk(self.tree):
            if not types or isinstance(node, types):
                yield node

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (None for the module)."""
        return self._parents.get(node)

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        """The nearest enclosing function/method definition, if any."""
        current = self._parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self._parents.get(current)
        return None

    # -- name resolution ------------------------------------------------ #

    def qualname(self, node: ast.AST) -> str | None:
        """Resolve a Name/Attribute chain to a dotted import-qualified name.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` when the file holds ``import numpy
        as np``; a head that is not an import alias returns None (it is a
        local object, not a module path — rules must not guess).
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        resolved = self.imports.get(current.id)
        if resolved is None:
            return None
        parts.append(resolved)
        return ".".join(reversed(parts))

    def line_text(self, node: ast.AST) -> str:
        lineno = getattr(node, "lineno", 0)
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name → dotted origin, from every import in the file.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from os import environ`` → ``{"environ": "os.environ"}``.
    Star imports are ignored (nothing to resolve deterministically).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                target = name.name if name.asname else name.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports: origin is ambiguous per-file
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0
    parse_errors: list[str] = field(default_factory=list)
    graph: dict | None = None  # call-graph + entry-set summary (--flow)
    dead_suppressions: list[dict] = field(default_factory=list)

    def stats(self) -> dict:
        by_rule: dict[str, int] = {}
        by_package: dict[str, int] = {}
        for finding in self.findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
            package = _package_of(finding.path)
            by_package[package] = by_package.get(package, 0) + 1
        return {
            "total": len(self.findings),
            "by_rule": dict(sorted(by_rule.items())),
            "by_package": dict(sorted(by_package.items())),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "files_checked": self.files_checked,
            "dead_suppressions": len(self.dead_suppressions),
        }

    def to_json(self) -> dict:
        """Stable machine-readable payload (schema pinned by tests)."""
        return {
            "version": 2,
            "tool": "repro-lint",
            "files_checked": self.files_checked,
            "findings": [f.to_json() for f in self.findings],
            "stats": self.stats(),
            "parse_errors": list(self.parse_errors),
            "graph": self.graph,
            "dead_suppressions": list(self.dead_suppressions),
        }


def _package_of(relpath: str) -> str:
    """Aggregation key for --stats: the package under ``src/repro/``."""
    parts = relpath.split("/")
    if parts[:2] == ["src", "repro"]:
        return parts[2] if len(parts) > 3 else "repro"
    return parts[0]


def discover_files(paths: Iterable[pathlib.Path]) -> list[pathlib.Path]:
    """Expand files/directories into a sorted, de-duplicated ``*.py`` list."""
    seen: set[pathlib.Path] = set()
    for path in paths:
        path = pathlib.Path(path)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if any(
                    part.startswith(".") or part == "__pycache__"
                    for part in candidate.relative_to(path).parts
                ):
                    continue
                seen.add(candidate.resolve())
        elif path.suffix == ".py":
            seen.add(path.resolve())
        else:
            raise ValueError(f"not a python file or directory: {path}")
    return sorted(seen)


def _relpath(path: pathlib.Path, root: pathlib.Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def _fingerprint(rule_id: str, relpath: str, line_text: str, occurrence: int) -> str:
    """Content-addressed finding identity, stable under line-number drift."""
    payload = f"{rule_id}|{relpath}|{line_text.strip()}|{occurrence}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _select_rules(
    select: Sequence[str] | None, ignore: Sequence[str] | None
) -> list[LintRule]:
    if select:
        rules = [get_rule(rule_id) for rule_id in select]
    else:
        rules = list(iter_rules())
    if ignore:
        dropped = {get_rule(rule_id).id for rule_id in ignore}
        rules = [spec for spec in rules if spec.id not in dropped]
    return rules


_RawFinding = tuple[int, int, str, str, str]  # line, col, rule, msg, hint


def _raw_from_check(spec: LintRule, node: ast.AST, message: str) -> _RawFinding:
    return (
        getattr(node, "lineno", 1),
        getattr(node, "col_offset", 0) + 1,
        spec.id,
        message,
        spec.hint,
    )


def _finalize_file(
    ctx: FileContext,
    pragmas: Pragmas,
    raw: list[_RawFinding],
) -> tuple[list[Finding], int]:
    """Apply pragmas and mint fingerprints for one file's raw findings.

    Occurrence-index fingerprints: two identical lines violating the
    same rule stay distinguishable without depending on line numbers.
    """
    occurrences: dict[tuple[str, str], int] = {}
    findings: list[Finding] = []
    suppressed = 0
    for line, col, rule_id, message, hint in sorted(raw):
        if pragmas.suppresses(line, rule_id):
            suppressed += 1
            continue
        text = ctx.lines[line - 1] if 1 <= line <= len(ctx.lines) else ""
        key = (rule_id, text.strip())
        occurrence = occurrences.get(key, 0)
        occurrences[key] = occurrence + 1
        findings.append(
            Finding(
                path=ctx.relpath,
                line=line,
                col=col,
                rule=rule_id,
                message=message,
                hint=hint,
                fingerprint=_fingerprint(
                    rule_id, ctx.relpath, text, occurrence
                ),
            )
        )
    return findings, suppressed


def lint_file(
    path: pathlib.Path,
    root: pathlib.Path,
    rules: Sequence[LintRule],
) -> tuple[list[Finding], int, str | None]:
    """Lint one file with per-file rules only (flow rules need an index)."""
    relpath = _relpath(path, root)
    try:
        source = path.read_text()
        ctx = FileContext(path, relpath, source)
    except (SyntaxError, UnicodeDecodeError, OSError) as exc:
        return [], 0, f"{relpath}: {type(exc).__name__}: {exc}"
    pragmas = Pragmas.scan(ctx.lines)
    raw: list[_RawFinding] = []
    for spec in rules:
        if spec.flow or path_is_exempt(relpath, spec):
            continue
        for node, message in spec.check(ctx):
            raw.append(_raw_from_check(spec, node, message))
    findings, suppressed = _finalize_file(ctx, pragmas, raw)
    return findings, suppressed, None


def build_index(
    paths: Iterable[str | pathlib.Path] | None = None,
    *,
    root: str | pathlib.Path | None = None,
):
    """Parse ``paths`` and build the whole-program :class:`ProjectIndex`.

    Returns ``(index, parse_errors)`` — the entry point for
    ``repro lint graph`` and for tests poking the graph directly.
    """
    from repro.analysis.lint.callgraph import ProjectIndex

    root = pathlib.Path(root).resolve() if root is not None else _REPO_ROOT
    targets = [pathlib.Path(p) for p in paths] if paths else [root / "src"]
    contexts: list[FileContext] = []
    parse_errors: list[str] = []
    for path in discover_files(targets):
        relpath = _relpath(path, root)
        try:
            contexts.append(FileContext(path, relpath, path.read_text()))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            parse_errors.append(f"{relpath}: {type(exc).__name__}: {exc}")
    return ProjectIndex.build(contexts), parse_errors


def run_lint(
    paths: Iterable[str | pathlib.Path] | None = None,
    *,
    root: str | pathlib.Path | None = None,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    baseline: Baseline | str | pathlib.Path | None = None,
    flow: bool = False,
) -> LintReport:
    """Lint ``paths`` (default: ``src/`` under the repo root).

    Args:
        paths: Files and/or directories to analyze.
        root: Base for repo-relative diagnostic paths (default: the
            repository root inferred from this package's location).
        select: Only run these rule ids (default: all registered).
            Explicitly selecting a flow rule enables the flow phase for
            it even without ``flow=True``.
        ignore: Drop these rule ids from the run.
        baseline: A :class:`Baseline`, or a path to load one from —
            grandfathered fingerprints are filtered out and counted.
        flow: Run the whole-program phase (project index + REP1xx flow
            rules) over every parsed file.
    """
    root = pathlib.Path(root).resolve() if root is not None else _REPO_ROOT
    targets = (
        [pathlib.Path(p) for p in paths] if paths else [root / "src"]
    )
    rules = _select_rules(select, ignore)
    file_rules = [spec for spec in rules if not spec.flow]
    flow_specs = [spec for spec in rules if spec.flow]
    if not flow and not select:
        flow_specs = []
    if isinstance(baseline, (str, pathlib.Path)):
        baseline = Baseline.load(baseline)
    report = LintReport()

    # Pass 0: parse everything once; run the per-file tier.
    by_file: dict[str, tuple[FileContext, Pragmas, list[_RawFinding]]] = {}
    for path in discover_files(targets):
        report.files_checked += 1
        relpath = _relpath(path, root)
        try:
            source = path.read_text()
            ctx = FileContext(path, relpath, source)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            report.parse_errors.append(
                f"{relpath}: {type(exc).__name__}: {exc}"
            )
            continue
        pragmas = Pragmas.scan(ctx.lines)
        raw: list[_RawFinding] = []
        for spec in file_rules:
            if path_is_exempt(relpath, spec):
                continue
            for node, message in spec.check(ctx):
                raw.append(_raw_from_check(spec, node, message))
        by_file[relpath] = (ctx, pragmas, raw)

    # Whole-program phase: one index, flow rules yield (ctx, node, msg)
    # against any file in it; findings join that file's raw list so the
    # pragma/fingerprint/baseline plumbing below treats both tiers alike.
    if flow_specs and by_file:
        from repro.analysis.lint.callgraph import ProjectIndex
        from repro.analysis.lint.flow_rules import entry_summary

        index = ProjectIndex.build(ctx for ctx, _, _ in by_file.values())
        for spec in flow_specs:
            for ctx, node, message in spec.check(index):
                if path_is_exempt(ctx.relpath, spec):
                    continue
                entry = by_file.get(ctx.relpath)
                if entry is not None:
                    entry[2].append(_raw_from_check(spec, node, message))
        report.graph = dict(index.summary())
        report.graph["entries"] = entry_summary(index)

    # Finalize: suppression, fingerprints, baseline, dead-suppression.
    matched_baseline: set[str] = set()
    for relpath in sorted(by_file):
        ctx, pragmas, raw = by_file[relpath]
        findings, suppressed = _finalize_file(ctx, pragmas, raw)
        report.suppressed += suppressed
        for finding in findings:
            if baseline is not None and baseline.contains(finding):
                report.baselined += 1
                matched_baseline.add(finding.fingerprint)
            else:
                report.findings.append(finding)
        report.dead_suppressions.extend(pragmas.dead_entries(relpath))
    scanned = sorted(by_file)
    for spec in sorted(file_rules + flow_specs, key=lambda s: s.id):
        for pattern in spec.exempt:
            if not any(
                rel == pattern or rel.endswith("/" + pattern)
                for rel in scanned
            ):
                report.dead_suppressions.append(
                    {
                        "kind": "exempt",
                        "path": pattern,
                        "line": 0,
                        "detail": (
                            f"{spec.id} exempt {pattern!r} matches no "
                            "scanned file"
                        ),
                    }
                )
    if baseline is not None:
        report.dead_suppressions.extend(
            baseline.dead_entries(matched_baseline)
        )
    report.dead_suppressions.sort(
        key=lambda d: (d["kind"], d["path"], d["line"], d["detail"])
    )
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
