"""Suppression mechanics: ``noqa`` pragmas and the committed baseline.

Two escape hatches with different lifetimes:

* **Pragmas** are permanent, reviewed-in-place waivers.  A trailing
  ``# repro: noqa[REP003]`` on the offending line (or a module-level
  ``# repro: noqa-file[REP003]`` line) says "this site intentionally
  violates the rule, and the adjacent comment explains why".  A bare
  ``# repro: noqa`` waives every rule on that line — reserved for
  fixtures and generated code.

* The **baseline** is a committed JSON ledger of *grandfathered*
  findings: pre-existing violations tolerated while the rule ramps in.
  Entries are content-fingerprinted (rule + path + line text +
  occurrence index), so they survive unrelated edits but die with the
  line they describe — fixing the code shrinks the baseline for free.
"""

from __future__ import annotations

import io
import json
import pathlib
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Pragmas", "Baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1

_LINE_PRAGMA = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Z0-9,\s]+)\])?")
_FILE_PRAGMA = re.compile(r"^\s*#\s*repro:\s*noqa-file\[([A-Z0-9,\s]+)\]")

_ALL = "*"


@dataclass
class Pragmas:
    """Per-file suppression map parsed from comments.

    Every pragma's *use* is tracked: :meth:`suppresses` records which
    line/file-wide waivers actually fired, so :meth:`dead_entries` can
    report pragmas that no longer suppress anything (satellite of the
    flow-analysis PR: suppressions are debt and must stay live).
    """

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)
    hit_lines: set[int] = field(default_factory=set)
    hit_file_wide: set[str] = field(default_factory=set)

    @classmethod
    def scan(cls, lines: list[str]) -> "Pragmas":
        pragmas = cls()
        comments = _comment_linenos(lines)
        for lineno, text in enumerate(lines, start=1):
            if comments is not None and lineno not in comments:
                continue  # pragma text inside a string/docstring: inert
            file_match = _FILE_PRAGMA.match(text)
            if file_match:
                pragmas.file_wide.update(_parse_rule_list(file_match.group(1)))
                continue
            line_match = _LINE_PRAGMA.search(text)
            if line_match:
                rules = (
                    _parse_rule_list(line_match.group(1))
                    if line_match.group(1)
                    else {_ALL}
                )
                pragmas.by_line.setdefault(lineno, set()).update(rules)
        return pragmas

    def suppresses(self, line: int, rule_id: str) -> bool:
        if rule_id in self.file_wide:
            self.hit_file_wide.add(rule_id)
            return True
        rules = self.by_line.get(line)
        if rules is None:
            return False
        if _ALL in rules or rule_id in rules:
            self.hit_lines.add(line)
            return True
        return False

    def dead_entries(self, relpath: str) -> list[dict]:
        """Pragmas that suppressed nothing this run, as report records.

        Only meaningful after the engine has consulted :meth:`suppresses`
        for every raw finding in the file.
        """
        dead: list[dict] = []
        for lineno in sorted(self.by_line):
            if lineno not in self.hit_lines:
                rules = ",".join(sorted(self.by_line[lineno]))
                dead.append(
                    {
                        "kind": "noqa",
                        "path": relpath,
                        "line": lineno,
                        "detail": f"noqa[{rules}] suppresses nothing",
                    }
                )
        for rule_id in sorted(self.file_wide - self.hit_file_wide):
            dead.append(
                {
                    "kind": "noqa-file",
                    "path": relpath,
                    "line": 0,
                    "detail": f"noqa-file[{rule_id}] suppresses nothing",
                }
            )
        return dead


def _parse_rule_list(text: str) -> set[str]:
    return {part.strip() for part in text.split(",") if part.strip()}


def _comment_linenos(lines: list[str]) -> set[int] | None:
    """Line numbers holding an actual ``#`` comment token.

    Keeps docstrings that *mention* pragma syntax (the lint package's
    own docs) from registering as suppressions — and therefore from
    polluting the dead-suppression report.  Returns None when the
    source does not tokenize (caller falls back to matching every
    line).
    """
    source = "\n".join(lines) + "\n"
    try:
        return {
            token.start[0]
            for token in tokenize.generate_tokens(io.StringIO(source).readline)
            if token.type == tokenize.COMMENT
        }
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return None


@dataclass
class Baseline:
    """Fingerprint set of grandfathered findings (committed as JSON)."""

    fingerprints: dict[str, dict] = field(default_factory=dict)
    path: pathlib.Path | None = None

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "Baseline":
        path = pathlib.Path(path)
        if not path.exists():
            return cls(path=path)
        payload = json.loads(path.read_text())
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {version!r} "
                f"(expected {BASELINE_VERSION})"
            )
        entries = payload.get("findings", {})
        if not isinstance(entries, dict):
            raise ValueError(f"{path}: baseline 'findings' must be an object")
        return cls(fingerprints=dict(entries), path=path)

    def contains(self, finding) -> bool:
        return finding.fingerprint in self.fingerprints

    def dead_entries(self, matched: set[str]) -> list[dict]:
        """Baseline fingerprints that matched no finding this run."""
        dead: list[dict] = []
        for fp in sorted(set(self.fingerprints) - matched):
            entry = self.fingerprints[fp]
            dead.append(
                {
                    "kind": "baseline",
                    "path": str(entry.get("path", "")),
                    "line": 0,
                    "detail": (
                        f"baseline entry {fp} ({entry.get('rule', '?')}) "
                        "matches no finding"
                    ),
                }
            )
        return dead

    def gained_over(self, old: "Baseline") -> list[str]:
        """Fingerprints present here but not in ``old`` (ratchet check)."""
        return sorted(set(self.fingerprints) - set(old.fingerprints))

    def to_json(self) -> dict:
        return {
            "version": BASELINE_VERSION,
            "findings": {
                fp: self.fingerprints[fp] for fp in sorted(self.fingerprints)
            },
        }

    @classmethod
    def from_findings(
        cls, findings, path: str | pathlib.Path | None = None
    ) -> "Baseline":
        """Build a baseline grandfathering every finding in ``findings``."""
        entries = {
            f.fingerprint: {"rule": f.rule, "path": f.path, "message": f.message}
            for f in findings
        }
        return cls(
            fingerprints=entries,
            path=pathlib.Path(path) if path is not None else None,
        )

    def save(self, path: str | pathlib.Path | None = None) -> pathlib.Path:
        from repro.utils.io import atomic_write_text

        target = pathlib.Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no baseline path to save to")
        atomic_write_text(
            target, json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
        )
        return target
