"""Pass 2 of the whole-program analyzer: worklist dataflow.

Small, deterministic fixpoint machinery the REP1xx flow rules share:

* :func:`reachable` — transitive closure over the call graph from a
  root set (used for "every helper a trial body can reach", worker/
  coordinator path partitioning, downstream env re-reads).
* :func:`propagate` — the general worklist engine: facts seeded at
  nodes flow monotonically to their successors until saturation.  The
  lattice is sets-of-strings under union, so termination is immediate
  and the result is independent of work order; iteration is sorted
  anyway so intermediate states (and any debug output) are stable under
  hash randomization.
* :func:`param_derived_names` / :func:`expr_names` — the
  intraprocedural half: which local names (transitively, through
  straight-line assignments and walrus bindings) derive from the
  function's parameters.  Seed-provenance (REP101) treats a parameter
  as "the caller threaded it" and anything else as ambient state.

Everything here is pure data → data; the rules own all policy.
"""

from __future__ import annotations

import ast
from typing import Iterable, Mapping, Sequence

from repro.analysis.lint.callgraph import iter_scope

__all__ = [
    "reachable",
    "propagate",
    "invert_edges",
    "param_derived_names",
    "expr_names",
]


def reachable(
    edges: Mapping[str, Sequence[str]], roots: Iterable[str]
) -> set[str]:
    """Every node reachable from ``roots`` (roots included) over ``edges``."""
    seen: set[str] = set()
    stack = sorted(set(roots), reverse=True)
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(edges.get(current, ()))
    return seen


def propagate(
    edges: Mapping[str, Sequence[str]],
    initial: Mapping[str, Iterable[str]],
) -> dict[str, frozenset[str]]:
    """Saturate facts along edges: a node's facts join into each successor.

    Returns the complete node → fact-set map (nodes never reached by a
    fact are absent).  Monotone over a finite lattice, so the fixpoint
    is unique regardless of work order.
    """
    facts: dict[str, frozenset[str]] = {
        node: frozenset(values) for node, values in initial.items()
    }
    worklist = sorted(facts)
    while worklist:
        current = worklist.pop()
        current_facts = facts.get(current)
        if not current_facts:
            continue
        for successor in edges.get(current, ()):
            have = facts.get(successor, frozenset())
            merged = have | current_facts
            if merged != have:
                facts[successor] = merged
                worklist.append(successor)
    return facts


def invert_edges(
    edges: Mapping[str, Sequence[str]]
) -> dict[str, list[str]]:
    """callee → sorted callers, from a caller → callees map."""
    inverted: dict[str, set[str]] = {}
    for src in sorted(edges):
        for dst in edges[src]:
            inverted.setdefault(dst, set()).add(src)
    return {dst: sorted(srcs) for dst, srcs in sorted(inverted.items())}


def expr_names(expr: ast.AST) -> set[str]:
    """Every bare name read anywhere inside an expression."""
    return {
        node.id for node in ast.walk(expr) if isinstance(node, ast.Name)
    }


def param_derived_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names that (transitively) derive from the function's parameters.

    Seeded with every parameter, then closed over the function scope's
    straight-line ``Assign``/``AnnAssign``/``AugAssign`` statements and
    walrus bindings: a target joins the set when any name in its value
    is already in it.  Control flow is ignored (any-path
    over-approximation): the analysis prefers staying silent over
    inventing provenance findings for values that *might* be threaded.
    """
    args = fn.args
    derived = {
        arg.arg
        for arg in args.posonlyargs + args.args + args.kwonlyargs
    }
    if args.vararg is not None:
        derived.add(args.vararg.arg)
    if args.kwarg is not None:
        derived.add(args.kwarg.arg)
    changed = True
    while changed:
        changed = False
        for node in iter_scope(fn.body):
            targets: list[ast.AST]
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            elif isinstance(node, ast.AugAssign):
                value, targets = node.value, [node.target]
            elif isinstance(node, ast.NamedExpr):
                value, targets = node.value, [node.target]
            else:
                continue
            if not (expr_names(value) & derived):
                continue
            for target in targets:
                for name_node in ast.walk(target):
                    if (
                        isinstance(name_node, ast.Name)
                        and name_node.id not in derived
                    ):
                        derived.add(name_node.id)
                        changed = True
    return derived
