"""The REP1xx flow-rule tier: whole-program reproducibility invariants.

Where the REP0xx rules (:mod:`repro.analysis.lint.rules`) police single
files, these rules run over the :class:`~repro.analysis.lint.callgraph.
ProjectIndex` built by ``repro lint --flow`` and reason along call
edges:

* REP101 — seed provenance: every RNG constructed on a path reachable
  from a ``@scenario`` trial body must derive its seed from a function
  parameter (ultimately ``ctx.seed``/``ctx.rng``).  A helper that
  reseeds from a constant or ambient state silently decouples trials
  from their seeds, however deep the call chain.
* REP102 — env flow: a value read through ``repro.utils.env`` must be
  threaded, not re-read downstream (the coordinator and a worker can
  observe different values); worker-bound ``env=`` dicts must be built
  from explicit coordinator extras, never from ``os.environ``.
* REP103 — fork-safety race: module-level mutable state *written* on a
  coordinator-side path and *read* on a worker path diverges silently,
  because chunk workers re-import modules in a fresh interpreter.
  Computed as call-graph reachability from the two entry-point sets.
* REP104 — unchecked hook flow: an object of a hook-attaching class
  (REP004's class set, here closed over project subclasses) that is
  created in a function and neither detached on every return path nor
  handed off (returned / stored / passed / ``with``-managed) keeps
  replaying controller commands forever.

Entry points are exact qualnames (the scheduler/runner contract, pinned
below) plus anything marked with the escape-hatch pragma on its ``def``
line::

    def my_dispatch():  # repro: flow-entry[coordinator]
    def my_trial_body():  # repro: flow-entry[worker]

``@scenario``-decorated functions are both scenario and worker entries
(trial bodies execute inside chunk workers).  Dynamic dispatch the call
graph cannot see (``getattr``, callables in containers) is
over-approximated to no-edge — mark the target with ``flow-entry`` if a
rule must see past such a boundary.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.lint.callgraph import (
    CLASS,
    FunctionInfo,
    ProjectIndex,
    iter_scope,
)
from repro.analysis.lint.dataflow import (
    expr_names,
    param_derived_names,
    reachable,
)
from repro.analysis.lint.registry import rule

__all__ = ["entry_summary", "function_facts"]

_FLOW_ENTRY = re.compile(
    r"#\s*repro:\s*flow-entry\[(scenario|worker|coordinator)\]"
)

# The scheduler/runner contract (PR 3/4/7): what runs on the
# coordinator, and what runs inside a chunk/pool worker process.
COORDINATOR_ENTRY_QUALNAMES = (
    "repro.experiments.runner.run_scenario",
    "repro.experiments.backends.SerialBackend.run",
    "repro.experiments.backends.ProcessPoolBackend.run",
    "repro.experiments.backends.ShardedBackend.run",
    "repro.experiments.backends.merge_shards",
)
WORKER_ENTRY_QUALNAMES = (
    "repro.experiments.backends._execute_trial",
    "repro.experiments.backends.run_shard",
    "repro.experiments.backends.run_chunk",
    "repro.experiments.backends._run_stream_worker",
)

_RNG_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "random.Random",
}

_ENV_ACCESSORS = {
    "repro.utils.env.env_str",
    "repro.utils.env.env_flag",
    "repro.utils.env.env_float",
}

_HOOK_REGISTRARS = {"register_activate_hook", "register_command_hook"}
_DETACH_CALLS = {"close", "detach", "__exit__"}

_MUTATOR_METHODS = {
    "append", "add", "update", "pop", "setdefault", "extend", "insert",
    "remove", "discard", "clear", "popitem", "appendleft", "extendleft",
}

# Module-level containers built by factory call or literal — same shape
# REP007 polices per file, here raced across the process boundary.
_MUTABLE_FACTORIES = {
    "dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque",
}


# ---------------------------------------------------------------------- #
# shared analyses (memoized on the index)
# ---------------------------------------------------------------------- #

def _pragma_entries(index: ProjectIndex, kind: str) -> list[str]:
    marked = []
    for qual in sorted(index.functions):
        fn = index.functions[qual]
        if fn.is_module_body:
            continue
        line = fn.ctx.line_text(fn.node)
        match = _FLOW_ENTRY.search(line)
        if match and match.group(1) == kind:
            marked.append(qual)
    return marked


def _is_scenario_entry(fn: FunctionInfo) -> bool:
    return any(
        deco == "scenario" or deco.endswith(".scenario")
        for deco in fn.decorators
    )


def _flow(index: ProjectIndex) -> dict:
    """Entry sets + reachability partitions, computed once per index."""
    cached = index.facts_cache.get("flow")
    if cached is not None:
        return cached
    scenario_entries = sorted(
        set(
            qual for qual in sorted(index.functions)
            if _is_scenario_entry(index.functions[qual])
        )
        | set(_pragma_entries(index, "scenario"))
    )
    worker_entries = sorted(
        {q for q in WORKER_ENTRY_QUALNAMES if q in index.functions}
        | set(_pragma_entries(index, "worker"))
        | set(scenario_entries)  # trial bodies execute inside workers
    )
    coordinator_entries = sorted(
        {q for q in COORDINATOR_ENTRY_QUALNAMES if q in index.functions}
        | set(_pragma_entries(index, "coordinator"))
    )
    data = {
        "scenario_entries": scenario_entries,
        "worker_entries": worker_entries,
        "coordinator_entries": coordinator_entries,
        "scenario_reachable": reachable(index.callees, scenario_entries),
        "worker_reachable": reachable(index.callees, worker_entries),
        "coordinator_reachable": reachable(
            index.callees, coordinator_entries
        ),
    }
    index.facts_cache["flow"] = data
    return data


def entry_summary(index: ProjectIndex) -> dict:
    """Deterministic entry/reachability counts for ``--stats`` and JSON."""
    flow = _flow(index)
    return {
        "scenario_entries": len(flow["scenario_entries"]),
        "worker_entries": len(flow["worker_entries"]),
        "coordinator_entries": len(flow["coordinator_entries"]),
        "scenario_reachable": len(flow["scenario_reachable"]),
        "worker_reachable": len(flow["worker_reachable"]),
        "coordinator_reachable": len(flow["coordinator_reachable"]),
    }


def _env_reads(index: ProjectIndex) -> dict[str, list[tuple[str, ast.Call]]]:
    """env var literal → [(function qualname, call node)], sorted."""
    cached = index.facts_cache.get("env_reads")
    if cached is not None:
        return cached
    reads: dict[str, list[tuple[str, ast.Call]]] = {}
    for qual in sorted(index.functions):
        fn = index.functions[qual]
        for node in fn.scope():
            if not isinstance(node, ast.Call):
                continue
            dotted = fn.ctx.qualname(node.func)
            if dotted not in _ENV_ACCESSORS:
                continue
            name_arg = node.args[0] if node.args else None
            if name_arg is None:
                for kw in node.keywords:
                    if kw.arg == "name":
                        name_arg = kw.value
            if isinstance(name_arg, ast.Constant) and isinstance(
                name_arg.value, str
            ):
                reads.setdefault(name_arg.value, []).append((qual, node))
    index.facts_cache["env_reads"] = reads
    return reads


def _hook_classes(index: ProjectIndex) -> set[str]:
    """Classes that attach controller hooks, closed over subclasses."""
    cached = index.facts_cache.get("hook_classes")
    if cached is not None:
        return cached
    hooked: set[str] = set()
    for cqual in sorted(index.classes):
        info = index.classes[cqual]
        for method_qual in sorted(info.methods.values()):
            method = index.functions[method_qual]
            for node in method.scope():
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _HOOK_REGISTRARS
                ):
                    hooked.add(cqual)
                    break
            if cqual in hooked:
                break
    changed = True
    while changed:
        changed = False
        for cqual in sorted(index.classes):
            if cqual in hooked:
                continue
            if any(b in hooked for b in index.classes[cqual].bases):
                hooked.add(cqual)
                changed = True
    index.facts_cache["hook_classes"] = hooked
    return hooked


def _param_derived(index: ProjectIndex, fn: FunctionInfo) -> set[str]:
    cache = index.facts_cache.setdefault("param_derived", {})
    found = cache.get(fn.qualname)
    if found is None:
        found = param_derived_names(fn.node)
        cache[fn.qualname] = found
    return found


# ---------------------------------------------------------------------- #
# REP101 — seed provenance
# ---------------------------------------------------------------------- #

@rule(
    "REP101",
    name="seed-provenance",
    summary="RNG on a @scenario-reachable path constructed from a seed "
            "that does not derive from a parameter (flow)",
    hint="thread ctx.seed/ctx.rng (or a seed parameter) through the call "
         "chain; a helper must never reseed from a constant or ambient "
         "state — mark unavoidable dynamic boundaries with "
         "'# repro: flow-entry[scenario]'",
    rationale="trial results are only seed-reproducible if every RNG on "
              "the trial path flows from TrialContext; REP008 checks the "
              "trial body, this closes the transitive helpers",
    exempt=("nn/seeding.py",),
    flow=True,
)
def check_seed_provenance(index: ProjectIndex):
    flow = _flow(index)
    reach = flow["scenario_reachable"]
    for qual in sorted(reach):
        fn = index.functions.get(qual)
        if fn is None or fn.is_module_body:
            continue
        for node in fn.scope():
            if not isinstance(node, ast.Call):
                continue
            dotted = fn.ctx.qualname(node.func)
            if dotted not in _RNG_CONSTRUCTORS:
                continue
            seed_arg = node.args[0] if node.args else None
            if seed_arg is None:
                for kw in node.keywords:
                    if kw.arg == "seed":
                        seed_arg = kw.value
            short = dotted.rsplit(".", 1)[1]
            if seed_arg is None:
                yield fn.ctx, node, (
                    f"{short}() without a seed inside {fn.qualname} — the "
                    "function is reachable from @scenario trial bodies, so "
                    "fresh entropy here breaks seed-reproducibility of "
                    "every trial that calls it"
                )
                continue
            if not (expr_names(seed_arg) & _param_derived(index, fn)):
                yield fn.ctx, node, (
                    f"{short}(...) in {fn.qualname} is seeded from a "
                    "constant/ambient value, not from a parameter — "
                    "reachable from @scenario trial bodies, this reseeds "
                    "mid-trial and decouples results from ctx.seed"
                )


# ---------------------------------------------------------------------- #
# REP102 — env flow
# ---------------------------------------------------------------------- #

@rule(
    "REP102",
    name="env-flow",
    summary="env value re-read downstream of a caller that already read "
            "it, or worker-bound env= built from os.environ (flow)",
    hint="read an env variable once at the boundary and thread the value "
         "through parameters; worker envs must be explicit coordinator "
         "extras (WorkerSpec.env), never derived from os.environ",
    rationale="PR 7's worker-env contract: a worker observes only the "
              "extras the coordinator ships, so a downstream re-read can "
              "silently disagree with the value the caller acted on",
    exempt=("utils/env.py", "experiments/transport.py"),
    flow=True,
)
def check_env_flow(index: ProjectIndex):
    reads = _env_reads(index)
    reach_cache: dict[str, set[str]] = {}

    def reach_of(qual: str) -> set[str]:
        found = reach_cache.get(qual)
        if found is None:
            found = reachable(index.callees, index.callees.get(qual, ()))
            reach_cache[qual] = found
        return found

    for var in sorted(reads):
        sites = reads[var]
        if len(sites) < 2:
            continue
        readers = sorted({qual for qual, _ in sites})
        for down_qual, node in sites:
            upstream = sorted(
                up for up in readers
                if up != down_qual and down_qual in reach_of(up)
            )
            if upstream:
                fn = index.functions[down_qual]
                yield fn.ctx, node, (
                    f"env var {var!r} is re-read in {down_qual}, but "
                    f"caller-side {upstream[0]} already reads it — thread "
                    "the value through parameters so coordinator and "
                    "worker act on the same observation"
                )
    for qual in sorted(index.functions):
        fn = index.functions[qual]
        locals_map: dict[str, ast.AST] = {}
        for node in fn.scope():
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                locals_map[node.targets[0].id] = node.value
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg != "env":
                    continue
                value = kw.value
                if isinstance(value, ast.Name):
                    value = locals_map.get(value.id, value)
                if _mentions_os_environ(fn, value):
                    yield fn.ctx, node, (
                        "worker-bound env= is built from os.environ — the "
                        "transport contract ships workers explicit "
                        "coordinator extras only, so the full environment "
                        "must never leak across the process boundary"
                    )


def _mentions_os_environ(fn: FunctionInfo, expr: ast.AST) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, (ast.Attribute, ast.Name)):
            if fn.ctx.qualname(node) == "os.environ":
                return True
    return False


# ---------------------------------------------------------------------- #
# REP103 — fork-safety race
# ---------------------------------------------------------------------- #

@rule(
    "REP103",
    name="fork-race",
    summary="module-level mutable state written on a coordinator path "
            "and read on a chunk-worker path (flow)",
    hint="chunk workers re-import modules in a fresh interpreter and "
         "never observe coordinator-side mutations — thread the state "
         "through TrialContext/params, or make the worker path compute "
         "it itself",
    rationale="the sharded scheduler's exactly-once/byte-identity "
              "guarantees assume worker behaviour is a pure function of "
              "the shipped spec; REP007 flags the per-file shape, this "
              "proves an actual coordinator-write/worker-read race",
    flow=True,
)
def check_fork_race(index: ProjectIndex):
    flow = _flow(index)
    coordinator_only = (
        flow["coordinator_reachable"] - flow["worker_reachable"]
    )
    worker_side = flow["worker_reachable"]
    writes: dict[str, list[tuple[str, ast.AST]]] = {}
    reads: dict[str, list[str]] = {}
    for qual in sorted(index.functions):
        fn = index.functions[qual]
        if fn.is_module_body:
            continue  # import-time writes replay identically in workers
        fn_writes, fn_reads = _global_accesses(index, fn)
        for key, node in fn_writes:
            writes.setdefault(key, []).append((qual, node))
        for key in fn_reads:
            reads.setdefault(key, []).append(qual)
    for key in sorted(writes):
        worker_readers = sorted(
            q for q in reads.get(key, []) if q in worker_side
        )
        if not worker_readers:
            continue
        for qual, node in writes[key]:
            if qual in coordinator_only:
                fn = index.functions[qual]
                yield fn.ctx, node, (
                    f"coordinator-side {qual} mutates module state "
                    f"{key!r} that worker-side {worker_readers[0]} reads "
                    "— forked/spawned chunk workers never see this write, "
                    "so coordinator and workers silently diverge"
                )


def _module_mutables(index: ProjectIndex, module: str) -> dict[str, ast.stmt]:
    """Module-level names bound to mutable containers (any casing)."""
    mod = index.modules[module]
    mutables: dict[str, ast.stmt] = {}
    for name, stmt in mod.assigns.items():
        value = stmt.value if hasattr(stmt, "value") else None
        if value is not None and _is_mutable_value(value):
            mutables[name] = stmt
    return mutables


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None
        )
        return name in _MUTABLE_FACTORIES
    return False


def _global_accesses(
    index: ProjectIndex, fn: FunctionInfo
) -> tuple[list[tuple[str, ast.AST]], set[str]]:
    """(writes, reads) of module-level mutable globals from one function.

    Keys are ``module.name``.  Same-module access by bare name plus
    cross-module access through a resolvable ``pkg.mod.NAME`` attribute
    chain; names shadowed by a local binding are skipped.
    """
    own_mutables = _module_mutables(index, fn.module)
    args = fn.node.args
    local_bound = {a.arg for a in args.posonlyargs + args.args
                   + args.kwonlyargs}
    if args.vararg is not None:
        local_bound.add(args.vararg.arg)
    if args.kwarg is not None:
        local_bound.add(args.kwarg.arg)
    global_decls: set[str] = set()
    for node in fn.scope():
        if isinstance(node, ast.Global):
            global_decls.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            local_bound.add(node.id)
    local_bound -= global_decls

    def key_for_name(name: str) -> str | None:
        if name in own_mutables and name not in local_bound:
            return f"{fn.module}.{name}"
        return None

    def key_for_expr(expr: ast.AST) -> str | None:
        if isinstance(expr, ast.Name):
            return key_for_name(expr.id)
        if isinstance(expr, ast.Attribute):
            dotted = fn.ctx.qualname(expr)
            if dotted is None:
                return None
            head, _, name = dotted.rpartition(".")
            if head in index.modules and name in _module_mutables(
                index, head
            ):
                return f"{head}.{name}"
        return None

    writes: list[tuple[str, ast.AST]] = []
    write_bases: set[int] = set()
    reads: set[str] = set()
    for node in fn.scope():
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id in global_decls:
                    key = (
                        f"{fn.module}.{target.id}"
                        if target.id in own_mutables else None
                    )
                    if key:
                        writes.append((key, node))
                elif isinstance(target, ast.Subscript):
                    key = key_for_expr(target.value)
                    if key:
                        writes.append((key, node))
                        write_bases.add(id(target.value))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    key = key_for_expr(target.value)
                    if key:
                        writes.append((key, node))
                        write_bases.add(id(target.value))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
        ):
            key = key_for_expr(node.func.value)
            if key:
                writes.append((key, node))
                write_bases.add(id(node.func.value))
    for node in fn.scope():
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if id(node) in write_bases:
                continue
            key = key_for_name(node.id)
            if key:
                reads.add(key)
        elif isinstance(node, ast.Attribute) and id(node) not in write_bases:
            key = key_for_expr(node)
            if key and isinstance(node.ctx, ast.Load):
                reads.add(key)
    return writes, reads


# ---------------------------------------------------------------------- #
# REP104 — unchecked hook flow
# ---------------------------------------------------------------------- #

@rule(
    "REP104",
    name="unchecked-hook-flow",
    summary="hook-attaching object dropped without close()/detach on "
            "every return path (flow)",
    hint="use the object as a context manager, call close() in a "
         "finally, or hand ownership off (return / store / pass it on); "
         "REP004 guarantees the class has a detach path — this checks "
         "every construction site actually reaches it",
    rationale="the PR 6 Shadow leak, interprocedurally: a leaked hook "
              "keeps receiving every later controller command, skewing "
              "defense accounting for the rest of the process",
    flow=True,
)
def check_unchecked_hook_flow(index: ProjectIndex):
    hooked = _hook_classes(index)
    if not hooked:
        return
    for qual in sorted(index.functions):
        fn = index.functions[qual]
        if fn.is_module_body:
            continue  # module-lifetime hooks are deliberate singletons
        creations: list[tuple[str, ast.Assign, str]] = []
        for node in fn.scope():
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                cqual = index.class_of_call(fn, node.value)
                if cqual in hooked:
                    creations.append((node.targets[0].id, node, cqual))
        for name, assign, cqual in creations:
            finding = _hook_disposition(fn, name, assign)
            if finding is not None:
                cls_name = cqual.rsplit(".", 1)[1]
                yield fn.ctx, assign, (
                    f"{cls_name} instance {name!r} in {fn.qualname} "
                    f"{finding} — the controller keeps replaying commands "
                    "into the leaked hook"
                )


def _hook_disposition(
    fn: FunctionInfo, name: str, assign: ast.Assign
) -> str | None:
    """None when the hook object is safely handled, else the defect."""
    close_calls: list[ast.Call] = []
    for node in fn.scope():
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if (
                    isinstance(item.context_expr, ast.Name)
                    and item.context_expr.id == name
                ):
                    return None  # with-managed: __exit__ on every path
        elif isinstance(node, ast.Return) and node.value is not None:
            if name in expr_names(node.value):
                return None  # ownership transferred to the caller
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None and name in expr_names(node.value):
                return None
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            if node is assign:
                continue
            value = node.value
            if value is not None and name in expr_names(value):
                return None  # stored (self.x = h, d[k] = h, alias = h)
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                if node.func.attr in _DETACH_CALLS:
                    close_calls.append(node)
                continue
            operands = list(node.args) + [kw.value for kw in node.keywords]
            if any(name in expr_names(arg) for arg in operands):
                return None  # handed to another function
    if not close_calls:
        return "is never detached (no close()/detach on any path)"
    close = close_calls[0]
    if _inside_finally(fn, close):
        return None
    early = [
        node for node in fn.scope()
        if isinstance(node, ast.Return)
        and assign.lineno < node.lineno < close.lineno
    ]
    if early:
        return (
            f"leaks on the early return at line {early[0].lineno} "
            f"(close() only runs at line {close.lineno})"
        )
    return None


def _inside_finally(fn: FunctionInfo, node: ast.AST) -> bool:
    previous: ast.AST = node
    current = fn.ctx.parent(node)
    while current is not None:
        if isinstance(current, ast.Try) and any(
            previous is stmt for stmt in current.finalbody
        ):
            return True
        previous = current
        current = fn.ctx.parent(current)
    return False


# ---------------------------------------------------------------------- #
# graph debugging (`repro lint graph <qualname>`)
# ---------------------------------------------------------------------- #

def function_facts(index: ProjectIndex, qualname: str) -> list[str]:
    """Human-readable taint facts for one symbol, sorted."""
    fn = index.functions.get(qualname)
    if fn is None:
        return []
    flow = _flow(index)
    facts: list[str] = []
    for kind in ("scenario", "worker", "coordinator"):
        if qualname in flow[f"{kind}_entries"]:
            facts.append(f"{kind}-entry")
        if qualname in flow[f"{kind}_reachable"]:
            facts.append(f"{kind}-reachable")
    for var in sorted(_env_reads(index)):
        if any(q == qualname for q, _ in _env_reads(index)[var]):
            facts.append(f"reads-env:{var}")
    if not fn.is_module_body:
        for node in fn.scope():
            if isinstance(node, ast.Call):
                dotted = fn.ctx.qualname(node.func)
                if dotted in _RNG_CONSTRUCTORS:
                    facts.append("constructs-rng")
                    break
        writes, reads = _global_accesses(index, fn)
        for key in sorted({k for k, _ in writes}):
            facts.append(f"writes-global:{key}")
        for key in sorted(reads):
            facts.append(f"reads-global:{key}")
        hooked = _hook_classes(index)
        for node in fn.scope():
            if isinstance(node, ast.Call):
                cqual = index.class_of_call(fn, node)
                if cqual in hooked:
                    facts.append("instantiates-hook-class")
                    break
    return sorted(set(facts))
