"""Rendering for ``repro lint``: text diagnostics, stats tables, JSON.

Output is deliberately boring and stable: findings print as
``path:line:col: REP### message`` with an indented fix hint, sorted by
location, so diffs of lint output are meaningful and editors/CI annotate
them directly.  The JSON payload shape is pinned by
``tests/analysis/test_lint_engine.py`` — the future run-database service
(ROADMAP) ingests it, so schema changes must bump ``version``.
"""

from __future__ import annotations

import json

from repro.analysis.lint.engine import LintReport
from repro.analysis.lint.registry import iter_rules
from repro.utils.tabulate import format_table

__all__ = ["format_findings", "format_stats", "format_rules", "to_json_text"]


def format_findings(report: LintReport) -> str:
    """The classic compiler-style diagnostic listing plus a tally line."""
    lines = [finding.format_text() for finding in report.findings]
    for error in report.parse_errors:
        lines.append(f"error: cannot analyze {error}")
    tally = (
        f"{len(report.findings)} finding(s) in {report.files_checked} "
        f"file(s)"
    )
    extras = []
    if report.suppressed:
        extras.append(f"{report.suppressed} suppressed by pragma")
    if report.baselined:
        extras.append(f"{report.baselined} baselined")
    if extras:
        tally += f" ({', '.join(extras)})"
    lines.append(tally)
    return "\n".join(lines)


def format_stats(report: LintReport) -> str:
    """``--stats``: findings per rule and per package, as tables."""
    stats = report.stats()
    rule_rows = [
        [rule_id, str(count)]
        for rule_id, count in stats["by_rule"].items()
    ] or [["-", "0"]]
    package_rows = [
        [package, str(count)]
        for package, count in stats["by_package"].items()
    ] or [["-", "0"]]
    sections = [
        format_table(["rule", "findings"], rule_rows,
                     title="findings per rule"),
        format_table(["package", "findings"], package_rows,
                     title="findings per package"),
        (
            f"total: {stats['total']}  suppressed: {stats['suppressed']}  "
            f"baselined: {stats['baselined']}  "
            f"files: {stats['files_checked']}"
        ),
    ]
    return "\n\n".join(sections)


def format_rules() -> str:
    """``--list-rules``: the registered rule catalogue."""
    rows = [
        [spec.id, spec.name, spec.summary]
        for spec in iter_rules()
    ]
    return format_table(["id", "name", "checks for"], rows,
                        title="repro lint rules")


def to_json_text(report: LintReport) -> str:
    return json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n"
