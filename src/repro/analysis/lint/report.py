"""Rendering for ``repro lint``: text diagnostics, stats tables, JSON.

Output is deliberately boring and stable: findings print as
``path:line:col: REP### message`` with an indented fix hint, sorted by
location, so diffs of lint output are meaningful and editors/CI annotate
them directly.  The JSON payload shape is pinned by
``tests/analysis/test_lint_engine.py`` — the future run-database service
(ROADMAP) ingests it, so schema changes must bump ``version``.
"""

from __future__ import annotations

import json

from repro.analysis.lint.engine import LintReport
from repro.analysis.lint.registry import iter_rules
from repro.utils.tabulate import format_table

__all__ = [
    "format_findings",
    "format_stats",
    "format_rules",
    "format_graph",
    "format_dead_suppressions",
    "to_json_text",
]


def format_findings(report: LintReport) -> str:
    """The classic compiler-style diagnostic listing plus a tally line."""
    lines = [finding.format_text() for finding in report.findings]
    for error in report.parse_errors:
        lines.append(f"error: cannot analyze {error}")
    tally = (
        f"{len(report.findings)} finding(s) in {report.files_checked} "
        f"file(s)"
    )
    extras = []
    if report.suppressed:
        extras.append(f"{report.suppressed} suppressed by pragma")
    if report.baselined:
        extras.append(f"{report.baselined} baselined")
    if extras:
        tally += f" ({', '.join(extras)})"
    lines.append(tally)
    return "\n".join(lines)


def format_stats(report: LintReport) -> str:
    """``--stats``: findings per rule and per package, as tables."""
    stats = report.stats()
    rule_rows = [
        [rule_id, str(count)]
        for rule_id, count in stats["by_rule"].items()
    ] or [["-", "0"]]
    package_rows = [
        [package, str(count)]
        for package, count in stats["by_package"].items()
    ] or [["-", "0"]]
    sections = [
        format_table(["rule", "findings"], rule_rows,
                     title="findings per rule"),
        format_table(["package", "findings"], package_rows,
                     title="findings per package"),
    ]
    if report.graph is not None:
        graph_rows = [
            [key, str(report.graph[key])]
            for key in ("modules", "functions", "call_edges",
                        "external_calls", "unresolved_calls")
        ]
        for key, count in report.graph.get("entries", {}).items():
            graph_rows.append([key.replace("_", " "), str(count)])
        sections.append(
            format_table(["call graph", "count"], graph_rows,
                         title="flow analysis")
        )
    if report.dead_suppressions:
        sections.append(format_dead_suppressions(report))
    sections.append(
        f"total: {stats['total']}  suppressed: {stats['suppressed']}  "
        f"baselined: {stats['baselined']}  "
        f"files: {stats['files_checked']}  "
        f"dead suppressions: {stats['dead_suppressions']}"
    )
    return "\n\n".join(sections)


def format_dead_suppressions(report: LintReport) -> str:
    """Suppressions (pragma / baseline / exempt) that no longer fire."""
    rows = [
        [dead["kind"], dead["path"],
         str(dead["line"]) if dead["line"] else "-", dead["detail"]]
        for dead in report.dead_suppressions
    ] or [["-", "-", "-", "none"]]
    return format_table(["kind", "path", "line", "detail"], rows,
                        title="dead suppressions")


def format_graph(index, qualname: str) -> str:
    """``repro lint graph <qualname>``: callers/callees/taint facts."""
    from repro.analysis.lint.flow_rules import function_facts

    fn = index.resolve_symbol(qualname)
    if fn is None:
        known = len(index.functions)
        raise KeyError(
            f"unknown symbol {qualname!r} "
            f"(index holds {known} functions; use a dotted qualname like "
            "repro.experiments.runner.run_scenario)"
        )
    lines = [
        f"{fn.qualname}  ({fn.relpath}:{fn.lineno})",
    ]
    callees = index.callees.get(fn.qualname, [])
    callers = index.callers.get(fn.qualname, [])
    external = index.external_calls.get(fn.qualname, [])
    unresolved = index.unresolved.get(fn.qualname, 0)
    lines.append(f"\ncallees ({len(callees)}):")
    lines.extend(f"  -> {target}" for target in callees)
    if not callees:
        lines.append("  (none)")
    lines.append(f"\ncallers ({len(callers)}):")
    lines.extend(f"  <- {source}" for source in callers)
    if not callers:
        lines.append("  (none)")
    if external:
        lines.append(f"\nexternal calls ({len(external)}):")
        lines.extend(f"  ~> {target}" for target in external)
    if unresolved:
        lines.append(f"\nunresolved dynamic calls: {unresolved}")
    facts = function_facts(index, fn.qualname)
    lines.append(f"\ntaint facts ({len(facts)}):")
    lines.extend(f"  * {fact}" for fact in facts)
    if not facts:
        lines.append("  (none)")
    return "\n".join(lines)


def format_rules() -> str:
    """``--list-rules``: the registered rule catalogue."""
    rows = [
        [spec.id, spec.name, spec.summary]
        for spec in iter_rules()
    ]
    return format_table(["id", "name", "checks for"], rows,
                        title="repro lint rules")


def to_json_text(report: LintReport) -> str:
    return json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n"
