"""Pass 1 of the whole-program analyzer: the project index.

``repro lint --flow`` runs in two passes.  This module is the first:
it digests every parsed :class:`repro.analysis.lint.engine.FileContext`
into a :class:`ProjectIndex` — per-module symbol tables (functions,
classes with resolved base chains, module-level assignments), import
resolution across modules (including re-exports through ``__init__``
packages), and a *conservative* call graph over every function def in
the scanned tree.

Conservatism is one-sided by design: an edge is only added when the
callee resolves statically (a local or module-level def, an imported
name, a ``self``/``cls`` method through the class MRO, or a method on a
local variable whose class was inferred from a straight-line
constructor assignment).  Dynamic dispatch — ``getattr`` calls, calls
through parameters, callables stored in containers — is
over-approximated to *no edge* and counted per function in
:attr:`ProjectIndex.unresolved`, which ``--stats`` reports so the blind
spot stays measured rather than silent.  The documented escape hatch
for entry points the graph cannot see is the
``# repro: flow-entry[...]`` pragma (see
:mod:`repro.analysis.lint.flow_rules`).

Module bodies are indexed as pseudo-functions (``pkg.mod.<module>``) so
import-time calls participate in reachability, but they are excluded
from the "every function def has a node" guarantee and from the
function count in ``--stats``.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.analysis.lint.engine import FileContext

__all__ = [
    "module_name",
    "iter_scope",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "CallSite",
    "ProjectIndex",
]

MODULE_BODY = "<module>"

# Resolution kinds a call site can land on.
PROJECT = "project"       # a function def in the scanned tree
CLASS = "class"           # instantiation of a scanned class
EXTERNAL = "external"     # resolved dotted name outside the project
UNRESOLVED = "unresolved"  # dynamic dispatch: no edge, counted


def module_name(relpath: str) -> str:
    """Dotted module name for a repo-relative posix path.

    ``src/repro/experiments/runner.py`` → ``repro.experiments.runner``;
    a package ``__init__.py`` names the package itself.  Trees scanned
    from other roots (fixtures, tmp dirs) drop only a leading ``src``.
    """
    parts = relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<root>"


def iter_scope(body: Iterable[ast.stmt]) -> Iterator[ast.AST]:
    """Preorder walk of one scope, not descending into nested defs/classes.

    The nested ``def``/``class`` *statements* themselves are yielded (so
    a collector can register them) but their bodies belong to their own
    scope.  Lambdas stay in the enclosing scope: they share its locals
    and are never call-graph nodes of their own.
    """
    stack = list(body)[::-1]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(list(ast.iter_child_nodes(node))[::-1])


@dataclass
class FunctionInfo:
    """One call-graph node: a function/method def, or a module body."""

    qualname: str
    module: str
    relpath: str
    node: ast.AST  # FunctionDef/AsyncFunctionDef, or ast.Module for bodies
    ctx: FileContext
    class_qualname: str | None = None  # owning class for methods
    parent: str | None = None  # enclosing function qualname (nested defs)
    decorators: tuple[str, ...] = ()  # resolved decorator names
    is_module_body: bool = False
    nested: dict[str, str] = field(default_factory=dict)  # name -> qualname

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[1]

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)

    def body(self) -> list[ast.stmt]:
        return self.node.body

    def scope(self) -> Iterator[ast.AST]:
        """All nodes belonging to this function's own scope."""
        return iter_scope(self.body())


@dataclass
class ClassInfo:
    """A scanned class: direct methods plus resolved project bases."""

    qualname: str
    module: str
    node: ast.ClassDef
    ctx: FileContext
    methods: dict[str, str] = field(default_factory=dict)
    bases: tuple[str, ...] = ()  # project base class qualnames (resolved)


@dataclass
class ModuleInfo:
    """Per-module symbol table."""

    name: str
    relpath: str
    ctx: FileContext
    body_qualname: str = ""
    functions: dict[str, str] = field(default_factory=dict)  # top-level name -> qualname
    classes: dict[str, str] = field(default_factory=dict)  # top-level name -> class qualname
    assigns: dict[str, ast.stmt] = field(default_factory=dict)  # module-level name -> stmt


@dataclass
class CallSite:
    """One resolved-or-not call expression inside a function scope."""

    caller: str
    kind: str  # PROJECT / CLASS / EXTERNAL / UNRESOLVED
    target: str | None
    node: ast.Call


class ProjectIndex:
    """The whole-program index: symbols, imports, call graph."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.callees: dict[str, list[str]] = {}
        self.callers: dict[str, list[str]] = {}
        self.external_calls: dict[str, list[str]] = {}
        self.unresolved: dict[str, int] = {}
        self.call_sites: list[CallSite] = []
        self.facts_cache: dict = {}  # flow_rules memoizes analyses here
        self._local_types: dict[str, dict[str, str]] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(cls, contexts: Iterable[FileContext]) -> "ProjectIndex":
        index = cls()
        ordered = sorted(contexts, key=lambda c: c.relpath)
        for ctx in ordered:
            index._collect_module(ctx)
        index._resolve_class_bases()
        for qualname in sorted(index.functions):
            index._collect_edges(index.functions[qualname])
        for qualname, targets in index.callees.items():
            index.callees[qualname] = sorted(set(targets))
        for qualname, targets in index.external_calls.items():
            index.external_calls[qualname] = sorted(set(targets))
        index.callers = _invert(index.callees)
        return index

    def _collect_module(self, ctx: FileContext) -> None:
        mod_name = module_name(ctx.relpath)
        if mod_name in self.modules:
            # Two roots mapping onto one dotted name (e.g. scanning both
            # a tree and a copy): keep the first, the rest stay visible
            # through their own file contexts only.
            return
        mod = ModuleInfo(name=mod_name, relpath=ctx.relpath, ctx=ctx)
        self.modules[mod_name] = mod
        body_qual = self._unique_function(f"{mod_name}.{MODULE_BODY}")
        mod.body_qualname = body_qual
        self.functions[body_qual] = FunctionInfo(
            qualname=body_qual, module=mod_name, relpath=ctx.relpath,
            node=ctx.tree, ctx=ctx, is_module_body=True,
        )
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        mod.assigns.setdefault(target.id, stmt)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    mod.assigns.setdefault(stmt.target.id, stmt)
        self._collect_scope(mod, ctx, ctx.tree.body, prefix=mod_name,
                            class_qual=None, owner=body_qual, top_level=True)

    def _collect_scope(
        self,
        mod: ModuleInfo,
        ctx: FileContext,
        body: list[ast.stmt],
        *,
        prefix: str,
        class_qual: str | None,
        owner: str,
        top_level: bool,
    ) -> None:
        for node in iter_scope(body):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = self._unique_function(f"{prefix}.{node.name}")
                owner_fn = self.functions[owner]
                info = FunctionInfo(
                    qualname=qual, module=mod.name, relpath=ctx.relpath,
                    node=node, ctx=ctx, class_qualname=class_qual,
                    parent=None if owner_fn.is_module_body else owner,
                    decorators=_decorator_names(node, ctx),
                )
                self.functions[qual] = info
                if class_qual is not None:
                    cls_info = self.classes[class_qual]
                    cls_info.methods.setdefault(node.name, qual)
                elif top_level:
                    mod.functions.setdefault(node.name, qual)
                else:
                    # Nested def: callable by name from the enclosing
                    # function; record a defines-edge so its body stays
                    # reachable even when only passed as a callback.
                    owner_fn.nested.setdefault(node.name, qual)
                    self.callees.setdefault(owner, []).append(qual)
                self._collect_scope(
                    mod, ctx, node.body, prefix=qual, class_qual=None,
                    owner=qual, top_level=False,
                )
            elif isinstance(node, ast.ClassDef):
                cqual = self._unique_class(f"{prefix}.{node.name}")
                self.classes[cqual] = ClassInfo(
                    qualname=cqual, module=mod.name, node=node, ctx=ctx,
                )
                if top_level:
                    mod.classes.setdefault(node.name, cqual)
                self._collect_scope(
                    mod, ctx, node.body, prefix=cqual, class_qual=cqual,
                    owner=owner, top_level=False,
                )

    def _unique_function(self, qual: str) -> str:
        return _unique_key(self.functions, qual)

    def _unique_class(self, qual: str) -> str:
        return _unique_key(self.classes, qual)

    def _resolve_class_bases(self) -> None:
        for cqual in sorted(self.classes):
            info = self.classes[cqual]
            resolved = []
            for base in info.node.bases:
                target = self._resolve_class_expr(info.ctx, info.module, base)
                if target is not None:
                    resolved.append(target)
            info.bases = tuple(resolved)

    def _resolve_class_expr(
        self, ctx: FileContext, module: str, expr: ast.AST
    ) -> str | None:
        """A base-class (or constructor-name) expression → class qualname."""
        if isinstance(expr, ast.Name):
            mod = self.modules[module]
            if expr.id in mod.classes:
                return mod.classes[expr.id]
            dotted = ctx.imports.get(expr.id)
            if dotted is not None:
                kind, target = self._resolve_dotted(dotted)
                if kind == CLASS:
                    return target
            return None
        if isinstance(expr, ast.Attribute):
            dotted = ctx.qualname(expr)
            if dotted is not None:
                kind, target = self._resolve_dotted(dotted)
                if kind == CLASS:
                    return target
        return None

    # ------------------------------------------------------------------ #
    # resolution
    # ------------------------------------------------------------------ #

    def _resolve_dotted(self, dotted: str, depth: int = 0) -> tuple[str, str | None]:
        """A dotted import-qualified name → (kind, target)."""
        if depth > 8:
            return EXTERNAL, dotted
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            mod = self.modules.get(".".join(parts[:i]))
            if mod is not None:
                return self._resolve_in_module(mod, parts[i:], depth)
        return EXTERNAL, dotted

    def _resolve_in_module(
        self, mod: ModuleInfo, rest: list[str], depth: int
    ) -> tuple[str, str | None]:
        head = rest[0]
        if len(rest) == 1:
            if head in mod.functions:
                return PROJECT, mod.functions[head]
            if head in mod.classes:
                return CLASS, mod.classes[head]
            if head in mod.ctx.imports:  # re-export chain
                return self._resolve_dotted(mod.ctx.imports[head], depth + 1)
            return UNRESOLVED, None
        if head in mod.classes and len(rest) == 2:
            target = self.method_lookup(mod.classes[head], rest[1])
            if target is not None:
                return PROJECT, target
            return UNRESOLVED, None
        if head in mod.ctx.imports:
            tail = ".".join([mod.ctx.imports[head]] + rest[1:])
            return self._resolve_dotted(tail, depth + 1)
        return UNRESOLVED, None

    def method_lookup(self, class_qual: str, name: str,
                      _seen: frozenset = frozenset()) -> str | None:
        """Resolve a method through the class and its project bases."""
        if class_qual in _seen:
            return None
        info = self.classes.get(class_qual)
        if info is None:
            return None
        if name in info.methods:
            return info.methods[name]
        for base in info.bases:
            found = self.method_lookup(base, name, _seen | {class_qual})
            if found is not None:
                return found
        return None

    def local_class_types(self, fn: FunctionInfo) -> dict[str, str]:
        """Local name → class qualname, from straight-line constructors.

        ``x = TimingChecker(...)`` (or ``with CommandTrace(...) as x:``)
        types ``x`` for method resolution and hook-flow analysis; any
        fancier flow leaves the variable untyped (no edge, counted).
        """
        cached = self._local_types.get(fn.qualname)
        if cached is not None:
            return cached
        types: dict[str, str] = {}
        if not fn.is_module_body:
            for node in fn.scope():
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    cqual = self.class_of_call(fn, node.value)
                    if cqual is not None:
                        types[node.targets[0].id] = cqual
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        if isinstance(item.optional_vars, ast.Name):
                            cqual = self.class_of_call(fn, item.context_expr)
                            if cqual is not None:
                                types[item.optional_vars.id] = cqual
        self._local_types[fn.qualname] = types
        return types

    def class_of_call(self, fn: FunctionInfo, expr: ast.AST) -> str | None:
        """The project class an expression instantiates, if resolvable."""
        if not isinstance(expr, ast.Call):
            return None
        return self._resolve_class_expr(fn.ctx, fn.module, expr.func)

    def resolve_call(self, fn: FunctionInfo, call: ast.Call) -> tuple[str, str | None]:
        """Resolve one call site to (kind, target qualname)."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            walker: FunctionInfo | None = fn
            while walker is not None:
                if name in walker.nested:
                    return PROJECT, walker.nested[name]
                walker = (
                    self.functions.get(walker.parent)
                    if walker.parent is not None else None
                )
            mod = self.modules[fn.module]
            if name in mod.functions:
                return PROJECT, mod.functions[name]
            if name in mod.classes:
                return CLASS, mod.classes[name]
            dotted = fn.ctx.imports.get(name)
            if dotted is not None:
                return self._resolve_dotted(dotted)
            if hasattr(builtins, name):
                return EXTERNAL, f"builtins.{name}"
            return UNRESOLVED, None
        if isinstance(func, ast.Attribute):
            dotted = fn.ctx.qualname(func)
            if dotted is not None:
                return self._resolve_dotted(dotted)
            if isinstance(func.value, ast.Name):
                receiver = func.value.id
                class_qual: str | None = None
                if fn.class_qualname is not None and not fn.is_module_body:
                    args = fn.node.args
                    first = args.posonlyargs + args.args
                    if first and receiver == first[0].arg:
                        class_qual = fn.class_qualname
                if class_qual is None:
                    class_qual = self.local_class_types(fn).get(receiver)
                if class_qual is not None:
                    target = self.method_lookup(class_qual, func.attr)
                    if target is not None:
                        return PROJECT, target
            return UNRESOLVED, None
        return UNRESOLVED, None

    # ------------------------------------------------------------------ #
    # edges
    # ------------------------------------------------------------------ #

    def _collect_edges(self, fn: FunctionInfo) -> None:
        scope = (
            iter_scope(fn.node.body) if not fn.is_module_body
            else iter_scope(fn.ctx.tree.body)
        )
        for node in scope:
            if not isinstance(node, ast.Call):
                continue
            kind, target = self.resolve_call(fn, node)
            if kind == CLASS and target is not None:
                init = self.method_lookup(target, "__init__")
                if init is not None:
                    self.callees.setdefault(fn.qualname, []).append(init)
            elif kind == PROJECT and target is not None:
                self.callees.setdefault(fn.qualname, []).append(target)
            elif kind == EXTERNAL and target is not None:
                self.external_calls.setdefault(fn.qualname, []).append(target)
            else:
                self.unresolved[fn.qualname] = (
                    self.unresolved.get(fn.qualname, 0) + 1
                )
            self.call_sites.append(
                CallSite(caller=fn.qualname, kind=kind, target=target,
                         node=node)
            )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def function_defs(self) -> list[FunctionInfo]:
        """Every real function def node (module bodies excluded)."""
        return [
            self.functions[q] for q in sorted(self.functions)
            if not self.functions[q].is_module_body
        ]

    def resolve_symbol(self, qualname: str) -> FunctionInfo | None:
        """Exact-qualname lookup with a re-export fallback.

        ``repro.experiments.run_scenario`` (the package re-export) finds
        ``repro.experiments.runner.run_scenario``.
        """
        found = self.functions.get(qualname)
        if found is not None:
            return found
        kind, target = self._resolve_dotted(qualname)
        if kind == PROJECT and target is not None:
            return self.functions.get(target)
        if kind == CLASS and target is not None:
            init = self.method_lookup(target, "__init__")
            if init is not None:
                return self.functions.get(init)
        return None

    def summary(self) -> dict:
        """Deterministic ``--stats``/JSON payload for the graph pass."""
        return {
            "modules": len(self.modules),
            "functions": len(self.function_defs()),
            "call_edges": sum(len(v) for v in self.callees.values()),
            "external_calls": sum(
                len(v) for v in self.external_calls.values()
            ),
            "unresolved_calls": sum(self.unresolved.values()),
        }


def _unique_key(table: dict, qual: str) -> str:
    """Disambiguate qualname collisions (property setters, overloads)."""
    if qual not in table:
        return qual
    n = 2
    while f"{qual}@{n}" in table:
        n += 1
    return f"{qual}@{n}"


def _decorator_names(
    node: ast.FunctionDef | ast.AsyncFunctionDef, ctx: FileContext
) -> tuple[str, ...]:
    """Resolved (or bare) decorator names, for entry-point detection."""
    names: list[str] = []
    for deco in node.decorator_list:
        expr = deco.func if isinstance(deco, ast.Call) else deco
        dotted = ctx.qualname(expr)
        if dotted is not None:
            names.append(dotted)
        elif isinstance(expr, ast.Name):
            names.append(expr.id)
        elif isinstance(expr, ast.Attribute):
            names.append(expr.attr)
    return tuple(names)


def _invert(edges: dict[str, list[str]]) -> dict[str, list[str]]:
    inverted: dict[str, set[str]] = {}
    for src in sorted(edges):
        for dst in edges[src]:
            inverted.setdefault(dst, set()).add(src)
    return {dst: sorted(srcs) for dst, srcs in sorted(inverted.items())}
