"""The REP rule set: this repo's reproducibility invariants, as AST checks.

Each rule codifies a bug class this reproduction has already paid for at
runtime (the ``rationale`` fields name the PR that fixed it) or a
contract the artifact byte-identity CI jobs depend on.  Rules are pure
functions over a parsed :class:`repro.analysis.lint.engine.FileContext`
— no imports of the code under analysis, no execution.

Rule tour:

* REP001 — unseeded RNG outside the sanctioned fallback module.
* REP002 — wall-clock / unordered iteration inside serialization paths.
* REP003 — raw ``os.environ`` reads outside the env choke point.
* REP004 — hook-attaching classes without a detach path.
* REP005 — non-atomic writes outside ``atomic_write_text``.
* REP006 — float-reassociating contractions / unordered reductions.
* REP007 — fork-unsafe module-level mutable state.
* REP008 — scenario trial functions breaking the registry contract.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.lint.registry import rule

__all__ = []  # rules are consumed via the registry, not imported directly


# ---------------------------------------------------------------------- #
# REP001 — unseeded RNG
# ---------------------------------------------------------------------- #

# numpy's legacy global-state API: every call mutates hidden module
# state, so results depend on call order across the whole process.
_NUMPY_LEGACY_SAMPLERS = {
    "seed", "random", "ranf", "sample", "random_sample", "rand", "randn",
    "randint", "random_integers", "choice", "shuffle", "permutation",
    "bytes", "normal", "uniform", "standard_normal", "binomial", "poisson",
    "exponential", "geometric",
}

_STDLIB_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "seed", "getrandbits", "betavariate",
    "expovariate", "normalvariate", "triangular",
}


@rule(
    "REP001",
    name="unseeded-rng",
    summary="RNG constructed without an explicit seed, or legacy "
            "global-state numpy/stdlib random API",
    hint="thread a seeded np.random.Generator through (TrialContext.rng() "
         "in scenarios); the only sanctioned unseeded fallback is "
         "repro.nn.seeding.fallback_rng",
    rationale="PR 3 patched silent unseeded-RNG fallbacks in "
              "Conv2d/Linear/Dropout/VGG/ResNet (UnseededRngWarning)",
    exempt=("nn/seeding.py",),
)
def check_unseeded_rng(ctx):
    for node in ctx.walk(ast.Call):
        qual = ctx.qualname(node.func)
        if qual is None:
            continue
        if qual == "numpy.random.default_rng":
            has_seed = bool(node.args) or any(
                kw.arg == "seed" for kw in node.keywords
            )
            if not has_seed:
                yield node, (
                    "np.random.default_rng() without a seed draws fresh "
                    "OS entropy — trials stop being reproducible"
                )
        elif qual.startswith("numpy.random."):
            tail = qual.rsplit(".", 1)[1]
            if tail in _NUMPY_LEGACY_SAMPLERS:
                yield node, (
                    f"legacy global-state API np.random.{tail}() — results "
                    "depend on process-wide call order, not the trial seed"
                )
        elif qual == "random.Random":
            if not node.args and not node.keywords:
                yield node, (
                    "random.Random() without a seed draws fresh OS entropy"
                )
        elif qual.startswith("random."):
            tail = qual.rsplit(".", 1)[1]
            if tail in _STDLIB_RANDOM_FNS:
                yield node, (
                    f"stdlib random.{tail}() uses hidden global state — "
                    "results depend on process-wide call order, not the "
                    "trial seed"
                )


# ---------------------------------------------------------------------- #
# REP002 — wall-clock / unordered iteration in serialization paths
# ---------------------------------------------------------------------- #

_SERIAL_FN = re.compile(
    r"^(to_json|to_payload|to_dict|as_json|payload|summary|aggregates"
    r"|save|serialize\w*|write_\w+)$"
)

_WALLCLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "uuid.uuid1", "uuid.uuid4",
}


def _is_unordered_collection(node: ast.AST) -> bool:
    """Set literals / set() / frozenset() calls: iteration order varies."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


@rule(
    "REP002",
    name="wallclock-serialization",
    summary="wall-clock/uuid calls or unordered-set iteration inside a "
            "serialization function (to_json/save/write_*/summary/...)",
    hint="serialized artifacts must be byte-identical across "
         "serial/process/sharded/ssh backends — derive content from "
         "inputs only, and sorted() any set before iterating",
    rationale="PR 3 moved elapsed/jobs out of ScenarioResult.to_json so "
              "backend artifacts could be byte-compared in CI",
)
def check_wallclock_serialization(ctx):
    for node in ctx.walk(ast.Call):
        fn = ctx.enclosing_function(node)
        if fn is None or not _SERIAL_FN.match(fn.name):
            continue
        qual = ctx.qualname(node.func)
        if qual in _WALLCLOCK_CALLS:
            yield node, (
                f"{qual}() inside serialization path {fn.name}() — the "
                "output bytes change on every run"
            )
    for node in ctx.walk(ast.For):
        fn = ctx.enclosing_function(node)
        if fn is None or not _SERIAL_FN.match(fn.name):
            continue
        if _is_unordered_collection(node.iter):
            yield node.iter, (
                f"iterating an unordered set inside serialization path "
                f"{fn.name}() — element order varies across processes"
            )
    for node in ctx.walk(ast.ListComp, ast.SetComp, ast.DictComp,
                         ast.GeneratorExp):
        fn = ctx.enclosing_function(node)
        if fn is None or not _SERIAL_FN.match(fn.name):
            continue
        for generator in node.generators:
            if _is_unordered_collection(generator.iter):
                yield generator.iter, (
                    f"comprehension over an unordered set inside "
                    f"serialization path {fn.name}() — element order "
                    "varies across processes"
                )


# ---------------------------------------------------------------------- #
# REP003 — raw os.environ reads
# ---------------------------------------------------------------------- #

# Mutation (scoped overrides, worker-env construction, restore paths) is
# process-local and visible; only *reads* smuggle coordinator state into
# results.
_ENVIRON_MUTATORS = {"pop", "setdefault", "update", "clear"}


@rule(
    "REP003",
    name="raw-environ-read",
    summary="raw os.environ/os.getenv read outside the sanctioned "
            "accessor module",
    hint="read through repro.utils.env (env_str/env_flag/env_float) so the "
         "worker-env contract stays auditable; coordinator extras are the "
         "only env workers inherit",
    rationale="PR 7's transport layer ships workers an explicit env "
              "(never a full os.environ copy) — stray reads reintroduce "
              "host-dependent behaviour",
    exempt=("cli.py", "utils/env.py", "core/config.py"),
)
def check_raw_environ_read(ctx):
    for node in ctx.walk(ast.Call):
        if ctx.qualname(node.func) == "os.getenv":
            yield node, (
                "os.getenv() bypasses the repro.utils.env choke point"
            )
    for node in ctx.walk(ast.Attribute, ast.Name):
        if ctx.qualname(node) != "os.environ":
            continue
        parent = ctx.parent(node)
        if isinstance(parent, ast.Attribute):
            if parent.attr in _ENVIRON_MUTATORS:
                continue  # process-local mutation/restore, not a read
            yield parent, (
                f"os.environ.{parent.attr} bypasses the repro.utils.env "
                "choke point"
            )
        elif isinstance(parent, ast.Subscript):
            if isinstance(parent.ctx, ast.Load):
                yield parent, (
                    "os.environ[...] read bypasses the repro.utils.env "
                    "choke point"
                )
        else:
            yield node, (
                "bare os.environ reference (copied or passed along) — "
                "worker envs must be built from explicit extras"
            )


# ---------------------------------------------------------------------- #
# REP004 — hook leaks
# ---------------------------------------------------------------------- #

_HOOK_REGISTRARS = {"register_activate_hook", "register_command_hook"}
_DETACH_METHODS = {"close", "__exit__", "detach"}


@rule(
    "REP004",
    name="hook-leak",
    summary="class attaches controller hooks but defines no "
            "close()/__exit__ detach path",
    hint="define close() that calls unregister_*_hook (and __exit__ "
         "delegating to it), as HookedDefense/CommandTrace/TimingChecker do",
    rationale="the exact leak fixed twice: HookedDefense.close() in PR 6 "
              "after the Shadow hook leak, and the CommandTrace detach in "
              "the same PR",
)
def check_hook_leak(ctx):
    for cls in ctx.walk(ast.ClassDef):
        attaches = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _HOOK_REGISTRARS
            for node in ast.walk(cls)
        )
        if not attaches:
            continue
        methods = {
            stmt.name
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if not (methods & _DETACH_METHODS):
            yield cls, (
                f"class {cls.name} registers controller hooks but defines "
                "none of close()/__exit__/detach — the controller keeps a "
                "reference and replays every later command into it"
            )


# ---------------------------------------------------------------------- #
# REP005 — non-atomic writes
# ---------------------------------------------------------------------- #

_ATOMIC_WRITE_FNS = {"atomic_write_text", "_atomic_write_text"}


def _write_mode(node: ast.Call) -> str | None:
    """The literal file mode of an open() call, when write-ish."""
    mode_node: ast.AST | None = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    else:
        for kw in node.keywords:
            if kw.arg == "mode":
                mode_node = kw.value
    if (
        isinstance(mode_node, ast.Constant)
        and isinstance(mode_node.value, str)
        and "w" in mode_node.value
    ):
        return mode_node.value
    return None


@rule(
    "REP005",
    name="non-atomic-write",
    summary="in-place file write (open('w')/write_text/write_bytes) "
            "outside atomic_write_text",
    hint="use repro.utils.io.atomic_write_text (tmp file + os.replace); "
         "a crash mid-write must never leave a torn artifact for "
         "resume/merge/CI cmp to choke on",
    rationale="PR 4 made artifact writes atomic after torn-JSONL and "
              "half-written-artifact failures in the chaos sweeps",
)
def check_non_atomic_write(ctx):
    for node in ctx.walk(ast.Call):
        fn = ctx.enclosing_function(node)
        if fn is not None and fn.name in _ATOMIC_WRITE_FNS:
            continue  # the sanctioned implementation site
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            mode = _write_mode(node)
            if mode is not None:
                yield node, (
                    f"open(..., {mode!r}) truncates in place — a crash "
                    "mid-write leaves a torn file"
                )
        elif isinstance(node.func, ast.Attribute):
            if node.func.attr in {"write_text", "write_bytes"}:
                yield node, (
                    f".{node.func.attr}() rewrites the file in place — a "
                    "crash mid-write leaves a torn file"
                )
            elif node.func.attr == "open":
                mode = _write_mode(node)
                if mode is not None:
                    yield node, (
                        f".open(..., {mode!r}) truncates in place — a "
                        "crash mid-write leaves a torn file"
                    )


# ---------------------------------------------------------------------- #
# REP006 — float-order hazards
# ---------------------------------------------------------------------- #

@rule(
    "REP006",
    name="float-order-hazard",
    summary="reassociating contraction (einsum optimize=/tensordot) or "
            "sum() over an unordered set in numeric code",
    hint="keep the reference contraction order (plain einsum / explicit "
         "loops) outside the opt-in fast-math tier, and sorted() any set "
         "before reducing over it",
    rationale="PR 5 kept einsum over the faster tensordot/optimize=True "
              "precisely to preserve byte-identical gradients; the "
              "fast-math tier (ROADMAP) is the sanctioned opt-out",
    exempt=("nn/fast_math.py",),
)
def check_float_order_hazard(ctx):
    for node in ctx.walk(ast.Call):
        qual = ctx.qualname(node.func)
        if qual == "numpy.einsum":
            for kw in node.keywords:
                if kw.arg != "optimize":
                    continue
                if isinstance(kw.value, ast.Constant) and kw.value.value is False:
                    continue
                yield node, (
                    "np.einsum(optimize=...) may reassociate the "
                    "contraction — float results depend on the chosen "
                    "kernel, breaking byte-parity with the reference path"
                )
        elif qual == "numpy.tensordot":
            yield node, (
                "np.tensordot reorders the reduction relative to the "
                "reference kernels — byte-parity with the legacy loops "
                "is lost"
            )
        elif isinstance(node.func, ast.Name) and node.func.id == "sum":
            target = node.args[0] if node.args else None
            if target is None:
                continue
            if _is_unordered_collection(target) or (
                isinstance(target, ast.GeneratorExp)
                and any(
                    _is_unordered_collection(gen.iter)
                    for gen in target.generators
                )
            ):
                yield node, (
                    "sum() over an unordered set — float accumulation "
                    "order (and therefore rounding) varies run to run"
                )


# ---------------------------------------------------------------------- #
# REP007 — fork-unsafe module state
# ---------------------------------------------------------------------- #

# ALL_CAPS module containers (registries, constant tables) are populated
# at import time, so forked/re-imported chunk workers inherit a
# consistent snapshot; lowercase mutable globals signal runtime mutation
# that silently diverges between the coordinator and its workers.
_CONSTANT_NAME = re.compile(r"^(_?[A-Z][A-Z0-9_]*|__\w+__)$")

_MUTABLE_FACTORIES = {
    "dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque",
}


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None
        )
        return name in _MUTABLE_FACTORIES
    return False


@rule(
    "REP007",
    name="fork-unsafe-state",
    summary="lowercase module-level mutable container, or 'global' "
            "rebinding at runtime",
    hint="chunk workers start from a fresh interpreter — state mutated "
         "after import diverges silently; use ALL_CAPS import-time "
         "registries, or thread state through TrialContext/params",
    rationale="the sharded scheduler's worker contract (PR 3/4): "
              "scenarios must be importable into a fresh process and "
              "reproduce coordinator behaviour exactly",
)
def check_fork_unsafe_state(ctx):
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.Assign):
            value, targets = stmt.value, stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value, targets = stmt.value, [stmt.target]
        else:
            continue
        if not _is_mutable_value(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and not _CONSTANT_NAME.match(
                target.id
            ):
                yield stmt, (
                    f"module-level mutable container {target.id!r} — "
                    "forked chunk workers will not see later mutations "
                    "(ALL_CAPS import-time registries are the sanctioned "
                    "pattern)"
                )
    for node in ctx.walk(ast.Global):
        yield node, (
            f"'global {', '.join(node.names)}' rebinds module state at "
            "runtime — coordinator and chunk workers diverge silently"
        )


# ---------------------------------------------------------------------- #
# REP008 — scenario-registration contract
# ---------------------------------------------------------------------- #

def _scenario_decorator(fn: ast.FunctionDef) -> ast.Call | None:
    for deco in fn.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        func = deco.func
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None
        )
        if name == "scenario":
            return deco
    return None


def _uses_trial_seed(fn: ast.FunctionDef, ctx_arg: str) -> bool:
    """ctx.seed/ctx.rng read, or ctx delegated to a helper call."""
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == ctx_arg
            and node.attr in {"seed", "rng"}
        ):
            return True
        if isinstance(node, ast.Call):
            operands = list(node.args) + [kw.value for kw in node.keywords]
            if any(
                isinstance(arg, ast.Name) and arg.id == ctx_arg
                for arg in operands
            ):
                return True
    return False


@rule(
    "REP008",
    name="scenario-contract",
    summary="@scenario trial fn ignores its trial seed or writes "
            "artifacts directly",
    hint="non-deterministic trials must derive randomness from ctx.seed/"
         "ctx.rng() (or mark deterministic=True); artifacts go through "
         "the runner's write_artifact, never direct file writes",
    rationale="the registry contract every backend depends on: seeded "
              "trials and runner-owned artifacts are what make "
              "serial/process/sharded/ssh runs byte-identical",
)
def check_scenario_contract(ctx):
    for fn in ctx.walk(ast.FunctionDef):
        deco = _scenario_decorator(fn)
        if deco is None:
            continue
        scenario_name = (
            deco.args[0].value
            if deco.args and isinstance(deco.args[0], ast.Constant)
            else fn.name
        )
        kwargs = {kw.arg: kw.value for kw in deco.keywords}
        deterministic = (
            isinstance(kwargs.get("deterministic"), ast.Constant)
            and kwargs["deterministic"].value is True
        )
        ctx_arg = fn.args.args[0].arg if fn.args.args else None
        if not deterministic and ctx_arg is not None:
            if not _uses_trial_seed(fn, ctx_arg):
                yield fn, (
                    f"scenario {scenario_name!r} is not deterministic=True "
                    f"but never reads {ctx_arg}.seed/{ctx_arg}.rng (nor "
                    f"hands {ctx_arg} to a helper) — trials cannot be "
                    "seed-reproducible"
                )
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            direct_write = (
                isinstance(node.func, ast.Name)
                and node.func.id == "open"
                and _write_mode(node) is not None
            ) or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in {"write_text", "write_bytes"}
            )
            if direct_write:
                yield node, (
                    f"scenario {scenario_name!r} writes files directly "
                    "from its trial fn — artifacts must flow through "
                    "write_artifact so backends stay byte-identical"
                )
