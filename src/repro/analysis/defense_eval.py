"""DNN-level defense evaluation harness (Figs. 1b and 9, Table 3).

These orchestrators run the attack/defense experiments end-to-end on the
numpy substrate and return plain result records the benchmarks print.  All
of them accept a pre-trained model state so the (expensive) training happens
once per benchmark session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.attacks.adaptive import white_box_adaptive_attack
from repro.attacks.bfa import BfaConfig, BitFlipAttack
from repro.attacks.executor import FlipExecutor, LogicalDefenseExecutor, SoftwareFlipExecutor
from repro.attacks.profile import profile_vulnerable_bits
from repro.attacks.random_attack import random_bit_attack
from repro.nn.data import Dataset
from repro.nn.module import Module
from repro.nn.quant import BitLocation, QuantizedModel
from repro.nn.train import evaluate

__all__ = [
    "AccuracyCurve",
    "expand_bits_to_rows",
    "targeted_vs_random",
    "SecuredBitsCurve",
    "secured_bits_sweep",
    "DefenseComparisonRow",
    "evaluate_defense_row",
    "TOURNAMENT_CELL_METRICS",
    "evaluate_tournament_cell",
    "tournament_matrix_rows",
]


def expand_bits_to_rows(
    qmodel: QuantizedModel,
    bits: set[BitLocation],
    weights_per_row: int = 256,
) -> set[BitLocation]:
    """Expand profiled bits to DRAM-row protection granularity.

    DNN-Defender protects *rows*, not individual bits: securing one
    profiled bit secures every weight bit sharing its row.  With the
    default 8 KiB rows a row holds thousands of 8-bit weights, which is
    why the paper's secured-bit counts (Fig. 9's 2k-311k "SB") are far
    larger than the handful of profiled flips per round.
    """
    if weights_per_row < 1:
        raise ValueError("weights_per_row must be >= 1")
    expanded: set[BitLocation] = set()
    for location in bits:
        layer = qmodel.layer(location.layer)
        start = (location.index // weights_per_row) * weights_per_row
        end = min(start + weights_per_row, layer.num_weights)
        for index in range(start, end):
            for bit in range(8):
                expanded.add(BitLocation(location.layer, index, bit))
    return expanded


# ---------------------------------------------------------------------- #
# Fig. 1b: targeted BFA vs random flips vs the defense
# ---------------------------------------------------------------------- #

@dataclass
class AccuracyCurve:
    """Accuracy as a function of accumulated bit flips."""

    label: str
    flips: list[int] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    def add(self, n_flips: int, accuracy: float) -> None:
        self.flips.append(n_flips)
        self.accuracies.append(accuracy)


def targeted_vs_random(
    model_factory: Callable[[], Module],
    trained_state: dict[str, np.ndarray],
    dataset: Dataset,
    bfa_flips: int = 20,
    random_flips: int = 100,
    defended_flips: int = 20,
    profile_rounds: int = 2,
    attack_batch: int = 128,
    bfa_config: BfaConfig | None = None,
    seed: int = 0,
) -> list[AccuracyCurve]:
    """Reproduce Fig. 1b's three curves on one trained model.

    Returns curves for: targeted BFA (undefended), random flips, and the
    adaptive BFA against DNN-Defender's secured bits.
    """
    rng = np.random.default_rng(seed)
    x, y = dataset.attack_batch(attack_batch, rng)
    config = bfa_config or BfaConfig(max_iterations=bfa_flips)

    def fresh() -> QuantizedModel:
        model = model_factory()
        model.load_state_dict(trained_state)
        model.eval()
        return QuantizedModel(model)

    curves = []

    # Targeted BFA, no defense.
    qmodel = fresh()
    attack = BitFlipAttack(
        qmodel, x, y, config=config,
        eval_x=dataset.x_test, eval_y=dataset.y_test,
    )
    result = attack.run()
    curve = AccuracyCurve("bfa")
    for i, accuracy in enumerate(result.accuracy_history):
        curve.add(i, accuracy)
    curves.append(curve)

    # Random flips.
    qmodel = fresh()
    rand = random_bit_attack(
        qmodel, dataset.x_test, dataset.y_test, num_flips=random_flips,
        rng=np.random.default_rng(seed + 1), eval_every=max(random_flips // 10, 1),
    )
    curve = AccuracyCurve("random")
    for n, accuracy in zip(rand.checkpoints, rand.accuracies):
        curve.add(n, accuracy)
    curves.append(curve)

    # Adaptive BFA against DNN-Defender: profiled bits secure their rows.
    qmodel = fresh()
    profile = profile_vulnerable_bits(
        qmodel, x, y, rounds=profile_rounds, config=config
    )
    secured = expand_bits_to_rows(qmodel, profile.all_bits)
    executor = LogicalDefenseExecutor(qmodel, secured)
    defended = white_box_adaptive_attack(
        qmodel, x, y, executor, secured,
        config=BfaConfig(
            max_iterations=defended_flips,
            exact_eval_top=config.exact_eval_top,
        ),
        eval_x=dataset.x_test, eval_y=dataset.y_test,
    )
    curve = AccuracyCurve("dnn-defender")
    for i, accuracy in enumerate(defended.accuracy_history):
        curve.add(i, accuracy)
    curves.append(curve)
    return curves


# ---------------------------------------------------------------------- #
# Fig. 9: secured-bits sweep against the adaptive white-box attacker
# ---------------------------------------------------------------------- #

@dataclass
class SecuredBitsCurve:
    """One Fig. 9 curve: accuracy vs extra flips at a secured-bit budget."""

    secured_bits: int
    profile_rounds: int
    extra_flips: list[int] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else float("nan")


def secured_bits_sweep(
    model_factory: Callable[[], Module],
    trained_state: dict[str, np.ndarray],
    dataset: Dataset,
    round_budgets: tuple[int, ...] = (1, 2, 4),
    extra_flip_budget: int = 20,
    attack_batch: int = 128,
    profile_config: BfaConfig | None = None,
    seed: int = 0,
) -> list[SecuredBitsCurve]:
    """Fig. 9: for growing secured-bit budgets (via profiling rounds), run
    the adaptive white-box BFA and record accuracy vs extra flips."""
    rng = np.random.default_rng(seed)
    x, y = dataset.attack_batch(attack_batch, rng)
    profile_config = profile_config or BfaConfig(max_iterations=10)

    def fresh() -> QuantizedModel:
        model = model_factory()
        model.load_state_dict(trained_state)
        model.eval()
        return QuantizedModel(model)

    # Profile once at the deepest budget; nested budgets reuse the rounds.
    qmodel = fresh()
    profile = profile_vulnerable_bits(
        qmodel, x, y, rounds=max(round_budgets), config=profile_config
    )
    curves = []
    for rounds in round_budgets:
        qmodel = fresh()
        secured = expand_bits_to_rows(
            qmodel, profile.bits_up_to_round(rounds)
        )
        executor = LogicalDefenseExecutor(qmodel, secured)
        result = white_box_adaptive_attack(
            qmodel, x, y, executor, secured,
            config=BfaConfig(
                max_iterations=extra_flip_budget,
                exact_eval_top=profile_config.exact_eval_top,
            ),
            eval_x=dataset.x_test, eval_y=dataset.y_test,
        )
        curve = SecuredBitsCurve(
            secured_bits=len(secured), profile_rounds=rounds
        )
        for i, accuracy in enumerate(result.accuracy_history):
            curve.extra_flips.append(i)
            curve.accuracies.append(accuracy)
        curves.append(curve)
    return curves


# ---------------------------------------------------------------------- #
# Table 3: defense comparison
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class DefenseComparisonRow:
    """One Table 3 row."""

    name: str
    clean_accuracy: float
    post_attack_accuracy: float
    bit_flips: int


# ---------------------------------------------------------------------- #
# Tournament matrix: attacker x defense cells (generalizes Figs. 6/7)
# ---------------------------------------------------------------------- #

# The fixed per-cell metric vocabulary.  Every tournament trial reports
# exactly these keys (plus the cell coordinates), because the runner's
# aggregation requires each metric to be present in every trial.
TOURNAMENT_CELL_METRICS: tuple[str, ...] = (
    "clean_accuracy",
    "floor_accuracy",
    "recovery_accuracy",
    "accuracy_drop",
    "recovery_gain",
    "attempts",
    "flips_landed",
    "flips_blocked",
    "detections",
    "detection_rate",
    "recovered_weights",
    "detection_ns",
    "defense_reactions",
)


def evaluate_tournament_cell(
    attacker_name: str,
    defense,
    dataset: Dataset,
    budget: int,
    seed: int,
    params: dict | None = None,
) -> dict[str, float]:
    """Run one tournament cell: a registered attacker vs a live defense.

    The cell protocol mirrors a real deployment's lifetime: measure the
    defended model's clean accuracy, run the attack through the
    defense's executor (ticking the defense as it goes), measure the
    post-attack accuracy *floor*, give the defense its post-attack
    :meth:`~repro.defenses.protocol.Defense.recover` pass, and measure
    the recovered accuracy.  Detection counters and the detection-ns
    cost come out of the defense's
    :class:`~repro.defenses.base.DefenseStats` notes.

    Returns the flat scalar metrics of :data:`TOURNAMENT_CELL_METRICS`
    (artifact- and merge-safe).  The caller owns ``defense.close()``.
    """
    from repro.attacks.protocol import AttackContext
    from repro.attacks.registry import build_attacker

    deployed = defense.qmodel  # transforms may have replaced the model
    clean = evaluate(deployed.model, dataset.x_test, dataset.y_test)
    context = AttackContext(
        qmodel=deployed,
        dataset=dataset,
        seed=seed,
        budget=int(budget),
        executor=defense.executor(),
        defense=defense,
        params=dict(params or {}),
        eval_x=dataset.x_test,
        eval_y=dataset.y_test,
    )
    outcome = build_attacker(attacker_name).execute(context)
    floor = evaluate(deployed.model, dataset.x_test, dataset.y_test)
    recovered_weights = int(defense.recover())
    recovery = evaluate(deployed.model, dataset.x_test, dataset.y_test)
    stats = defense.finalize()
    detections = int(stats.notes.get("detections", 0))
    landed = outcome.num_flips
    return {
        "clean_accuracy": float(clean),
        "floor_accuracy": float(floor),
        "recovery_accuracy": float(recovery),
        "accuracy_drop": float(clean - floor),
        "recovery_gain": float(recovery - floor),
        "attempts": float(outcome.attempts),
        "flips_landed": float(landed),
        "flips_blocked": float(outcome.blocked),
        "detections": float(detections),
        "detection_rate": float(detections / landed) if landed else 0.0,
        "recovered_weights": float(recovered_weights),
        "detection_ns": float(stats.notes.get("detection_ns", 0)),
        "defense_reactions": float(stats.reactions),
    }


def tournament_matrix_rows(
    cells: list[tuple],
    per_trial_metrics: list[dict],
) -> dict[tuple, dict[str, float]]:
    """Re-assemble the matrix from a run's raw per-trial metrics.

    ``cells`` is the grid order the scenario derived from its params;
    each trial carries its ``cell_index`` metric, so replicated trials of
    the same cell average together.  Returns ``{cell: {metric: mean}}``
    keyed by the (model, defense, attacker, budget) tuples.
    """
    grouped: dict[tuple, list[dict]] = {}
    for metrics in per_trial_metrics:
        cell = tuple(cells[int(metrics["cell_index"])])
        grouped.setdefault(cell, []).append(metrics)
    rows: dict[tuple, dict[str, float]] = {}
    for cell, group in grouped.items():
        rows[cell] = {
            key: float(np.mean([m[key] for m in group]))
            for key in TOURNAMENT_CELL_METRICS
        }
    return rows


def evaluate_defense_row(
    name: str,
    qmodel: QuantizedModel,
    dataset: Dataset,
    executor: FlipExecutor | None = None,
    stop_accuracy: float | None = None,
    max_iterations: int = 40,
    attack_batch: int = 128,
    exact_eval_top: int = 6,
    seed: int = 0,
) -> DefenseComparisonRow:
    """Attack one defended deployment until collapse or budget exhaustion.

    ``bit_flips`` counts the attacker's *attempts* (landed or defended),
    matching Table 3's accounting where a strong defense shows many flips
    and no accuracy loss.
    """
    rng = np.random.default_rng(seed)
    x, y = dataset.attack_batch(attack_batch, rng)
    clean = evaluate(qmodel.model, dataset.x_test, dataset.y_test)
    stop = stop_accuracy if stop_accuracy is not None else (
        dataset.random_guess_accuracy + 0.02
    )
    attack = BitFlipAttack(
        qmodel, x, y,
        config=BfaConfig(
            max_iterations=max_iterations,
            stop_accuracy=stop,
            exact_eval_top=exact_eval_top,
        ),
        executor=executor or SoftwareFlipExecutor(qmodel),
        eval_x=dataset.x_test, eval_y=dataset.y_test,
    )
    result = attack.run()
    return DefenseComparisonRow(
        name=name,
        clean_accuracy=clean,
        post_attack_accuracy=result.final_accuracy,
        bit_flips=len(result.attempts),
    )
