"""Analytical models and experiment harnesses for the paper's evaluation."""

from repro.analysis.defense_eval import (
    AccuracyCurve,
    DefenseComparisonRow,
    SecuredBitsCurve,
    evaluate_defense_row,
    expand_bits_to_rows,
    secured_bits_sweep,
    targeted_vs_random,
)
from repro.analysis.energy import PowerBreakdown, defense_power_mw, power_comparison
from repro.analysis.latency import (
    LatencyPoint,
    latency_per_tref_ms,
    latency_sweep,
    t_op_ns,
)
from repro.analysis.overhead import (
    TABLE2_SPECS,
    OverheadSpec,
    derived_capacity_mb,
    table2_rows,
)
from repro.analysis.report import (
    format_accuracy_curves,
    format_latency_sweep,
    format_secured_bits_curves,
    format_security_sweep,
)
from repro.analysis.security import (
    SecurityPoint,
    max_defended_bfas,
    security_sweep,
    swaps_per_tref,
    time_to_break_days,
)

__all__ = [
    "AccuracyCurve",
    "DefenseComparisonRow",
    "SecuredBitsCurve",
    "evaluate_defense_row",
    "expand_bits_to_rows",
    "secured_bits_sweep",
    "targeted_vs_random",
    "PowerBreakdown",
    "defense_power_mw",
    "power_comparison",
    "LatencyPoint",
    "latency_per_tref_ms",
    "latency_sweep",
    "t_op_ns",
    "TABLE2_SPECS",
    "OverheadSpec",
    "derived_capacity_mb",
    "table2_rows",
    "format_accuracy_curves",
    "format_latency_sweep",
    "format_secured_bits_curves",
    "format_security_sweep",
    "SecurityPoint",
    "max_defended_bfas",
    "security_sweep",
    "swaps_per_tref",
    "time_to_break_days",
]
