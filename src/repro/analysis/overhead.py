"""Hardware-overhead comparison (Table 2).

For the paper's reference configuration — a 32 GB, 16-bank DDR4 module —
each mitigation framework is described by the memory technologies it
occupies, its capacity overhead per technology, and its area overhead.
Published values come from Table 2; where a value is derivable from the
DRAM geometry (counter-per-row, counter-tree, SHADOW's row reserve) the
``derived_capacity_mb`` function recomputes it so the bench can print
published and derived numbers side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.geometry import PAPER_GEOMETRY, DramGeometry

__all__ = ["OverheadSpec", "TABLE2_SPECS", "derived_capacity_mb", "table2_rows"]


@dataclass(frozen=True)
class OverheadSpec:
    """One row of Table 2."""

    name: str
    involved_memory: str
    capacity: dict[str, float]        # memory type -> MB ("NR" = None)
    area: str
    capacity_notes: dict[str, str] = field(default_factory=dict)

    @property
    def total_capacity_mb(self) -> float:
        return sum(v for v in self.capacity.values() if v is not None)

    @property
    def uses_fast_memory(self) -> bool:
        return any(m in self.involved_memory for m in ("SRAM", "CAM"))

    @property
    def dram_only(self) -> bool:
        return self.involved_memory == "DRAM"


TABLE2_SPECS: list[OverheadSpec] = [
    OverheadSpec("Graphene", "CAM-SRAM", {"CAM": 0.53, "SRAM": 1.12},
                 "1 counter"),
    OverheadSpec("Hydra", "SRAM-DRAM", {"SRAM": 0.0546875, "DRAM": 4.0},
                 "1 counter", {"SRAM": "56KB"}),
    OverheadSpec("TWiCe", "SRAM-CAM", {"SRAM": 3.16, "CAM": 1.6},
                 "1 counter"),
    OverheadSpec("Counter per Row", "DRAM", {"DRAM": 32.0}, "16384 counters"),
    OverheadSpec("Counter Tree", "DRAM", {"DRAM": 2.0}, "1024 counters"),
    OverheadSpec("RRS", "DRAM-SRAM", {"DRAM": 4.0, "SRAM": None}, "NULL",
                 {"SRAM": "NR"}),
    OverheadSpec("SRS", "DRAM-SRAM", {"DRAM": 1.26, "SRAM": None}, "NULL",
                 {"SRAM": "NR"}),
    OverheadSpec("SHADOW", "DRAM", {"DRAM": 0.16}, "0.6%"),
    OverheadSpec("P-PIM", "DRAM", {"DRAM": 4.125}, "0.34%"),
    OverheadSpec("DNN-Defender", "DRAM", {"DRAM": 0.0}, "0.02%"),
]


def derived_capacity_mb(
    name: str, geometry: DramGeometry = PAPER_GEOMETRY
) -> float | None:
    """Recompute a framework's DRAM capacity overhead from the geometry.

    Returns None for frameworks whose overhead is not a pure function of
    the geometry (tracking-table designs sized by threshold, not capacity).
    """
    if name == "Counter per Row":
        # One 8-byte counter word per DRAM row.
        return geometry.total_rows * 8 / 2**20
    if name == "SHADOW":
        # Published overhead is 0.16 MB on the 32 GB reference module,
        # equivalent to one spare (shadow) row per 400 sub-arrays at this
        # geometry; the derivation scales that ratio.
        rows = geometry.banks * geometry.subarrays_per_bank / 400
        return rows * geometry.row_bytes / 2**20
    if name == "DNN-Defender":
        # Reserved rows are recycled data rows — no dedicated capacity.
        return 0.0
    return None


def table2_rows(geometry: DramGeometry = PAPER_GEOMETRY) -> list[list[str]]:
    """Printable Table 2: published values plus derivations where possible."""
    rows = []
    for spec in TABLE2_SPECS:
        parts = []
        for memory, mb in spec.capacity.items():
            if mb is None:
                parts.append(f"NR ({memory})")
            elif mb == 0:
                parts.append("0")
            else:
                note = spec.capacity_notes.get(memory)
                text = note if note else f"{mb:g}MB"
                parts.append(f"{text} ({memory})")
        derived = derived_capacity_mb(spec.name, geometry)
        derived_text = "-" if derived is None else f"{derived:.2f}MB"
        rows.append(
            [spec.name, spec.involved_memory, " + ".join(parts),
             spec.area, derived_text]
        )
    return rows
