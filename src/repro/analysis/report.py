"""Report formatting for the benchmark harness."""

from __future__ import annotations

from typing import Sequence

from repro.analysis.defense_eval import AccuracyCurve, SecuredBitsCurve
from repro.analysis.latency import LatencyPoint
from repro.analysis.security import SecurityPoint
from repro.utils.tabulate import format_table

__all__ = [
    "format_security_sweep",
    "format_latency_sweep",
    "format_accuracy_curves",
    "format_secured_bits_curves",
]


def format_security_sweep(points: Sequence[SecurityPoint]) -> str:
    """Fig. 8a as a table: time-to-break and defended-BFA capacity."""
    rows = [
        [p.defense, p.t_rh, f"{p.time_to_break_days:.0f}",
         p.max_defended_bfas]
        for p in points
    ]
    return format_table(
        ["defense", "T_RH", "time-to-break (days)", "max defended BFAs"],
        rows,
        title="Fig. 8a — time-to-break vs RowHammer threshold",
    )


def format_latency_sweep(points: Sequence[LatencyPoint]) -> str:
    """Fig. 8b as a table: latency per refresh interval."""
    rows = [
        [p.defense, p.t_rh, p.n_bfas, f"{p.latency_ms:.2f}"]
        for p in points
    ]
    return format_table(
        ["defense", "T_RH", "# BFAs", "latency per T_ref (ms)"],
        rows,
        title="Fig. 8b — defense latency per refresh interval",
    )


def format_accuracy_curves(curves: Sequence[AccuracyCurve]) -> str:
    """Fig. 1b-style curves as aligned columns."""
    blocks = []
    for curve in curves:
        rows = [
            [n, f"{a * 100:.2f}"] for n, a in zip(curve.flips, curve.accuracies)
        ]
        blocks.append(
            format_table(["# flips", "accuracy (%)"], rows, title=curve.label)
        )
    return "\n\n".join(blocks)


def format_secured_bits_curves(curves: Sequence[SecuredBitsCurve]) -> str:
    """Fig. 9-style sweep as a table."""
    rows = []
    for curve in curves:
        for n, a in zip(curve.extra_flips, curve.accuracies):
            rows.append(
                [curve.secured_bits, curve.profile_rounds, n, f"{a * 100:.2f}"]
            )
    return format_table(
        ["secured bits", "rounds", "SB + extra flips", "accuracy (%)"],
        rows,
        title="Fig. 9 — adaptive white-box BFA vs secured-bit budget",
    )
