"""Report formatting for the benchmark/experiment harness.

Formatters accept either the analysis dataclasses (``SecurityPoint``,
``AccuracyCurve`` …) or their JSON-dict forms produced by the
``*_to_json`` serialisers below — so the experiment runner can store pure
JSON in its artifacts and still render the same tables.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Sequence

from repro.utils.tabulate import format_table

__all__ = [
    "format_security_sweep",
    "format_latency_sweep",
    "format_accuracy_curves",
    "format_secured_bits_curves",
    "to_json_list",
]


def _field(point: Any, name: str):
    """Read ``name`` from a dataclass instance or a plain dict."""
    if isinstance(point, dict):
        return point[name]
    return getattr(point, name)


def to_json_list(items: Sequence[Any]) -> list[dict]:
    """Dataclass (or dict) sequence as JSON-ready dicts.

    Used to serialise ``SecurityPoint``/``LatencyPoint``/curve sequences
    into scenario detail payloads that the formatters above accept back.
    """
    return [dict(i) if isinstance(i, dict) else asdict(i) for i in items]


def format_security_sweep(points: Sequence[Any]) -> str:
    """Fig. 8a as a table: time-to-break and defended-BFA capacity."""
    rows = [
        [
            _field(p, "defense"),
            _field(p, "t_rh"),
            f"{_field(p, 'time_to_break_days'):.0f}",
            _field(p, "max_defended_bfas"),
        ]
        for p in points
    ]
    return format_table(
        ["defense", "T_RH", "time-to-break (days)", "max defended BFAs"],
        rows,
        title="Fig. 8a — time-to-break vs RowHammer threshold",
    )


def format_latency_sweep(points: Sequence[Any]) -> str:
    """Fig. 8b as a table: latency per refresh interval."""
    rows = [
        [
            _field(p, "defense"),
            _field(p, "t_rh"),
            _field(p, "n_bfas"),
            f"{_field(p, 'latency_ms'):.2f}",
        ]
        for p in points
    ]
    return format_table(
        ["defense", "T_RH", "# BFAs", "latency per T_ref (ms)"],
        rows,
        title="Fig. 8b — defense latency per refresh interval",
    )


def format_accuracy_curves(curves: Sequence[Any]) -> str:
    """Fig. 1b-style curves as aligned columns."""
    blocks = []
    for curve in curves:
        rows = [
            [n, f"{a * 100:.2f}"]
            for n, a in zip(_field(curve, "flips"), _field(curve, "accuracies"))
        ]
        blocks.append(
            format_table(
                ["# flips", "accuracy (%)"], rows, title=_field(curve, "label")
            )
        )
    return "\n\n".join(blocks)


def format_secured_bits_curves(curves: Sequence[Any]) -> str:
    """Fig. 9-style sweep as a table."""
    rows = []
    for curve in curves:
        for n, a in zip(
            _field(curve, "extra_flips"), _field(curve, "accuracies")
        ):
            rows.append(
                [
                    _field(curve, "secured_bits"),
                    _field(curve, "profile_rounds"),
                    n,
                    f"{a * 100:.2f}",
                ]
            )
    return format_table(
        ["secured bits", "rounds", "SB + extra flips", "accuracy (%)"],
        rows,
        title="Fig. 9 — adaptive white-box BFA vs secured-bit budget",
    )
