"""Power-consumption comparison (Section 5.1, last paragraph).

The paper makes two quantitative power claims:

1. against SHADOW at ``T_RH = 1k``, DNN-Defender shows a *negligible* 1.6%
   total-power saving (both defenses are AAP-bound, and at saturation both
   spend the same fraction of time copying rows — the difference is
   SHADOW's tracker);
2. against SRAM-based swap frameworks (SRS/RRS), DNN-Defender's
   defense-related power is ~3.4x lower, because those designs pay SRAM
   static leakage for their indirection/counter tables plus off-chip
   synchronisation traffic.

The AAP-maintenance component below is physical (rates from the Section 5.1
algebra times the per-command energies in :class:`TimingParams`); the
tracker and SRAM-leakage constants are calibrated to the two published
claims and documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.latency import latency_per_tref_ms, t_op_ns
from repro.dram.geometry import PAPER_GEOMETRY, DramGeometry
from repro.dram.timing import TimingParams

__all__ = ["PowerBreakdown", "defense_power_mw", "power_comparison"]

# Base (non-defense) power of the 32 GB module under load, used to express
# savings as a fraction of total system power.
BASE_DRAM_POWER_MW = 2000.0
# Static leakage of defense-dedicated SRAM (RIT / counter tables).
SRAM_STATIC_MW_PER_MB = 300.0
# SHADOW's per-activation tracker energy (counter read-modify-write),
# calibrated so the total-power gap at T_RH=1k lands on the published 1.6%.
SHADOW_TRACKER_MW = 35.0
# Effective SRAM table size of the SRS-class designs (their papers do not
# report it; Table 2 marks it "NR").  SRS's value is calibrated so the
# defense-power ratio lands on the published 3.4x claim.
SRS_SRAM_MB = 1.05
RRS_SRAM_MB = 4.0


@dataclass(frozen=True)
class PowerBreakdown:
    """Defense-related power, split by source."""

    defense: str
    aap_mw: float
    tracker_mw: float
    sram_static_mw: float

    @property
    def total_mw(self) -> float:
        return self.aap_mw + self.tracker_mw + self.sram_static_mw

    @property
    def total_with_base_mw(self) -> float:
        return self.total_mw + BASE_DRAM_POWER_MW


def _aap_power_mw(
    defense: str, timing: TimingParams, geometry: DramGeometry
) -> float:
    """Row-copy maintenance power at worst-case (saturated) load."""
    op_ns = t_op_ns(defense, timing)
    # Busy time per refresh interval per bank (Fig. 8b model at saturation),
    # converted to power through the AAP energy density.  pJ/ns == mW, so
    # the expression below is already in milliwatts.
    saturated_bfas = int(timing.hammer_window_ns / op_ns) * geometry.banks
    busy_ns = latency_per_tref_ms(defense, saturated_bfas, timing, geometry) * 1e6
    energy_density = timing.e_aap_pj / timing.t_aap_ns   # pJ per busy ns
    return busy_ns * geometry.banks * energy_density / timing.t_ref_ns


def defense_power_mw(
    defense: str,
    timing: TimingParams,
    geometry: DramGeometry = PAPER_GEOMETRY,
) -> PowerBreakdown:
    """Defense-related power at worst-case load."""
    if defense == "dnn-defender":
        return PowerBreakdown(defense, _aap_power_mw(defense, timing, geometry),
                              0.0, 0.0)
    if defense == "shadow":
        return PowerBreakdown(defense, _aap_power_mw(defense, timing, geometry),
                              SHADOW_TRACKER_MW, 0.0)
    if defense == "srs":
        aap = _aap_power_mw("dnn-defender", timing, geometry)
        return PowerBreakdown(defense, aap, 0.0,
                              SRAM_STATIC_MW_PER_MB * SRS_SRAM_MB)
    if defense == "rrs":
        aap = _aap_power_mw("dnn-defender", timing, geometry)
        return PowerBreakdown(defense, aap, 0.0,
                              SRAM_STATIC_MW_PER_MB * RRS_SRAM_MB)
    raise ValueError(f"unknown defense {defense!r}")


def power_comparison(
    timing: TimingParams | None = None,
    geometry: DramGeometry = PAPER_GEOMETRY,
) -> dict[str, float]:
    """The two Section 5.1 power claims, computed from the model.

    Returns:
        ``saving_vs_shadow_1k_percent``: total-power saving of DNN-Defender
        relative to SHADOW at ``T_RH = 1k`` (paper: 1.6%).
        ``improvement_vs_srs``: SRS defense-power over DNN-Defender
        defense-power (paper: 3.4x).
    """
    t1k = (timing or TimingParams()).with_trh(1000)
    dd = defense_power_mw("dnn-defender", t1k, geometry)
    shadow = defense_power_mw("shadow", t1k, geometry)
    srs = defense_power_mw("srs", t1k, geometry)
    saving = (
        (shadow.total_with_base_mw - dd.total_with_base_mw)
        / shadow.total_with_base_mw
    )
    return {
        "saving_vs_shadow_1k_percent": 100.0 * saving,
        "improvement_vs_srs": srs.total_mw / dd.total_mw,
        "dd_power_mw": dd.total_mw,
        "shadow_power_mw": shadow.total_mw,
        "srs_power_mw": srs.total_mw,
    }
