"""Analytical security model: defended-BFA capacity and time-to-break.

Implements the Section 5.1 algebra:

* swap-budget per hammer window: ``(T_ACT x T_RH) / T_swap``;
* ``T_n = T_ACT x T_RH + T_swap x N_s`` and swaps per refresh interval
  ``N = (T_ref / T_n) x N_s``;
* the maximum number of *defendable* BFAs equals the number of target rows
  that fit the per-window swap budget, summed over banks — with the
  calibrated ``T_ACT = 118 ns`` this lands on the paper's published anchors
  (7K / 14K / 28K / 55K at ``T_RH`` = 1k/2k/4k/8k; Fig. 8a right axis).

Time-to-break: a swap defense forces the attacker to catch the protected
data *between* relocations; the expected number of hammer attempts scales
with the square of the rows the relocation randomises over (the attacker
must effectively guess the moving target's position twice in a row), and
each attempt costs one hammer window ``T_RH x T_ACT``.  For DNN-Defender
the randomisation space is the whole bank (``R`` rows):

    ``E[attempts] = pi * R^2``      (calibration note: EXPERIMENTS.md)

which reproduces the paper's 4k anchor (~1180 days) within 0.1%.  SHADOW's
shuffle randomises within sub-arrays, a smaller effective space, captured by
a single calibrated entropy factor fit to its published 894-day anchor.
Both models are linear in ``T_RH``, matching the published 71/142/286/572-day
gaps at 1k/2k/4k/8k.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dram.geometry import PAPER_GEOMETRY, DramGeometry
from repro.dram.timing import TimingParams

__all__ = [
    "SecurityPoint",
    "max_defended_bfas",
    "swaps_per_tref",
    "time_to_break_days",
    "security_sweep",
    "SHADOW_ENTROPY_FACTOR",
]

# Calibrated to SHADOW's published 894-day anchor at T_RH = 4k (vs.
# DNN-Defender's 1180): sqrt(894/1180) smaller effective randomisation
# radius per dimension.
SHADOW_ENTROPY_FACTOR: float = math.sqrt(894.0 / 1180.0)

_NS_PER_DAY = 86_400.0 * 1e9


def max_defended_bfas(
    timing: TimingParams,
    geometry: DramGeometry = PAPER_GEOMETRY,
    pipelined: bool = True,
) -> int:
    """Maximum simultaneously-defendable BFA targets (Fig. 8a right axis).

    Worst case one target weight bit per row: the defendable row count is
    the per-window swap budget, and banks work in parallel.
    """
    per_swap = timing.t_swap_ns if pipelined else timing.t_swap_unpipelined_ns
    per_bank = int(timing.hammer_window_ns / per_swap)
    return per_bank * geometry.banks


def swaps_per_tref(
    timing: TimingParams,
    n_s: int,
) -> float:
    """Total swap operations per refresh interval for ``n_s`` rows per bank.

    Section 5.1: ``T_n = T_ACT x T_RH + T_swap x N_s``;
    ``N = (T_ref / T_n) x N_s``.
    """
    if n_s < 0:
        raise ValueError(f"n_s must be non-negative, got {n_s}")
    if n_s == 0:
        return 0.0
    t_n = timing.hammer_window_ns + timing.t_swap_ns * n_s
    return (timing.t_ref_ns / t_n) * n_s


def time_to_break_days(
    defense: str,
    timing: TimingParams,
    geometry: DramGeometry = PAPER_GEOMETRY,
) -> float:
    """Expected days for a white-box attacker to break the defense."""
    rows = geometry.rows_per_bank
    attempt_ns = timing.hammer_window_ns
    if defense == "dnn-defender":
        attempts = math.pi * rows**2
    elif defense == "shadow":
        attempts = math.pi * (rows * SHADOW_ENTROPY_FACTOR) ** 2
    elif defense in ("rrs", "srs"):
        # Aggressor-focused swaps do not withstand the white-box attacker:
        # the victim's neighbour can be re-targeted immediately (Section 1;
        # "even SRS cannot defend ... for a period of one day").  One window
        # per targeted bit is all it takes.
        attempts = 1.0
    elif defense == "none":
        attempts = 1.0
    else:
        raise ValueError(f"unknown defense {defense!r}")
    return attempts * attempt_ns / _NS_PER_DAY


@dataclass(frozen=True)
class SecurityPoint:
    """One (defense, T_RH) point of the Fig. 8a sweep."""

    defense: str
    t_rh: int
    time_to_break_days: float
    max_defended_bfas: int


def security_sweep(
    defenses: tuple[str, ...] = ("dnn-defender", "shadow"),
    thresholds: tuple[int, ...] = (1000, 2000, 4000, 8000),
    timing: TimingParams | None = None,
    geometry: DramGeometry = PAPER_GEOMETRY,
) -> list[SecurityPoint]:
    """The full Fig. 8a grid."""
    base = timing or TimingParams()
    points = []
    for t_rh in thresholds:
        t = base.with_trh(t_rh)
        for defense in defenses:
            points.append(
                SecurityPoint(
                    defense=defense,
                    t_rh=t_rh,
                    time_to_break_days=time_to_break_days(defense, t, geometry),
                    max_defended_bfas=max_defended_bfas(t, geometry),
                )
            )
    return points
