"""Latency-per-``T_ref`` model (Fig. 8b).

Per refresh interval, a swap defense protecting ``N_s`` rows per bank
spends ``N x T_op`` where ``N = (T_ref / T_n) x N_s`` (Section 5.1 algebra)
and ``T_op`` is its per-row maintenance cost — ``3 x T_AAP`` for
DNN-Defender's pipelined swap, ``4 x T_AAP`` for SHADOW's shuffle (two
victim moves plus tracker interaction).  ``N_s`` saturates at the per-window
budget ``window / T_op``, which caps the latency at ``T_ref / 2`` — the
"limit" both curves approach in Fig. 8b, with DNN-Defender below SHADOW at
every BFA count because its ``T_op`` is smaller.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.geometry import PAPER_GEOMETRY, DramGeometry
from repro.dram.timing import TimingParams

__all__ = ["LatencyPoint", "latency_per_tref_ms", "latency_sweep", "t_op_ns"]


def t_op_ns(defense: str, timing: TimingParams) -> float:
    """Per-row maintenance cost of a defense."""
    if defense == "dnn-defender":
        return timing.t_swap_ns                      # 3 x T_AAP, pipelined
    if defense == "dnn-defender-unpipelined":
        return timing.t_swap_unpipelined_ns          # 4 x T_AAP (ablation)
    if defense == "shadow":
        return 4.0 * timing.t_aap_ns
    raise ValueError(f"unknown defense {defense!r}")


def latency_per_tref_ms(
    defense: str,
    n_bfas: int,
    timing: TimingParams,
    geometry: DramGeometry = PAPER_GEOMETRY,
) -> float:
    """Defense busy time inside one refresh interval, in milliseconds."""
    if n_bfas < 0:
        raise ValueError(f"n_bfas must be non-negative, got {n_bfas}")
    if n_bfas == 0:
        return 0.0
    op_ns = t_op_ns(defense, timing)
    window = timing.hammer_window_ns
    per_bank = n_bfas / geometry.banks
    n_s = min(per_bank, window / op_ns)   # per-window budget saturation
    t_n = window + op_ns * n_s
    swaps = (timing.t_ref_ns / t_n) * n_s
    return swaps * op_ns / 1e6


@dataclass(frozen=True)
class LatencyPoint:
    """One (defense, T_RH, n_bfas) point of the Fig. 8b sweep."""

    defense: str
    t_rh: int
    n_bfas: int
    latency_ms: float


def latency_sweep(
    defenses: tuple[str, ...] = ("dnn-defender", "shadow"),
    thresholds: tuple[int, ...] = (1000, 2000, 4000, 8000),
    bfa_counts: tuple[int, ...] = (7_000, 14_000, 28_000, 55_000),
    timing: TimingParams | None = None,
    geometry: DramGeometry = PAPER_GEOMETRY,
) -> list[LatencyPoint]:
    """The full Fig. 8b grid."""
    base = timing or TimingParams()
    points = []
    for t_rh in thresholds:
        t = base.with_trh(t_rh)
        for n_bfas in bfa_counts:
            for defense in defenses:
                points.append(
                    LatencyPoint(
                        defense=defense,
                        t_rh=t_rh,
                        n_bfas=n_bfas,
                        latency_ms=latency_per_tref_ms(
                            defense, n_bfas, t, geometry
                        ),
                    )
                )
    return points
