"""Swap-timeline algebra: the Fig. 6 pipelining model.

A chain of ``n`` four-step swaps costs ``(3n + 1)`` AAP slots plus one RNG
slot when pipelined (step 1 of swap *k+1* is the same operation as step 4 of
swap *k*), versus ``4n`` AAP slots unpipelined.  These closed forms drive
both the functional defender's budget checks and the analytical latency
model (Fig. 8b); :func:`build_timeline` additionally produces the explicit
per-step schedule that the Fig. 6 benchmark prints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import TimingParams

__all__ = [
    "chain_aap_count",
    "chain_latency_ns",
    "max_swaps_per_window",
    "TimelineEntry",
    "build_timeline",
]

STEP_NAMES = {
    1: "copy random -> reserved",
    2: "copy target -> random slot",
    3: "copy reserved -> target slot",
    4: "copy non-target -> reserved",
}


def chain_aap_count(n_swaps: int, pipelined: bool = True) -> int:
    """AAP operations needed for a chain of ``n_swaps`` swaps."""
    if n_swaps < 0:
        raise ValueError(f"n_swaps must be >= 0, got {n_swaps}")
    if n_swaps == 0:
        return 0
    if pipelined:
        return 3 * n_swaps + 1
    return 4 * n_swaps


def chain_latency_ns(
    n_swaps: int, timing: TimingParams, pipelined: bool = True
) -> float:
    """Wall-clock cost of a swap chain (AAPs + one RNG slot)."""
    if n_swaps == 0:
        return 0.0
    aaps = chain_aap_count(n_swaps, pipelined=pipelined)
    return aaps * timing.t_aap_ns + timing.t_rc_ns  # one RNG per chain


def max_swaps_per_window(timing: TimingParams, pipelined: bool = True) -> int:
    """Largest chain that fits inside one hammer window.

    The paper's constraint (Section 5.1): swaps must complete within
    ``T_ACT x T_RH``; with the steady-state swap cost ``T_swap = 3 x T_AAP``
    that bound is ``(T_ACT x T_RH) / T_swap``.
    """
    per_swap = (
        timing.t_swap_ns if pipelined else timing.t_swap_unpipelined_ns
    )
    return int(timing.hammer_window_ns / per_swap)


@dataclass(frozen=True)
class TimelineEntry:
    """One scheduled step of the Fig. 6 timeline."""

    swap: int          # 1-based swap index
    step: int          # 1..4
    slot: int          # AAP slot index on the time axis
    start_ns: float
    end_ns: float
    shared_with_next: bool  # True when this step doubles as next swap's step 1

    @property
    def description(self) -> str:
        return STEP_NAMES[self.step]


def build_timeline(
    n_swaps: int, timing: TimingParams, pipelined: bool = True
) -> list[TimelineEntry]:
    """Explicit AAP-slot schedule for a chain of swaps (Fig. 6).

    Pipelined: swap 1 occupies slots 0..3 (steps 1-4); swap *k* starts at
    the previous swap's step-4 slot, which serves as its step 1.
    """
    if n_swaps < 0:
        raise ValueError(f"n_swaps must be >= 0, got {n_swaps}")
    entries: list[TimelineEntry] = []
    t_aap = timing.t_aap_ns
    slot = 0
    for swap in range(1, n_swaps + 1):
        for step in range(1, 5):
            if pipelined and swap > 1 and step == 1:
                # Shared with the previous swap's step 4: no new slot.
                continue
            shared = pipelined and step == 4 and swap < n_swaps
            entries.append(
                TimelineEntry(
                    swap=swap,
                    step=step,
                    slot=slot,
                    start_ns=slot * t_aap,
                    end_ns=(slot + 1) * t_aap,
                    shared_with_next=shared,
                )
            )
            slot += 1
    return entries
