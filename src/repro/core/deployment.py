"""One-call wiring of the full defended system.

Builds the stack the paper's Fig. 7 framework evaluates: quantize a trained
model, place it in simulated DRAM, profile its vulnerable bits, and stand up
a defense over it.  Examples, benchmarks and integration tests all start
here.

The ``defense`` argument resolves through the defense registry
(:mod:`repro.defenses.registry`): the default ``"dnn-defender"`` keeps the
historical path — profile vulnerable bits, build the priority plan, attach
the hooked :class:`~repro.core.defender.DNNDefender` — while any other
registered name (``"radar"``, ``"shadow"``, ``"none"`` …) builds that
defense over the placed model instead.  Either way the deployment exposes
the uniform :class:`~repro.defenses.protocol.Defense` surface on
``deployment.defense``, and ``attacker=`` names a registered attacker that
:meth:`DefendedDeployment.run_attack` executes against the deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.bfa import BfaConfig
from repro.attacks.executor import LogicalDefenseExecutor
from repro.attacks.hammer import HammerExecutor, RowHammerAttacker
from repro.core.config import DefenderConfig
from repro.core.defender import DNNDefender
from repro.core.priority import PriorityProtection, build_priority_plan
from repro.dram.controller import MemoryController
from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.dram.timing import TimingParams
from repro.dram.timing_rules import TimingChecker
from repro.mapping.layout import WeightLayout
from repro.nn.data import Dataset
from repro.nn.module import Module
from repro.nn.quant import BitLocation, QuantizedModel
from repro.nn.train import evaluate

__all__ = ["DefendedDeployment"]


@dataclass
class DefendedDeployment:
    """A quantized model living in defended DRAM.

    ``protection`` and ``defender`` are populated only on the default
    ``defense="dnn-defender"`` path; registry-built defenses carry their
    whole mechanism on ``defense``.
    """

    dataset: Dataset
    qmodel: QuantizedModel
    controller: MemoryController
    layout: WeightLayout
    protection: PriorityProtection | None = None
    defender: DNNDefender | None = None
    checker: "TimingChecker | None" = None
    defense: object | None = None
    defense_name: str = "dnn-defender"
    attacker_name: str | None = None
    seed: int = 0
    defense_params: dict = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        model: Module,
        dataset: Dataset,
        geometry: DramGeometry,
        timing: TimingParams,
        profile_rounds: int = 2,
        profile_config: BfaConfig | None = None,
        defender_config: DefenderConfig | None = None,
        attack_batch_size: int = 128,
        reserved_rows: int = 2,
        extra_secured_bits: set[BitLocation] | None = None,
        timing_check: str = "off",
        seed: int = 0,
        defense: str = "dnn-defender",
        attacker: str | None = None,
        defense_params: dict | None = None,
    ) -> "DefendedDeployment":
        """Quantize, place, and defend ``model``.

        ``defense`` names a registered defense
        (``repro.defenses.registry``); the default ``"dnn-defender"``
        profiles vulnerable bits and attaches the hooked defender exactly
        as before, any other name builds that defense over the placed
        model (``defense_params`` feed its builder).  ``attacker`` names
        a registered attacker for :meth:`run_attack`.

        ``timing_check`` attaches a :class:`TimingChecker` to the
        controller before any command is issued: ``"strict"`` raises on
        the first DDR timing-rule violation anywhere in the defended
        stack, ``"audit"`` collects violations on ``deployment.checker``
        for later inspection, ``"off"`` (default) adds no observer.
        """
        rng = np.random.default_rng(seed)
        qmodel = QuantizedModel(model)
        controller = MemoryController(DramDevice(geometry), timing)
        checker = (
            TimingChecker(controller, mode=timing_check)
            if timing_check != "off" else None
        )
        layout = WeightLayout(
            qmodel, controller, reserved_rows=reserved_rows, seed=seed
        )
        protection = None
        defender = None
        defense_obj = None
        if defense == "dnn-defender":
            attack_x, attack_y = dataset.attack_batch(attack_batch_size, rng)
            protection = build_priority_plan(
                layout,
                attack_x,
                attack_y,
                rounds=profile_rounds,
                config=profile_config,
                extra_bits=extra_secured_bits,
            )
            defender = DNNDefender(
                controller,
                protection.plan,
                config=defender_config,
                reserved_rows=reserved_rows,
            )
            from repro.defenses.protocol import SecuredBitsDefense

            # Protocol view over the hooked defender: same secured set,
            # so attackers query protected_bits() uniformly.
            defense_obj = SecuredBitsDefense(qmodel, defender.secured_bits)
        else:
            from repro.defenses.protocol import DefenseContext
            from repro.defenses.registry import build_defense

            defense_obj = build_defense(
                defense,
                DefenseContext(
                    qmodel=qmodel,
                    dataset=dataset,
                    seed=seed,
                    params=dict(defense_params or {}),
                    controller=controller,
                    timing=timing,
                ),
            )
            qmodel = defense_obj.qmodel  # transforms may replace the model
        return cls(
            dataset=dataset,
            qmodel=qmodel,
            controller=controller,
            layout=layout,
            protection=protection,
            defender=defender,
            checker=checker,
            defense=defense_obj,
            defense_name=defense,
            attacker_name=attacker,
            seed=seed,
            defense_params=dict(defense_params or {}),
        )

    @classmethod
    def from_preset(
        cls,
        preset,
        geometry: DramGeometry,
        timing: TimingParams,
        **kwargs,
    ) -> "DefendedDeployment":
        """Build from a :class:`repro.presets.TrainedPreset`.

        Convenience used by scenarios: instantiates a fresh victim from
        the preset's trained state and deploys it over the preset's
        dataset.  ``kwargs`` forward to :meth:`build`.
        """
        return cls.build(
            preset.fresh_model(), preset.dataset,
            geometry=geometry, timing=timing, **kwargs,
        )

    # ------------------------------------------------------------------ #
    # Attack-side adapters
    # ------------------------------------------------------------------ #

    def hammer_executor(self, chunks_per_window: int = 4) -> HammerExecutor:
        """Full-DRAM attack path: flips go through hammered activations with
        the defender ticking in between."""
        attacker = RowHammerAttacker(
            self.controller,
            self.layout,
            defense=self.defender,
            chunks_per_window=chunks_per_window,
        )
        return HammerExecutor(attacker)

    def logical_executor(self) -> LogicalDefenseExecutor:
        """Fast analytical path with the same secured-bit semantics."""
        if self.defender is None:
            raise ValueError(
                f"deployment built with defense={self.defense_name!r} has "
                "no DNN-Defender secured-bit set; use flip_executor()"
            )
        return LogicalDefenseExecutor(self.qmodel, self.defender.secured_bits)

    def flip_executor(self):
        """The deployment's defense-wrapped flip path, defense-agnostic."""
        return self.defense.executor()

    def attack_context(self, budget: int = 25, params: dict | None = None):
        """An :class:`repro.attacks.protocol.AttackContext` over this
        deployment: the defense's executor, the defense object for
        defense-aware attackers, and the deployment's seed."""
        from repro.attacks.protocol import AttackContext

        return AttackContext(
            qmodel=self.qmodel,
            dataset=self.dataset,
            seed=self.seed,
            budget=budget,
            executor=self.flip_executor(),
            defense=self.defense,
            params=dict(params or {}),
        )

    def run_attack(
        self,
        attacker: str | None = None,
        budget: int = 25,
        params: dict | None = None,
    ):
        """Execute a registered attacker against this deployment.

        ``attacker`` defaults to the name given at :meth:`build` time;
        returns the uniform :class:`repro.attacks.protocol.AttackOutcome`.
        """
        from repro.attacks.registry import build_attacker

        name = attacker if attacker is not None else self.attacker_name
        if name is None:
            raise ValueError(
                "no attacker named: pass attacker=... here or at build()"
            )
        return build_attacker(name).execute(
            self.attack_context(budget=budget, params=params)
        )

    def accuracy(self) -> float:
        return evaluate(
            self.qmodel.model, self.dataset.x_test, self.dataset.y_test
        )

    def close(self) -> None:
        """Detach the defense's controller hooks (idempotent)."""
        if self.defense is not None:
            self.defense.close()

    def __enter__(self) -> "DefendedDeployment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
