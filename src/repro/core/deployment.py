"""One-call wiring of the full defended system.

Builds the stack the paper's Fig. 7 framework evaluates: quantize a trained
model, place it in simulated DRAM, profile its vulnerable bits, and stand up
a DNN-Defender instance over the resulting protection plan.  Examples,
benchmarks and integration tests all start here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.bfa import BfaConfig
from repro.attacks.executor import LogicalDefenseExecutor
from repro.attacks.hammer import HammerExecutor, RowHammerAttacker
from repro.core.config import DefenderConfig
from repro.core.defender import DNNDefender
from repro.core.priority import PriorityProtection, build_priority_plan
from repro.dram.controller import MemoryController
from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.dram.timing import TimingParams
from repro.dram.timing_rules import TimingChecker
from repro.mapping.layout import WeightLayout
from repro.nn.data import Dataset
from repro.nn.module import Module
from repro.nn.quant import BitLocation, QuantizedModel
from repro.nn.train import evaluate

__all__ = ["DefendedDeployment"]


@dataclass
class DefendedDeployment:
    """A quantized model living in defended DRAM."""

    dataset: Dataset
    qmodel: QuantizedModel
    controller: MemoryController
    layout: WeightLayout
    protection: PriorityProtection
    defender: DNNDefender
    checker: "TimingChecker | None" = None

    @classmethod
    def build(
        cls,
        model: Module,
        dataset: Dataset,
        geometry: DramGeometry,
        timing: TimingParams,
        profile_rounds: int = 2,
        profile_config: BfaConfig | None = None,
        defender_config: DefenderConfig | None = None,
        attack_batch_size: int = 128,
        reserved_rows: int = 2,
        extra_secured_bits: set[BitLocation] | None = None,
        timing_check: str = "off",
        seed: int = 0,
    ) -> "DefendedDeployment":
        """Quantize, place, profile, and defend ``model``.

        ``timing_check`` attaches a :class:`TimingChecker` to the
        controller before any command is issued: ``"strict"`` raises on
        the first DDR timing-rule violation anywhere in the defended
        stack, ``"audit"`` collects violations on ``deployment.checker``
        for later inspection, ``"off"`` (default) adds no observer.
        """
        rng = np.random.default_rng(seed)
        qmodel = QuantizedModel(model)
        controller = MemoryController(DramDevice(geometry), timing)
        checker = (
            TimingChecker(controller, mode=timing_check)
            if timing_check != "off" else None
        )
        layout = WeightLayout(
            qmodel, controller, reserved_rows=reserved_rows, seed=seed
        )
        attack_x, attack_y = dataset.attack_batch(attack_batch_size, rng)
        protection = build_priority_plan(
            layout,
            attack_x,
            attack_y,
            rounds=profile_rounds,
            config=profile_config,
            extra_bits=extra_secured_bits,
        )
        defender = DNNDefender(
            controller,
            protection.plan,
            config=defender_config,
            reserved_rows=reserved_rows,
        )
        return cls(
            dataset=dataset,
            qmodel=qmodel,
            controller=controller,
            layout=layout,
            protection=protection,
            defender=defender,
            checker=checker,
        )

    @classmethod
    def from_preset(
        cls,
        preset,
        geometry: DramGeometry,
        timing: TimingParams,
        **kwargs,
    ) -> "DefendedDeployment":
        """Build from a :class:`repro.presets.TrainedPreset`.

        Convenience used by scenarios: instantiates a fresh victim from
        the preset's trained state and deploys it over the preset's
        dataset.  ``kwargs`` forward to :meth:`build`.
        """
        return cls.build(
            preset.fresh_model(), preset.dataset,
            geometry=geometry, timing=timing, **kwargs,
        )

    # ------------------------------------------------------------------ #
    # Attack-side adapters
    # ------------------------------------------------------------------ #

    def hammer_executor(self, chunks_per_window: int = 4) -> HammerExecutor:
        """Full-DRAM attack path: flips go through hammered activations with
        the defender ticking in between."""
        attacker = RowHammerAttacker(
            self.controller,
            self.layout,
            defense=self.defender,
            chunks_per_window=chunks_per_window,
        )
        return HammerExecutor(attacker)

    def logical_executor(self) -> LogicalDefenseExecutor:
        """Fast analytical path with the same secured-bit semantics."""
        return LogicalDefenseExecutor(self.qmodel, self.defender.secured_bits)

    def accuracy(self) -> float:
        return evaluate(
            self.qmodel.model, self.dataset.x_test, self.dataset.y_test
        )
