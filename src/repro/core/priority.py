"""Priority protection: profiling-driven protection plans (Section 4).

The defender runs the attacker's own multi-round bit search on a model copy
(:func:`repro.attacks.profile.profile_vulnerable_bits`), takes the union of
the discovered vulnerable bits, and secures the DRAM rows holding them.
``rounds`` is the protection-level knob: more rounds -> more secured bits ->
Fig. 9's larger SB budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.bfa import BfaConfig
from repro.attacks.profile import ProfileResult, profile_vulnerable_bits
from repro.mapping.layout import WeightLayout
from repro.mapping.victim import ProtectionPlan, build_protection_plan
from repro.nn.quant import BitLocation

__all__ = ["PriorityProtection", "build_priority_plan"]


@dataclass
class PriorityProtection:
    """A protection plan plus the profiling evidence behind it."""

    plan: ProtectionPlan
    profile: ProfileResult

    @property
    def secured_bits(self) -> set[BitLocation]:
        return self.plan.secured_bits

    @property
    def num_secured_bits(self) -> int:
        return len(self.plan.secured_bits)


def build_priority_plan(
    layout: WeightLayout,
    attack_x: np.ndarray,
    attack_y: np.ndarray,
    rounds: int = 3,
    config: BfaConfig | None = None,
    extra_bits: set[BitLocation] | None = None,
) -> PriorityProtection:
    """Profile vulnerable bits and classify the layout's rows.

    Args:
        layout: the deployed weight layout (provides the model and the
            bit-to-row mapping).
        attack_x / attack_y: the batch used for gradient ranking — the same
            kind of data the attacker holds, per Section 4 ("we propose
            using the same attack searching algorithm adopted by an
            attacker").
        rounds: number of restore-and-skip profiling rounds.
        config: bit-search parameters.
        extra_bits: additional bits to secure on top of the profile (lets
            benchmarks sweep the secured-bit budget like Fig. 9).
    """
    profile = profile_vulnerable_bits(
        layout.qmodel, attack_x, attack_y, rounds=rounds, config=config
    )
    secured = profile.all_bits | set(extra_bits or ())
    plan = build_protection_plan(layout, secured)
    return PriorityProtection(plan=plan, profile=profile)
