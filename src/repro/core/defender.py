"""DNN-Defender: victim-focused, priority-driven in-DRAM swap defense.

The defender owns a :class:`ProtectionPlan` (target rows = rows holding
profiler-identified vulnerable bits; non-target rows = remaining weight
rows) and runs a swap pass every scheduling period.  Per pass, each bank
refreshes its target rows with pipelined four-step swaps (Fig. 5/6) under a
per-bank budget derived from the paper's timing constraint — swaps beyond
``(T_ACT x T_RH) / T_swap`` per window are deferred round-robin, which is
exactly how an overloaded defender starts leaking flips.

The defender plugs into the attack loop through the ``tick()`` protocol
(:class:`repro.attacks.hammer.TickingDefense`): the hammer driver calls
``tick()`` between activation bursts, and the defender catches up on any
scheduling periods that have elapsed on the controller clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DefenderConfig
from repro.core.pipeline import max_swaps_per_window
from repro.core.swap import SwapEngine
from repro.dram.address import RowAddress
from repro.dram.controller import MemoryController
from repro.mapping.victim import ProtectionPlan
from repro.nn.quant import BitLocation

__all__ = ["DefenderStats", "DNNDefender"]


@dataclass
class DefenderStats:
    """Operational counters of a defender instance."""

    windows_run: int = 0
    swaps_executed: int = 0
    non_targets_refreshed: int = 0
    deferred_swaps: int = 0
    per_window_swaps: list[int] = field(default_factory=list)


@dataclass
class _BankSchedule:
    """Round-robin swap schedule of one bank."""

    # Target rows grouped per sub-array, flattened in scan order.
    targets: list[RowAddress] = field(default_factory=list)
    non_targets_by_subarray: dict[int, list[RowAddress]] = field(
        default_factory=dict
    )
    cursor: int = 0
    nt_cursor: dict[int, int] = field(default_factory=dict)


class DNNDefender:
    """The paper's defense mechanism, operating on a live controller."""

    def __init__(
        self,
        controller: MemoryController,
        plan: ProtectionPlan,
        config: DefenderConfig | None = None,
        reserved_rows: int = 2,
    ):
        self.controller = controller
        self.plan = plan
        self.config = config or DefenderConfig()
        self.engine = SwapEngine(
            controller, reserved_rows=reserved_rows, actor="defender"
        )
        self.rng = np.random.default_rng(self.config.rng_seed)
        self.stats = DefenderStats()
        self.period_ns = (
            controller.timing.hammer_window_ns * self.config.period_fraction
        )
        self._next_due = 0.0
        # Algorithm 1's DD_Start / DD_Interrupt control: an interrupted
        # defender stops issuing swaps until resumed.
        self.enabled = True
        self._banks: dict[int, _BankSchedule] = {}
        for row in plan.target_rows:
            schedule = self._banks.setdefault(row.bank, _BankSchedule())
            schedule.targets.append(row)
        for row in plan.non_target_rows:
            schedule = self._banks.setdefault(row.bank, _BankSchedule())
            schedule.non_targets_by_subarray.setdefault(row.subarray, []).append(row)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def secured_bits(self) -> set[BitLocation]:
        """The secured-bit set (a white-box attacker learns this)."""
        return self.plan.secured_bits

    def bank_budget(self) -> int:
        """Swaps one bank may run per pass (paper's per-window constraint,
        scaled to the scheduling period)."""
        per_window = max_swaps_per_window(
            self.controller.timing, pipelined=self.config.pipelined
        )
        budget = int(per_window * self.config.period_fraction)
        return max(budget, 1)

    @property
    def defender_busy_ns(self) -> float:
        return self.controller.actor_stats("defender").total_time_ns

    def latency_per_tref_ms(self) -> float:
        """Average defender busy time per refresh interval (Fig. 8b metric)."""
        elapsed = self.controller.now_ns
        if elapsed <= 0:
            return 0.0
        refresh_intervals = max(elapsed / self.controller.timing.t_ref_ns, 1e-9)
        return self.defender_busy_ns / refresh_intervals / 1e6

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def interrupt(self) -> None:
        """Algorithm 1's DD_Interrupt: suspend protection."""
        self.enabled = False

    def resume(self) -> None:
        """Re-arm protection (DD_Start); overdue periods are not replayed."""
        self.enabled = True
        self._next_due = max(self._next_due, self.controller.now_ns)

    def tick(self) -> None:
        """Catch up on every scheduling period elapsed on the clock."""
        if not self.enabled:
            return
        while self.controller.now_ns >= self._next_due:
            due_at = self._next_due
            self.run_window()
            # Swaps advance the clock; schedule relative to the original due
            # time but never re-run for periods we already covered.
            self._next_due = max(
                due_at + self.period_ns,
                self.controller.now_ns - self.period_ns + 1e-9,
            )

    def run_window(self) -> int:
        """One swap pass over all banks; returns swaps executed."""
        swaps_this_window = 0
        for bank_index in sorted(self._banks):
            swaps_this_window += self._run_bank(self._banks[bank_index])
        self.stats.windows_run += 1
        self.stats.per_window_swaps.append(swaps_this_window)
        return swaps_this_window

    def _run_bank(self, schedule: _BankSchedule) -> int:
        if not schedule.targets:
            return 0
        budget = self.bank_budget()
        n_targets = len(schedule.targets)
        to_run = min(budget, n_targets)
        self.stats.deferred_swaps += max(0, n_targets - to_run)
        executed = 0
        target_set = set(schedule.targets)
        for _ in range(to_run):
            target = schedule.targets[schedule.cursor % n_targets]
            schedule.cursor += 1
            non_target = None
            if self.config.protect_non_targets:
                non_target = self._next_non_target(schedule, target)
            record = self.engine.swap_target(
                target,
                rng=self.rng,
                non_target_logical=non_target,
                exclude=target_set,
                pipelined=self.config.pipelined,
            )
            executed += 1
            self.stats.swaps_executed += 1
            if record.non_target_refreshed is not None:
                self.stats.non_targets_refreshed += 1
        return executed

    def _next_non_target(
        self, schedule: _BankSchedule, target: RowAddress
    ) -> RowAddress | None:
        """Pick the step-4 row: a non-target victim in the target's current
        physical sub-array."""
        physical = self.controller.indirection.physical(target)
        rows = schedule.non_targets_by_subarray.get(physical.subarray, [])
        candidates = [
            row for row in rows
            if self.controller.indirection.physical(row).same_subarray(physical)
        ]
        if not candidates:
            return None
        cursor = schedule.nt_cursor.get(physical.subarray, 0)
        chosen = candidates[cursor % len(candidates)]
        schedule.nt_cursor[physical.subarray] = cursor + 1
        return chosen
