"""DNN-Defender core: the paper's primary contribution."""

from repro.core.config import DefenderConfig
from repro.core.defender import DefenderStats, DNNDefender
from repro.core.deployment import DefendedDeployment
from repro.core.pipeline import (
    TimelineEntry,
    build_timeline,
    chain_aap_count,
    chain_latency_ns,
    max_swaps_per_window,
)
from repro.core.priority import PriorityProtection, build_priority_plan
from repro.core.swap import SwapEngine, SwapRecord

__all__ = [
    "DefenderConfig",
    "DefenderStats",
    "DNNDefender",
    "DefendedDeployment",
    "TimelineEntry",
    "build_timeline",
    "chain_aap_count",
    "chain_latency_ns",
    "max_swaps_per_window",
    "PriorityProtection",
    "build_priority_plan",
    "SwapEngine",
    "SwapRecord",
]
