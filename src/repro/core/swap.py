"""The four-step in-DRAM swap (Fig. 5 / Algorithm 1).

One swap protects one *target* row:

1. a random data row of the same sub-array is RowCloned into the sub-array's
   reserved row;
2. the target row is RowCloned onto the random row's position — this
   activation refreshes the target's cells and "resets the attacker" (the
   data moved, so accumulated disturbance is against stale cells);
3. the reserved copy (the random row's data) is RowCloned into the target's
   original position, completing the exchange;
4. a *non-target* victim row is RowCloned into the reserved row.  The copy
   activates (hence refreshes) the non-target row, and its image in the
   reserved row doubles as the next swap's step-1 result — that overlap is
   the Fig. 6 pipelining that makes the steady-state cost ``3 x T_AAP``.

All copies are same-sub-array RowClone FPM operations; the logical-to-
physical indirection table is updated so software (and the white-box
attacker) can follow the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dram.address import RowAddress
from repro.dram.controller import MemoryController

__all__ = ["SwapRecord", "SwapEngine"]


@dataclass
class SwapRecord:
    """Bookkeeping for one executed four-step swap."""

    target_logical: RowAddress
    random_logical: RowAddress
    aaps_issued: int
    reused_reserved: bool          # pipelined: step 1 came for free
    non_target_refreshed: RowAddress | None = None


@dataclass
class _SubarrayState:
    """Per-sub-array reserved-row bookkeeping."""

    reserved_physical: RowAddress
    # Logical row whose data currently sits in the reserved row (valid for
    # reuse as the next swap's random row), or None when stale.
    staged_logical: RowAddress | None = None
    records: list[SwapRecord] = field(default_factory=list)


class SwapEngine:
    """Executes DNN-Defender swaps against a memory controller."""

    def __init__(
        self,
        controller: MemoryController,
        reserved_rows: int = 2,
        actor: str = "defender",
    ):
        if reserved_rows < 1:
            raise ValueError("need at least one reserved row per sub-array")
        self.controller = controller
        self.reserved_rows = reserved_rows
        self.actor = actor
        self._states: dict[tuple[int, int], _SubarrayState] = {}
        # Data-region row addresses per sub-array, built once per
        # (geometry, reserved_rows) and shared across engines: step 1
        # picks from the same fixed pool every swap, so rebuilding the
        # address objects per call (or per engine) was pure overhead.
        key = (controller.device.geometry, reserved_rows)
        pools = SwapEngine._shared_pools.get(key)
        if pools is None:
            pools = SwapEngine._shared_pools[key] = {}
        self._row_pools: dict[tuple[int, int], list[RowAddress]] = pools
        self.total_aaps = 0
        self.total_swaps = 0
        self.rng_draws = 0

    _shared_pools: dict[tuple, dict[tuple[int, int], list[RowAddress]]] = {}

    # ------------------------------------------------------------------ #
    # Sub-array state
    # ------------------------------------------------------------------ #

    def _state(self, bank: int, subarray: int) -> _SubarrayState:
        key = (bank, subarray)
        state = self._states.get(key)
        if state is None:
            last = self.controller.device.geometry.rows_per_subarray - 1
            state = _SubarrayState(
                reserved_physical=RowAddress(bank, subarray, last)
            )
            self._states[key] = state
        return state

    def data_region_end(self, subarray_rows: int) -> int:
        return subarray_rows - self.reserved_rows

    def _row_pool(self, bank: int, subarray: int) -> list[RowAddress]:
        key = (bank, subarray)
        pool = self._row_pools.get(key)
        if pool is None:
            geometry = self.controller.device.geometry
            end = self.data_region_end(geometry.rows_per_subarray)
            pool = [RowAddress(bank, subarray, row) for row in range(end)]
            self._row_pools[key] = pool
        return pool

    def _pick_random_row(
        self,
        target_physical: RowAddress,
        exclude: set[RowAddress],
        rng: np.random.Generator,
    ) -> RowAddress:
        """Random same-sub-array data row for swap step 1."""
        if getattr(self.controller, "fast_path", True):
            pool = self._row_pool(
                target_physical.bank, target_physical.subarray
            )
        else:
            # Slow-path emulation for `repro bench`: rebuild the candidate
            # addresses per call, as the pre-optimization code did.
            geometry = self.controller.device.geometry
            end = self.data_region_end(geometry.rows_per_subarray)
            pool = [
                RowAddress(target_physical.bank, target_physical.subarray, row)
                for row in range(end)
            ]
        candidates = [
            addr
            for addr in pool
            if addr not in exclude and addr.row != target_physical.row
        ]
        if not candidates:
            raise RuntimeError(
                f"no random-row candidate in sub-array "
                f"({target_physical.bank}, {target_physical.subarray})"
            )
        self.rng_draws += 1
        self.controller.generate_random_row(actor=self.actor)
        return candidates[int(rng.integers(0, len(candidates)))]

    def _clone(self, src: RowAddress, dst: RowAddress) -> None:
        self.controller.rowclone(src, dst, actor=self.actor)
        self.total_aaps += 1

    # ------------------------------------------------------------------ #
    # The four-step swap
    # ------------------------------------------------------------------ #

    def swap_target(
        self,
        target_logical: RowAddress,
        rng: np.random.Generator,
        non_target_logical: RowAddress | None = None,
        exclude: set[RowAddress] | None = None,
        pipelined: bool = True,
    ) -> SwapRecord:
        """Protect one target row (Fig. 5 steps 1-4).

        Args:
            target_logical: the row to protect (logical address).
            rng: the defender's random stream for step 1.
            non_target_logical: victim row refreshed in step 4 (same
                sub-array); skipped if None.
            exclude: logical rows that must not be chosen as the random row
                (e.g. other target rows awaiting their own swap).
            pipelined: reuse the reserved row's staged data from the
                previous swap's step 4 as this swap's random row (Fig. 6).
        """
        ind = self.controller.indirection
        target_physical = ind.physical(target_logical)
        state = self._state(target_physical.bank, target_physical.subarray)
        exclude_physical = (
            ind.physical_set(exclude) if exclude else set()
        )
        exclude_physical.add(state.reserved_physical)

        reused = False
        if (
            pipelined
            and state.staged_logical is not None
            and ind.physical(state.staged_logical).same_subarray(target_physical)
            and state.staged_logical != target_logical
            and ind.physical(state.staged_logical) not in exclude_physical
        ):
            # Step 1 for free: the reserved row already holds the staged
            # (previous step-4) row's data.
            random_logical = state.staged_logical
            reused = True
        else:
            random_physical = self._pick_random_row(
                target_physical, exclude_physical, rng
            )
            random_logical = ind.logical(random_physical)
            self._clone(random_physical, state.reserved_physical)  # step 1

        random_physical = ind.physical(random_logical)
        # Step 2: target data -> random row's position.
        self._clone(target_physical, random_physical)
        # Step 3: reserved (random row's data) -> target's old position.
        self._clone(state.reserved_physical, target_physical)
        ind.swap(target_logical, random_logical)
        state.staged_logical = None

        refreshed: RowAddress | None = None
        if non_target_logical is not None:
            nt_physical = ind.physical(non_target_logical)
            if not nt_physical.same_subarray(target_physical):
                raise ValueError(
                    "step-4 non-target row must live in the target's "
                    f"sub-array; got {nt_physical} vs {target_physical}"
                )
            # Step 4: non-target -> reserved (refreshes the non-target and
            # stages it as the next swap's random row).
            self._clone(nt_physical, state.reserved_physical)
            state.staged_logical = non_target_logical
            refreshed = non_target_logical

        record = SwapRecord(
            target_logical=target_logical,
            random_logical=random_logical,
            aaps_issued=(0 if reused else 1) + 2 + (1 if refreshed else 0),
            reused_reserved=reused,
            non_target_refreshed=refreshed,
        )
        state.records.append(record)
        self.total_swaps += 1
        return record

    def records_for(self, bank: int, subarray: int) -> list[SwapRecord]:
        return list(self._state(bank, subarray).records)
