"""DNN-Defender configuration."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DefenderConfig"]


@dataclass(frozen=True)
class DefenderConfig:
    """Knobs of the DNN-Defender mechanism.

    Attributes:
        period_fraction: how often the defender runs relative to the hammer
            window ``T_ACT x T_RH``.  Every target row must be refreshed at
            least once per window (Section 4, Timing Considerations); running
            at half the window leaves slack for scheduling jitter.
        pipelined: overlap step 1 of swap *n+1* with step 4 of swap *n*
            (Fig. 6), bringing the steady-state swap cost from ``4 x T_AAP``
            down to ``3 x T_AAP``.
        protect_non_targets: execute swap step 4 (opportunistic refresh of a
            non-target victim row per swap).
        rng_seed: seed of the defender's random-row selector.
    """

    period_fraction: float = 0.5
    pipelined: bool = True
    protect_non_targets: bool = True
    rng_seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.period_fraction <= 1.0:
            raise ValueError(
                "period_fraction must be in (0, 1]: the defender must run at "
                "least once per hammer window to meet the refresh deadline"
            )
