"""Pre-configured model/dataset combinations used by examples and benchmarks.

The paper evaluates VGG-11 and ResNet-20 on CIFAR-10 and ResNet-18/34 on
ImageNet.  These presets instantiate the same architectures at a
configurable scale (width multiplier, image size, synthetic dataset size)
so every experiment runs on CPU in seconds while keeping the architecture
topology — and therefore the attack/defense dynamics — intact.

Each preset returns ``(model_factory, trained_state, dataset)``: a factory
producing a freshly initialised copy of the architecture, the trained
weights, and the dataset.  Experiments that need several fresh victims
(every attack mutates its model) rebuild from the factory + state.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.data import Dataset, cifar10_like, imagenet_like
from repro.nn.models import make_resnet18, make_resnet20, make_resnet34, make_vgg11
from repro.nn.module import Module
from repro.nn.train import fit

__all__ = [
    "TrainedPreset",
    "resnet20_cifar",
    "vgg11_cifar",
    "resnet18_imagenet",
    "resnet34_imagenet",
]

ModelFactory = Callable[[], Module]


class TrainedPreset:
    """A trained architecture + dataset bundle."""

    def __init__(
        self,
        name: str,
        factory: ModelFactory,
        dataset: Dataset,
        epochs: int,
        lr: float,
        seed: int,
        min_accuracy: float,
    ):
        self.name = name
        self.factory = factory
        self.dataset = dataset
        model = factory()
        self.history = fit(
            model, dataset, epochs=epochs, batch_size=64, lr=lr, seed=seed
        )
        self.state = model.state_dict()
        self.clean_accuracy = self.history["test_accuracy"][-1]
        if self.clean_accuracy < min_accuracy:
            raise RuntimeError(
                f"preset {name} trained to {self.clean_accuracy:.2%}, below "
                f"the {min_accuracy:.0%} floor; attack results would be "
                "meaningless"
            )

    def fresh_model(self) -> Module:
        model = self.factory()
        model.load_state_dict(self.state)
        model.eval()
        return model


def resnet20_cifar(
    width_scale: float = 0.5,
    image_hw: int = 8,
    n_train: int = 1024,
    n_test: int = 384,
    epochs: int = 6,
    seed: int = 0,
) -> TrainedPreset:
    """ResNet-20 on the CIFAR-10 stand-in (Table 3's victim model)."""
    dataset = cifar10_like(n_train=n_train, n_test=n_test,
                           image_hw=image_hw, seed=seed)
    return TrainedPreset(
        "resnet20-cifar10",
        lambda: make_resnet20(num_classes=10, width_scale=width_scale,
                              seed=seed),
        dataset, epochs=epochs, lr=0.08, seed=seed, min_accuracy=0.6,
    )


def vgg11_cifar(
    width_scale: float = 0.125,
    image_hw: int = 8,
    n_train: int = 1024,
    n_test: int = 384,
    epochs: int = 6,
    seed: int = 0,
) -> TrainedPreset:
    """VGG-11 on the CIFAR-10 stand-in (Fig. 9a's victim model)."""
    dataset = cifar10_like(n_train=n_train, n_test=n_test,
                           image_hw=image_hw, seed=seed)
    return TrainedPreset(
        "vgg11-cifar10",
        lambda: make_vgg11(num_classes=10, input_size=image_hw,
                           width_scale=width_scale, seed=seed),
        dataset, epochs=epochs, lr=0.05, seed=seed, min_accuracy=0.6,
    )


def resnet18_imagenet(
    width_scale: float = 0.0625,
    num_classes: int = 20,
    image_hw: int = 8,
    n_train: int = 1536,
    n_test: int = 512,
    epochs: int = 6,
    seed: int = 0,
) -> TrainedPreset:
    """ResNet-18 on the ImageNet stand-in (Fig. 9b's victim model)."""
    dataset = imagenet_like(num_classes=num_classes, n_train=n_train,
                            n_test=n_test, image_hw=image_hw, seed=seed)
    return TrainedPreset(
        "resnet18-imagenet",
        lambda: make_resnet18(num_classes=num_classes,
                              width_scale=width_scale, seed=seed),
        dataset, epochs=epochs, lr=0.08, seed=seed, min_accuracy=0.5,
    )


def resnet34_imagenet(
    width_scale: float = 0.0625,
    num_classes: int = 20,
    image_hw: int = 8,
    n_train: int = 1536,
    n_test: int = 512,
    epochs: int = 6,
    seed: int = 0,
) -> TrainedPreset:
    """ResNet-34 on the ImageNet stand-in (Figs. 1b and 9c)."""
    dataset = imagenet_like(num_classes=num_classes, n_train=n_train,
                            n_test=n_test, image_hw=image_hw, seed=seed)
    return TrainedPreset(
        "resnet34-imagenet",
        lambda: make_resnet34(num_classes=num_classes,
                              width_scale=width_scale, seed=seed),
        dataset, epochs=epochs, lr=0.08, seed=seed, min_accuracy=0.5,
    )
