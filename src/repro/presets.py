"""Pre-configured model/dataset combinations used by examples and benchmarks.

The paper evaluates VGG-11 and ResNet-20 on CIFAR-10 and ResNet-18/34 on
ImageNet.  These presets instantiate the same architectures at a
configurable scale (width multiplier, image size, synthetic dataset size)
so every experiment runs on CPU in seconds while keeping the architecture
topology — and therefore the attack/defense dynamics — intact.

Two layers live here:

* :class:`PresetSpec` — a frozen, declarative recipe (architecture +
  dataset + training hyper-parameters).  It can cheaply rebuild the
  dataset and an untrained model factory, and it hashes to a stable cache
  key, which is what :class:`repro.experiments.PresetCache` uses to store
  trained weights on disk so each recipe trains **once ever** instead of
  once per session.
* :class:`TrainedPreset` — the realised bundle: factory + trained state +
  dataset.  Experiments that need several fresh victims (every attack
  mutates its model) rebuild from the factory + state via
  :meth:`TrainedPreset.fresh_model`.

The four public helpers (:func:`resnet20_cifar`, :func:`vgg11_cifar`,
:func:`resnet18_imagenet`, :func:`resnet34_imagenet`) keep their original
train-on-call behaviour; pass their names to
:func:`repro.experiments.PresetCache.load` to get the cached path.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.nn.data import Dataset, cifar10_like, imagenet_like
from repro.nn.models import make_resnet18, make_resnet20, make_resnet34, make_vgg11
from repro.nn.module import Module
from repro.nn.train import fit

__all__ = [
    "ModelFactory",
    "PresetSpec",
    "TrainedPreset",
    "PRESET_NAMES",
    "preset_spec",
    "resnet20_cifar",
    "vgg11_cifar",
    "resnet18_imagenet",
    "resnet34_imagenet",
]

ModelFactory = Callable[[], Module]


class TrainedPreset:
    """A trained architecture + dataset bundle.

    Construct with ``state``/``history`` to adopt previously-trained
    weights (the preset-cache warm path); otherwise ``__init__`` trains
    the model with :func:`repro.nn.train.fit` and verifies the resulting
    test accuracy clears ``min_accuracy`` — attack experiments on a model
    that never learned are meaningless.

    Attributes:
        name: Preset identifier, e.g. ``"resnet20-cifar10"``.
        factory: Zero-argument callable producing a fresh, untrained copy
            of the architecture.
        dataset: The synthetic train/test split used for training and for
            attack batches.
        state: Trained weights/buffers (a ``state_dict``).
        history: Per-epoch ``{"loss": [...], "test_accuracy": [...]}``.
        clean_accuracy: Final test accuracy of the trained weights.
    """

    def __init__(
        self,
        name: str,
        factory: ModelFactory,
        dataset: Dataset,
        epochs: int = 0,
        lr: float = 0.0,
        seed: int = 0,
        min_accuracy: float = 0.0,
        state: dict[str, np.ndarray] | None = None,
        history: dict[str, list[float]] | None = None,
    ):
        self.name = name
        self.factory = factory
        self.dataset = dataset
        if state is not None and history is not None:
            self.state = state
            self.history = history
        else:
            model = factory()
            self.history = fit(
                model, dataset, epochs=epochs, batch_size=64, lr=lr, seed=seed
            )
            self.state = model.state_dict()
        self.clean_accuracy = self.history["test_accuracy"][-1]
        if self.clean_accuracy < min_accuracy:
            raise RuntimeError(
                f"preset {name} trained to {self.clean_accuracy:.2%}, below "
                f"the {min_accuracy:.0%} floor; attack results would be "
                "meaningless"
            )

    def fresh_model(self) -> Module:
        """Build a new model instance carrying the trained weights.

        Every attack mutates its victim in place, so experiments request a
        fresh copy per attack rather than sharing one instance.
        """
        model = self.factory()
        model.load_state_dict(self.state)
        model.eval()
        return model


@dataclass(frozen=True)
class PresetSpec:
    """Declarative recipe for a trained preset.

    Everything needed to (a) rebuild the dataset and model factory in
    milliseconds and (b) train the weights — split apart so a disk cache
    can skip (b) when it has seen the identical recipe before.

    Attributes:
        name: Public preset identifier (``"resnet20_cifar"`` …).
        arch: Architecture key: ``resnet20 | vgg11 | resnet18 | resnet34``.
        dataset_family: ``"cifar10"`` or ``"imagenet"`` stand-in.
        num_classes: Output classes (10 for CIFAR-10-like).
        width_scale: Channel-width multiplier applied to the architecture.
        image_hw: Square image side of the synthetic dataset.
        n_train / n_test: Synthetic dataset split sizes.
        epochs / lr / seed: Training hyper-parameters.
        min_accuracy: Floor the trained test accuracy must clear.
    """

    name: str
    arch: str
    dataset_family: str
    num_classes: int
    width_scale: float
    image_hw: int
    n_train: int
    n_test: int
    epochs: int
    lr: float
    seed: int
    min_accuracy: float

    def make_dataset(self) -> Dataset:
        """Synthesise the (deterministic, seed-keyed) dataset."""
        if self.dataset_family == "cifar10":
            return cifar10_like(
                n_train=self.n_train, n_test=self.n_test,
                image_hw=self.image_hw, seed=self.seed,
            )
        if self.dataset_family == "imagenet":
            return imagenet_like(
                num_classes=self.num_classes, n_train=self.n_train,
                n_test=self.n_test, image_hw=self.image_hw, seed=self.seed,
            )
        raise ValueError(f"unknown dataset family {self.dataset_family!r}")

    def make_factory(self) -> ModelFactory:
        """Zero-argument factory producing an untrained model."""
        if self.arch == "resnet20":
            return lambda: make_resnet20(
                num_classes=self.num_classes, width_scale=self.width_scale,
                seed=self.seed,
            )
        if self.arch == "vgg11":
            return lambda: make_vgg11(
                num_classes=self.num_classes, input_size=self.image_hw,
                width_scale=self.width_scale, seed=self.seed,
            )
        if self.arch == "resnet18":
            return lambda: make_resnet18(
                num_classes=self.num_classes, width_scale=self.width_scale,
                seed=self.seed,
            )
        if self.arch == "resnet34":
            return lambda: make_resnet34(
                num_classes=self.num_classes, width_scale=self.width_scale,
                seed=self.seed,
            )
        raise ValueError(f"unknown architecture {self.arch!r}")

    def config_dict(self) -> dict:
        """The full recipe as a plain dict — the cache-key payload."""
        return dataclasses.asdict(self)

    def cache_key(self) -> str:
        """Stable JSON serialisation of the recipe, hashed by the cache."""
        return json.dumps(self.config_dict(), sort_keys=True)

    def display_name(self) -> str:
        return f"{self.arch}-{self.dataset_family}"

    def realise(
        self,
        state: dict[str, np.ndarray] | None = None,
        history: dict[str, list[float]] | None = None,
    ) -> TrainedPreset:
        """Build the :class:`TrainedPreset`; trains unless ``state`` and
        ``history`` are supplied (the cache's warm path)."""
        return TrainedPreset(
            self.display_name(),
            self.make_factory(),
            self.make_dataset(),
            epochs=self.epochs,
            lr=self.lr,
            seed=self.seed,
            min_accuracy=self.min_accuracy,
            state=state,
            history=history,
        )


# min_accuracy floors re-pinned after SGD stopped weight-decaying biases
# and BatchNorm gamma/beta (the standard recipe); measured seed-0
# accuracies are 0.974 / 0.950 / 0.896 / 0.760 respectively, so each
# floor keeps ~8-10 points of margin.
_BASE_SPECS: dict[str, PresetSpec] = {
    "resnet20_cifar": PresetSpec(
        name="resnet20_cifar", arch="resnet20", dataset_family="cifar10",
        num_classes=10, width_scale=0.5, image_hw=8, n_train=1024,
        n_test=384, epochs=6, lr=0.08, seed=0, min_accuracy=0.9,
    ),
    "vgg11_cifar": PresetSpec(
        name="vgg11_cifar", arch="vgg11", dataset_family="cifar10",
        num_classes=10, width_scale=0.125, image_hw=8, n_train=1024,
        n_test=384, epochs=6, lr=0.05, seed=0, min_accuracy=0.85,
    ),
    "resnet18_imagenet": PresetSpec(
        name="resnet18_imagenet", arch="resnet18", dataset_family="imagenet",
        num_classes=20, width_scale=0.0625, image_hw=8, n_train=1536,
        n_test=512, epochs=6, lr=0.08, seed=0, min_accuracy=0.75,
    ),
    "resnet34_imagenet": PresetSpec(
        name="resnet34_imagenet", arch="resnet34", dataset_family="imagenet",
        num_classes=20, width_scale=0.0625, image_hw=8, n_train=1536,
        n_test=512, epochs=6, lr=0.08, seed=0, min_accuracy=0.65,
    ),
}

PRESET_NAMES: tuple[str, ...] = tuple(_BASE_SPECS)


def preset_spec(name: str, **overrides) -> PresetSpec:
    """Look up a named base recipe, optionally overriding any field.

    >>> preset_spec("resnet20_cifar", epochs=1, min_accuracy=0.0)
    """
    try:
        base = _BASE_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {', '.join(PRESET_NAMES)}"
        ) from None
    unknown = set(overrides) - {f.name for f in dataclasses.fields(PresetSpec)}
    if unknown:
        raise TypeError(f"unknown preset fields: {sorted(unknown)}")
    return dataclasses.replace(base, **overrides) if overrides else base


def resnet20_cifar(
    width_scale: float = 0.5,
    image_hw: int = 8,
    n_train: int = 1024,
    n_test: int = 384,
    epochs: int = 6,
    seed: int = 0,
) -> TrainedPreset:
    """ResNet-20 on the CIFAR-10 stand-in (Table 3's victim model)."""
    return preset_spec(
        "resnet20_cifar", width_scale=width_scale, image_hw=image_hw,
        n_train=n_train, n_test=n_test, epochs=epochs, seed=seed,
    ).realise()


def vgg11_cifar(
    width_scale: float = 0.125,
    image_hw: int = 8,
    n_train: int = 1024,
    n_test: int = 384,
    epochs: int = 6,
    seed: int = 0,
) -> TrainedPreset:
    """VGG-11 on the CIFAR-10 stand-in (Fig. 9a's victim model)."""
    return preset_spec(
        "vgg11_cifar", width_scale=width_scale, image_hw=image_hw,
        n_train=n_train, n_test=n_test, epochs=epochs, seed=seed,
    ).realise()


def resnet18_imagenet(
    width_scale: float = 0.0625,
    num_classes: int = 20,
    image_hw: int = 8,
    n_train: int = 1536,
    n_test: int = 512,
    epochs: int = 6,
    seed: int = 0,
) -> TrainedPreset:
    """ResNet-18 on the ImageNet stand-in (Fig. 9b's victim model)."""
    return preset_spec(
        "resnet18_imagenet", width_scale=width_scale,
        num_classes=num_classes, image_hw=image_hw, n_train=n_train,
        n_test=n_test, epochs=epochs, seed=seed,
    ).realise()


def resnet34_imagenet(
    width_scale: float = 0.0625,
    num_classes: int = 20,
    image_hw: int = 8,
    n_train: int = 1536,
    n_test: int = 512,
    epochs: int = 6,
    seed: int = 0,
) -> TrainedPreset:
    """ResNet-34 on the ImageNet stand-in (Figs. 1b and 9c)."""
    return preset_spec(
        "resnet34_imagenet", width_scale=width_scale,
        num_classes=num_classes, image_hw=image_hw, n_train=n_train,
        n_test=n_test, epochs=epochs, seed=seed,
    ).realise()
