"""Placement of quantized DNN weights into DRAM rows.

The threat model (Section 3, Fig. 4) gives the attacker a *mapping file*:
for every weight bit, the DRAM row and bit position that stores it.  This
module builds that mapping.  Placement follows the paper's assumption 2:
weight rows are neither concentrated in a couple of sub-arrays nor perfectly
evenly spread — a seeded scatter across all (bank, sub-array) pairs.

The same object serves both sides:

* the **attacker** resolves a :class:`BitLocation` to a logical row + bit,
  then follows the controller's indirection to the current physical row;
* the **runtime** syncs model weights from DRAM after an attack window, so
  any materialised flips show up in inference.

The top ``reserved_rows`` rows of every sub-array are excluded from
placement: they form the defender's reserved region (Fig. 5).  Rows are
interleaved with non-weight filler rows when ``spacing > 1`` so aggressor
rows usually hold unrelated data, as in a real co-located deployment.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.dram.address import RowAddress
from repro.dram.controller import MemoryController
from repro.nn.quant import BitLocation, QuantizedModel
from repro.utils.env import env_str

__all__ = ["RowSlot", "WeightLayout", "place_model"]


@dataclass(frozen=True)
class RowSlot:
    """One DRAM row's worth of one layer's packed weight bytes."""

    layer: int
    byte_offset: int   # offset of this row's first byte in the layer's bytes
    length: int        # number of weight bytes stored in this row
    logical_row: RowAddress


class WeightLayout:
    """Bidirectional weight-bit <-> DRAM-row mapping (the "mapping file")."""

    def __init__(
        self,
        qmodel: QuantizedModel,
        controller: MemoryController,
        reserved_rows: int = 2,
        spacing: int = 2,
        seed: int = 0,
    ):
        if reserved_rows < 1:
            raise ValueError("at least one reserved row per sub-array is needed")
        if spacing < 1:
            raise ValueError(f"spacing must be >= 1, got {spacing}")
        self.qmodel = qmodel
        self.controller = controller
        self.reserved_rows = reserved_rows
        self.spacing = spacing
        geometry = controller.device.geometry
        self.row_bytes = geometry.row_bytes
        self.slots: list[RowSlot] = []
        self._slot_by_row: dict[RowAddress, RowSlot] = {}
        self._rows_by_layer: dict[int, list[RowSlot]] = {}
        self._place(np.random.default_rng(seed))
        # Placement wrote every weight row, so model == DRAM right now;
        # incremental sync only needs rows dirtied after this point.
        self._synced_version = controller.content_version

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #

    def _candidate_rows(self, rng: np.random.Generator) -> list[RowAddress]:
        """Data rows available for weights, scattered over sub-arrays.

        Within each sub-array the data region is rows
        ``[1, rows_per_subarray - reserved_rows - 1)`` (row 0 and the last
        data row are kept as guard/filler so every weight row has in-sub-array
        neighbours), sampled every ``spacing`` rows.  Sub-array order is
        shuffled so consecutive layer rows land in different sub-arrays.
        """
        geometry = self.controller.device.geometry
        data_end = geometry.rows_per_subarray - self.reserved_rows
        per_subarray: list[list[RowAddress]] = []
        for bank in range(geometry.banks):
            for subarray in range(geometry.subarrays_per_bank):
                start = 1 + int(rng.integers(0, self.spacing))
                rows = [
                    RowAddress(bank, subarray, row)
                    for row in range(start, data_end - 1, self.spacing)
                ]
                per_subarray.append(rows)
        rng.shuffle(per_subarray)
        # Round-robin across sub-arrays: "most sub-arrays store several data
        # rows; some may store multiple or none" (threat model item 2).
        result: list[RowAddress] = []
        cursor = 0
        while any(per_subarray):
            block = per_subarray[cursor % len(per_subarray)]
            if block:
                result.append(block.pop(0))
            cursor += 1
            per_subarray = [b for b in per_subarray if b]
        return result

    def _place(self, rng: np.random.Generator) -> None:
        candidates = self._candidate_rows(rng)
        needed = sum(
            -(-layer.num_weights // self.row_bytes)   # ceil division
            for layer in self.qmodel.layers
        )
        if needed > len(candidates):
            raise ValueError(
                f"model needs {needed} rows but only {len(candidates)} data "
                "rows are available; use a larger geometry, smaller model, "
                "or smaller spacing"
            )
        cursor = 0
        for layer_index, layer in enumerate(self.qmodel.layers):
            packed = layer.packed_bytes()
            self._rows_by_layer[layer_index] = []
            for offset in range(0, packed.size, self.row_bytes):
                chunk = packed[offset:offset + self.row_bytes]
                logical = candidates[cursor]
                cursor += 1
                row_data = np.zeros(self.row_bytes, dtype=np.uint8)
                row_data[:chunk.size] = chunk
                self.controller.poke_logical(logical, row_data)
                slot = RowSlot(layer_index, offset, int(chunk.size), logical)
                self.slots.append(slot)
                self._slot_by_row[logical] = slot
                self._rows_by_layer[layer_index].append(slot)

    # ------------------------------------------------------------------ #
    # Mapping-file queries
    # ------------------------------------------------------------------ #

    @property
    def num_rows(self) -> int:
        return len(self.slots)

    def weight_rows(self) -> list[RowAddress]:
        return [slot.logical_row for slot in self.slots]

    def locate_bit(self, location: BitLocation) -> tuple[RowAddress, int]:
        """Map a weight bit to (logical row, bit index within the row)."""
        layer = self.qmodel.layer(location.layer)
        if not 0 <= location.index < layer.num_weights:
            raise ValueError(
                f"weight index {location.index} out of range for layer "
                f"{location.layer}"
            )
        if not 0 <= location.bit <= 7:
            raise ValueError(f"bit must be in [0, 7], got {location.bit}")
        slots = self._rows_by_layer[location.layer]
        slot = slots[location.index // self.row_bytes]
        byte_in_row = location.index - slot.byte_offset
        return slot.logical_row, byte_in_row * 8 + location.bit

    def locate_bits(
        self, locations: Sequence[BitLocation]
    ) -> list[tuple[RowAddress, int]]:
        """Map many weight bits to (logical row, bit-in-row) pairs.

        The batched counterpart of :meth:`locate_bit`, used by the
        multi-bit hammer path (:meth:`repro.attacks.hammer.
        RowHammerAttacker.attempt_flips`) to group targets by victim row;
        validation matches the scalar method exactly.
        """
        return [self.locate_bit(location) for location in locations]

    def slot_for_row(self, logical_row: RowAddress) -> RowSlot | None:
        return self._slot_by_row.get(logical_row)

    def bits_in_row(self, logical_row: RowAddress) -> list[BitLocation]:
        """All weight-bit locations stored in one logical row."""
        slot = self._slot_by_row.get(logical_row)
        if slot is None:
            return []
        return [
            BitLocation(slot.layer, slot.byte_offset + byte, bit)
            for byte in range(slot.length)
            for bit in range(8)
        ]

    def row_for_bits(self, locations: list[BitLocation]) -> set[RowAddress]:
        """Logical rows covering a set of weight bits (deduplicated)."""
        return {self.locate_bit(loc)[0] for loc in locations}

    # ------------------------------------------------------------------ #
    # Model <-> DRAM synchronisation
    # ------------------------------------------------------------------ #

    def sync_model_from_dram(self, full: bool | None = None) -> None:
        """Load DRAM weight-row contents into the model.

        By default this is *incremental*: only logical rows whose DRAM
        content changed since the last sync (RowHammer flips, defender
        copies, explicit writes — see
        :meth:`repro.dram.controller.MemoryController.dirty_rows_since`)
        are re-read, and each reloads just its byte slice of its layer.

        ``full=True`` (or ``REPRO_SYNC_MODE=full`` in the environment)
        forces the original re-read-everything path — the verifiable
        fallback the incremental path is parity-tested against.  The two
        are equivalent as long as model weights are only mutated through
        DRAM-consistent paths between syncs (the deployment contract);
        callers that mutated the model directly must request ``full``.
        """
        if full is None:
            full = env_str("REPRO_SYNC_MODE", "") == "full"
        if full:
            self._sync_model_full()
        else:
            for logical in self.controller.dirty_rows_since(
                self._synced_version
            ):
                slot = self._slot_by_row.get(logical)
                if slot is None:
                    continue  # collateral damage outside the weight rows
                row_data = self.controller.peek_logical(logical)
                self.qmodel.layer(slot.layer).load_packed_slice(
                    slot.byte_offset, row_data[:slot.length]
                )
        self._synced_version = self.controller.content_version

    def _sync_model_full(self) -> None:
        """Re-read every weight row and load the bytes into the model."""
        for layer_index, layer in enumerate(self.qmodel.layers):
            packed = np.empty(layer.num_weights, dtype=np.uint8)
            for slot in self._rows_by_layer[layer_index]:
                row_data = self.controller.peek_logical(slot.logical_row)
                packed[slot.byte_offset:slot.byte_offset + slot.length] = (
                    row_data[:slot.length]
                )
            layer.load_packed_bytes(packed)

    def sync_dram_from_model(self) -> None:
        """Write the model's current integer weights back into DRAM."""
        for layer_index, layer in enumerate(self.qmodel.layers):
            packed = layer.packed_bytes()
            for slot in self._rows_by_layer[layer_index]:
                row_data = np.zeros(self.row_bytes, dtype=np.uint8)
                chunk = packed[slot.byte_offset:slot.byte_offset + slot.length]
                row_data[:chunk.size] = chunk
                self.controller.poke_logical(slot.logical_row, row_data)
        # Every weight row was just rewritten from the model, so the two
        # sides are in lock-step again.
        self._synced_version = self.controller.content_version


def place_model(
    qmodel: QuantizedModel,
    controller: MemoryController,
    reserved_rows: int = 2,
    spacing: int = 2,
    seed: int = 0,
) -> WeightLayout:
    """Convenience constructor mirroring the paper's deployment step."""
    return WeightLayout(
        qmodel, controller, reserved_rows=reserved_rows, spacing=spacing,
        seed=seed,
    )
