"""Weight-to-DRAM placement and victim-row classification."""

from repro.mapping.layout import RowSlot, WeightLayout, place_model
from repro.mapping.victim import ProtectionPlan, build_protection_plan

__all__ = [
    "RowSlot",
    "WeightLayout",
    "place_model",
    "ProtectionPlan",
    "build_protection_plan",
]
