"""Victim-row classification: target vs. non-target rows (Section 4).

DNN-Defender partitions the protected data region of each sub-array into
*target* rows (hold profiler-identified vulnerable bits; highest protection
priority) and *non-target* rows (hold weights whose corruption barely moves
accuracy; refreshed opportunistically in swap step 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.address import RowAddress
from repro.mapping.layout import WeightLayout
from repro.nn.quant import BitLocation

__all__ = ["ProtectionPlan", "build_protection_plan"]


@dataclass
class ProtectionPlan:
    """Defender-side view of which rows deserve which protection level."""

    secured_bits: set[BitLocation] = field(default_factory=set)
    target_rows: list[RowAddress] = field(default_factory=list)
    non_target_rows: list[RowAddress] = field(default_factory=list)

    @property
    def num_target_rows(self) -> int:
        return len(self.target_rows)

    def is_secured(self, location: BitLocation) -> bool:
        return location in self.secured_bits

    def rows_in_subarray(self, bank: int, subarray: int) -> list[RowAddress]:
        return [
            row for row in self.target_rows
            if row.bank == bank and row.subarray == subarray
        ]


def build_protection_plan(
    layout: WeightLayout,
    secured_bits: set[BitLocation],
) -> ProtectionPlan:
    """Classify the layout's weight rows by protection priority.

    A row holding at least one secured bit becomes a *target* row; every
    other weight row is *non-target*.  Row order follows the layout so the
    defender's swap schedule is deterministic.
    """
    target_rows: list[RowAddress] = []
    non_target_rows: list[RowAddress] = []
    secured_rows = layout.row_for_bits(sorted(secured_bits))
    for slot in layout.slots:
        if slot.logical_row in secured_rows:
            target_rows.append(slot.logical_row)
        else:
            non_target_rows.append(slot.logical_row)
    return ProtectionPlan(
        secured_bits=set(secured_bits),
        target_rows=target_rows,
        non_target_rows=non_target_rows,
    )
