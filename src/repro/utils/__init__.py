"""Shared utilities: bit manipulation, deterministic RNG, table formatting."""

from repro.utils.bits import (
    bytes_to_bits,
    bits_to_bytes,
    flip_bit_in_byte,
    get_bit,
    set_bit,
    int8_to_twos_complement,
    twos_complement_to_int8,
    bit_flip_delta,
    popcount,
    hamming_distance,
)
from repro.utils.rng import make_rng, derive_rng
from repro.utils.tabulate import format_table, format_row

__all__ = [
    "bytes_to_bits",
    "bits_to_bytes",
    "flip_bit_in_byte",
    "get_bit",
    "set_bit",
    "int8_to_twos_complement",
    "twos_complement_to_int8",
    "bit_flip_delta",
    "popcount",
    "hamming_distance",
    "make_rng",
    "derive_rng",
    "format_table",
    "format_row",
]
