"""Sanctioned environment-variable accessors.

Every ``REPRO_*`` toggle the codebase honours is read through this
module.  That single choke point is what makes the worker-env contract
auditable: the sharded scheduler ships chunk workers an explicit env
(coordinator extras only — see ``repro.experiments.transport``), so any
*raw* ``os.environ`` read elsewhere is a determinism hazard — the value
observed on the coordinator may silently differ from the value a worker
observes.  The ``repro lint`` rule REP003 enforces the discipline: raw
``os.environ`` reads outside this module (and the CLI) are findings.

Readers only.  Code that *mutates* the environment (the bench harness's
scoped overrides, worker-env construction) keeps using ``os.environ``
directly — mutation is visible in process-local scope and is not the
hazard REP003 polices.
"""

from __future__ import annotations

import os

__all__ = ["env_str", "env_flag", "env_float"]

_MISSING = object()


def env_str(name: str, default: str | None = None) -> str | None:
    """The variable's raw string value, or ``default`` when unset."""
    return os.environ.get(name, default)


def env_flag(name: str, default: bool) -> bool:
    """Boolean toggle: unset means ``default``; ``"0"`` means off.

    This encodes the repo's opt-out convention (``REPRO_NN_VECTORIZED=0``,
    ``REPRO_DRAM_FAST_PATH=0`` …): any set value other than ``"0"``
    enables the feature.  Opt-in flags with a stricter sentinel (e.g.
    ``REPRO_ALLOW_UNSEEDED_RNG=1``) compare :func:`env_str` explicitly.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw != "0"


def env_float(name: str, default: float | object = _MISSING) -> float:
    """The variable parsed as ``float``.

    Raises ``KeyError`` when unset and no ``default`` is given — used for
    harness-internal variables a parent process is contractually required
    to set (e.g. the straggler-bench knobs).
    """
    raw = os.environ.get(name)
    if raw is None:
        if default is _MISSING:
            raise KeyError(name)
        return float(default)  # type: ignore[arg-type]
    return float(raw)
