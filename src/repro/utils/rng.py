"""Deterministic random-number helpers.

Every stochastic component (dataset synthesis, model init, random-row
selection, attack sampling) takes an explicit ``numpy.random.Generator``.
These helpers centralise construction so that experiments are reproducible
from a single integer seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "derive_rng"]


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an integer seed."""
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Used to hand independent streams to sub-components (e.g. the defender's
    random-row selector vs. the attacker's sampling) without the two
    perturbing each other's sequences.
    """
    seed = int(rng.integers(0, 2**63 - 1)) ^ (0x9E3779B97F4A7C15 * (stream + 1) % 2**63)
    return np.random.default_rng(seed)
