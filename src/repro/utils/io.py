"""Atomic file writes shared by every artifact/trace/baseline producer.

One implementation of the tmp-file + ``os.replace`` pattern, so a crash
(or kill) mid-write can never leave a truncated file behind and
concurrent writers are last-writer-wins with every observable file state
a complete document.  The ``repro lint`` rule REP005 treats this module
as the sanctioned write path: ``open(..., "w")`` / ``write_text`` calls
elsewhere in ``src/`` are findings unless justified with a pragma.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import threading

__all__ = ["atomic_write_text"]


def atomic_write_text(path: str | pathlib.Path, text: str) -> None:
    """Write ``text`` to ``path`` via tmp file + ``os.replace``.

    The tmp name carries pid and thread id so concurrent writers never
    clobber each other's partial output; the final rename is atomic on
    POSIX (same directory), so readers — or a ``cmp`` in CI — observe
    either the old complete file or the new complete file, never a mix.
    """
    path = pathlib.Path(path)
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}-{threading.get_ident()}.tmp"
    )
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        with contextlib.suppress(FileNotFoundError):
            tmp.unlink()
