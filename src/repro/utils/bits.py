"""Bit-level helpers shared by the DRAM model and the quantized DNN stack.

DRAM rows are stored as ``numpy`` ``uint8`` arrays; quantized DNN weights are
8-bit two's-complement integers.  The bit-flip attack and the defense both
reason about individual bits of those bytes, so the conversions live here in
one place.

Bit index convention: bit 0 is the least-significant bit of a byte.  Within a
row, the absolute bit index of bit ``b`` of byte ``i`` is ``i * 8 + b``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bytes_to_bits",
    "bits_to_bytes",
    "flip_bit_in_byte",
    "get_bit",
    "set_bit",
    "int8_to_twos_complement",
    "twos_complement_to_int8",
    "bit_flip_delta",
    "popcount",
    "hamming_distance",
]

_BIT_WEIGHTS = np.array([1, 2, 4, 8, 16, 32, 64, 128], dtype=np.uint8)


def bytes_to_bits(data: np.ndarray) -> np.ndarray:
    """Expand a ``uint8`` array into a bit array (LSB-first per byte).

    The result has shape ``data.shape + (8,)`` and dtype ``uint8`` with values
    in ``{0, 1}``.
    """
    data = np.asarray(data, dtype=np.uint8)
    bits = np.unpackbits(data[..., np.newaxis], axis=-1, bitorder="little")
    return bits


def bits_to_bytes(bits: np.ndarray) -> np.ndarray:
    """Inverse of :func:`bytes_to_bits` (expects trailing axis of length 8)."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.shape[-1] != 8:
        raise ValueError(f"trailing axis must have length 8, got {bits.shape}")
    return np.packbits(bits, axis=-1, bitorder="little")[..., 0]


def flip_bit_in_byte(value: int, bit: int) -> int:
    """Return ``value`` with ``bit`` (0..7) inverted, as an unsigned byte."""
    if not 0 <= bit <= 7:
        raise ValueError(f"bit index must be in [0, 7], got {bit}")
    return (int(value) ^ (1 << bit)) & 0xFF


def get_bit(value: int, bit: int) -> int:
    """Return bit ``bit`` (0..7) of the unsigned byte ``value``."""
    if not 0 <= bit <= 7:
        raise ValueError(f"bit index must be in [0, 7], got {bit}")
    return (int(value) >> bit) & 1


def set_bit(value: int, bit: int, bit_value: int) -> int:
    """Return ``value`` with ``bit`` forced to ``bit_value`` (0 or 1)."""
    if bit_value not in (0, 1):
        raise ValueError(f"bit_value must be 0 or 1, got {bit_value}")
    if get_bit(value, bit) == bit_value:
        return int(value) & 0xFF
    return flip_bit_in_byte(value, bit)


def int8_to_twos_complement(values: np.ndarray) -> np.ndarray:
    """Reinterpret signed int8 values as their two's-complement uint8 bytes."""
    return np.asarray(values, dtype=np.int8).view(np.uint8).copy()


def twos_complement_to_int8(values: np.ndarray) -> np.ndarray:
    """Reinterpret uint8 bytes as signed two's-complement int8 values."""
    return np.asarray(values, dtype=np.uint8).view(np.int8).copy()


def bit_flip_delta(value_int8: int, bit: int) -> int:
    """Signed change to an int8 weight when ``bit`` of its byte is flipped.

    Bit 7 is the sign bit of the two's-complement representation, so flipping
    it moves the value by ``-+128``; flipping bit ``b < 7`` moves it by
    ``+-2**b`` depending on the current bit value.
    """
    current = get_bit(int8_to_twos_complement(np.array(value_int8))[()], bit)
    magnitude = 1 << bit
    if bit == 7:
        # Sign bit: 0 -> 1 subtracts 128, 1 -> 0 adds 128.
        return -magnitude if current == 0 else magnitude
    return magnitude if current == 0 else -magnitude


def popcount(data: np.ndarray) -> int:
    """Total number of set bits in a ``uint8`` array."""
    return int(bytes_to_bits(data).sum())


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Number of differing bits between two equally-shaped ``uint8`` arrays."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return popcount(a ^ b)
