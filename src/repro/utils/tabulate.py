"""Plain-text table formatting for benchmark reports.

The benchmark harness prints the same rows the paper's tables/figures report;
this module renders them without any third-party dependency.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_row"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_row(values: Sequence[object], widths: Sequence[int]) -> str:
    """Format one row with left-aligned first column, right-aligned rest."""
    cells = [_cell(v) for v in values]
    parts = [cells[0].ljust(widths[0])]
    parts.extend(c.rjust(w) for c, w in zip(cells[1:], widths[1:]))
    return "  ".join(parts)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(headers, widths))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(format_row(row, widths) for row in str_rows)
    return "\n".join(lines)
