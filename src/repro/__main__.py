"""Module entry point: ``PYTHONPATH=src python -m repro <command>``."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
