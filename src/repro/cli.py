"""``python -m repro`` — the public entry point for running experiments.

Subcommands:

* ``list`` — catalogue of registered scenarios (name, source, presets).
* ``run <scenario> [...]`` — execute scenarios with ``--trials``,
  ``--jobs``, ``--seed`` and ``--param key=value`` overrides; aggregate
  results land as JSON artifacts under ``benchmarks/results/``.
  ``--stream`` appends per-trial JSONL as trials complete and
  ``--resume`` replays completed trials from a previous stream.
  ``--backend sharded --shards N`` fans the run out over N CLI worker
  subprocesses through a work-stealing chunk scheduler with a fault
  policy (``--shard-timeout``, ``--retries``, ``--chunk-size``,
  ``--retry-backoff``, ``--heartbeat-interval``); ``--transport ssh
  --hosts h1,h2:4`` dispatches those workers over ssh instead (with
  per-host quarantine and graceful local fallback), and ``--transport
  chaos`` wraps the local transport in seeded fault injection;
  ``--shard i/N`` runs one static shard's trials only (the worker side
  of a manual multi-machine sweep) and ``--chunk K --trial-indices …``
  runs one chunk lease (the worker side of the scheduler), both
  streaming JSONL for ``merge``.
* ``merge <scenario>`` — fuse shard and/or chunk streams into the
  canonical aggregate artifact (validated exactly like ``--resume``;
  byte-identical to a single-host run).
* ``bench`` — hot-path perf microbenchmarks; emits ``BENCH_hotpaths.json``
  (see ``docs/performance.md``).
* ``trace record | replay | show`` — record a canonical workload's DRAM
  command stream to JSONL, replay a trace through a fresh controller
  (diffing the reproduced ``CommandStats`` against the recorded footer,
  optionally under strict/audit timing-rule checking), or print a trace.
* ``lint [paths]`` — static determinism & resource-safety analysis (the
  REP rule set over ``src/`` by default): ``--format text|json``,
  ``--select/--ignore RULES``, ``--baseline FILE`` for grandfathered
  findings, ``--write-baseline``, ``--stats`` summary tables and
  ``--list-rules``.  Exits 1 when findings remain, so CI can gate on it.
  ``--flow`` adds the whole-program REP1xx tier (call graph + taint
  dataflow over the scanned tree); ``lint graph QUALNAME`` prints one
  symbol's callers/callees/taint facts; ``--check-suppressions`` fails
  on dead noqa/baseline/exempt entries and ``--ratchet OLD_FILE`` fails
  when the committed baseline gained entries over ``OLD_FILE``.
* ``cache info | clear`` — inspect or empty the trained-preset and
  attack-profile caches.

Reproduction checks run after each scenario; failures are reported (and
recorded in the artifact) but only fail the process under ``--strict``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.experiments.artifacts import (
    default_results_dir,
    write_artifact,
    write_bench_artifact,
)
from repro.experiments.cache import PresetCache, ProfileCache
from repro.experiments.registry import get_scenario, iter_scenarios
from repro.experiments.runner import run_scenario
from repro.presets import preset_spec

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DNN-Defender reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser(
        "list", help="list registered scenarios, defenses, or attackers"
    )
    list_cmd.add_argument("--tag", default=None,
                          help="only scenarios carrying this tag")
    list_cmd.add_argument("--kind", default="scenarios",
                          choices=("scenarios", "defenses", "attackers",
                                   "all"),
                          help="which registry to list (default: scenarios)")

    run_cmd = sub.add_parser("run", help="run one or more scenarios")
    run_cmd.add_argument("scenarios", nargs="+", metavar="scenario")
    run_cmd.add_argument("--trials", type=int, default=None,
                         help="Monte-Carlo trials (default: per-scenario)")
    run_cmd.add_argument("--jobs", type=int, default=1,
                         help="parallel worker processes (default: 1)")
    run_cmd.add_argument("--seed", type=int, default=0,
                         help="base seed; trial seeds derive from it")
    run_cmd.add_argument("--param", action="append", default=[],
                         metavar="KEY=VALUE",
                         help="scenario parameter override (repeatable)")
    run_cmd.add_argument("--params-json", default=None, metavar="JSON",
                         help="scenario parameters as one JSON object "
                              "(lossless; used by the sharded backend to "
                              "forward params to workers). --param "
                              "overrides individual keys on top")
    run_cmd.add_argument("--out", default=None,
                         help="artifact directory "
                              "(default: benchmarks/results/)")
    run_cmd.add_argument("--no-artifact", action="store_true",
                         help="skip writing the JSON artifact")
    run_cmd.add_argument("--strict", action="store_true",
                         help="exit non-zero if reproduction checks fail")
    run_cmd.add_argument("--quiet", action="store_true",
                         help="suppress the report table and progress")
    run_cmd.add_argument("--stream", action="store_true",
                         help="append per-trial JSONL results as trials "
                              "complete (<results>/<scenario>.trials.jsonl)")
    run_cmd.add_argument("--resume", action="store_true",
                         help="replay completed trials from the stream "
                              "file and run only the missing ones "
                              "(implies --stream)")
    run_cmd.add_argument("--backend", default="auto",
                         choices=("auto", "serial", "process", "sharded"),
                         help="execution backend (auto: serial for "
                              "--jobs 1, process pool otherwise)")
    run_cmd.add_argument("--shards", type=int, default=None,
                         help="shard count for --backend sharded "
                              "(default: --jobs)")
    run_cmd.add_argument("--shard", default=None, metavar="I/N",
                         help="run only shard I of N (trial indices "
                              "I, I+N, ...), streaming JSONL to "
                              "<out>/<scenario>.shard-IofN.trials.jsonl "
                              "for a later 'repro merge'")
    run_cmd.add_argument("--shard-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="--backend sharded: kill a chunk worker "
                              "exceeding this wall-clock budget and "
                              "requeue its unfinished trials")
    run_cmd.add_argument("--retries", type=int, default=None, metavar="N",
                         help="--backend sharded: re-dispatch a failed or "
                              "timed-out chunk up to N times, salvaging "
                              "its completed trials first (default: 1)")
    run_cmd.add_argument("--chunk-size", type=int, default=None, metavar="N",
                         help="--backend sharded: trials per work-stealing "
                              "chunk lease (default: pending/(4*shards))")
    run_cmd.add_argument("--chunk", type=int, default=None, metavar="K",
                         help="worker side of the sharded scheduler: run "
                              "one chunk lease, streaming JSONL to "
                              "<out>/<scenario>.chunk-K.trials.jsonl "
                              "(requires --trial-indices)")
    run_cmd.add_argument("--trial-indices", default=None, metavar="I,J,...",
                         help="comma-separated trial indices owned by the "
                              "--chunk lease")
    run_cmd.add_argument("--transport", default=None,
                         choices=("local", "ssh", "chaos"),
                         help="--backend sharded: where chunk workers run "
                              "(local subprocesses, ssh hosts, or "
                              "fault-injecting chaos wrapper; default: local)")
    run_cmd.add_argument("--hosts", default=None, metavar="H1[,H2:N,...]",
                         help="--transport ssh: remote host pool, "
                              "host[:slots] entries (default: REPRO_HOSTS)")
    run_cmd.add_argument("--heartbeat-interval", type=float, default=None,
                         metavar="SECONDS",
                         help="workers interleave liveness heartbeats into "
                              "their trial streams every SECONDS, making "
                              "--shard-timeout kill on silence instead of "
                              "runtime (orchestrator and --chunk workers)")
    run_cmd.add_argument("--retry-backoff",
                         action=argparse.BooleanOptionalAction, default=None,
                         help="--backend sharded: capped exponential backoff "
                              "with jitter between chunk retries "
                              "(default: on; --no-retry-backoff requeues "
                              "immediately)")
    run_cmd.add_argument("--backoff-base", type=float, default=None,
                         metavar="SECONDS",
                         help="--backend sharded: first retry delay, "
                              "doubling per attempt (default: 0.5)")
    run_cmd.add_argument("--backoff-cap", type=float, default=None,
                         metavar="SECONDS",
                         help="--backend sharded: upper bound on any retry "
                              "delay (default: 30)")
    run_cmd.add_argument("--remote-python", default=None, metavar="PATH",
                         help="--transport ssh: interpreter on the remote "
                              "hosts (default: python3)")
    run_cmd.add_argument("--remote-root", default=None, metavar="DIR",
                         help="--transport ssh: remote scratch directory "
                              "for chunk streams (default: /tmp/repro-ssh)")
    run_cmd.add_argument("--chaos-seed", type=int, default=None,
                         help="--transport chaos: fault-schedule seed "
                              "(same seed, same faults; default: 0)")
    run_cmd.add_argument("--chaos-rate", type=float, default=None,
                         help="--transport chaos: per-launch fault "
                              "probability in [0,1] (default: 0.35)")
    run_cmd.add_argument("--chaos-modes", default=None, metavar="M1,M2,...",
                         help="--transport chaos: fault modes to draw from "
                              "(refuse, disconnect, stall-io, "
                              "truncate-stream, corrupt-stream, slow; "
                              "default: all)")
    run_cmd.add_argument("--chaos-hosts", type=int, default=None, metavar="N",
                         help="--transport chaos: rotate launches over N "
                              "virtual hosts with health tracking, so "
                              "quarantine/degradation paths are exercised")

    merge_cmd = sub.add_parser(
        "merge",
        help="fuse shard/chunk trial streams into the aggregate artifact",
    )
    merge_cmd.add_argument("scenario")
    merge_cmd.add_argument("shard_files", nargs="*", metavar="stream.jsonl",
                           help="shard/chunk stream files (default: discover "
                                "<out>/<scenario>.shard-*of*.trials.jsonl "
                                "and <out>/<scenario>.chunk-*.trials.jsonl)")
    merge_cmd.add_argument("--out", default=None,
                           help="artifact/shard directory "
                                "(default: benchmarks/results/)")
    merge_cmd.add_argument("--no-artifact", action="store_true",
                           help="skip writing the JSON artifact")
    merge_cmd.add_argument("--strict", action="store_true",
                           help="exit non-zero if reproduction checks fail")
    merge_cmd.add_argument("--quiet", action="store_true",
                           help="suppress the report table")

    bench_cmd = sub.add_parser(
        "bench", help="hot-path perf microbenchmarks (BENCH_hotpaths.json)"
    )
    bench_cmd.add_argument("--quick", action="store_true",
                           help="fewer repetitions (CI smoke budget)")
    bench_cmd.add_argument("--paths", default=None,
                           help="comma-separated subset of bench paths "
                                "(default: all)")
    bench_cmd.add_argument("--out", default=None,
                           help="artifact directory (default: repo root)")
    bench_cmd.add_argument("--no-artifact", action="store_true",
                           help="skip writing BENCH_hotpaths.json")

    trace_cmd = sub.add_parser(
        "trace", help="record/replay/inspect DRAM command traces (JSONL)"
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    record_cmd = trace_sub.add_parser(
        "record", help="record a canonical workload's command stream"
    )
    record_cmd.add_argument("--workload", required=True,
                            help="workload name (see repro.experiments."
                                 "goldens.GOLDEN_WORKLOADS)")
    record_cmd.add_argument("--out", required=True, metavar="FILE.jsonl",
                            help="trace output path")
    record_cmd.add_argument("--seed", type=int, default=0)
    record_cmd.add_argument("--check", default="off",
                            choices=("off", "strict", "audit"),
                            help="attach a TimingChecker while recording")
    replay_cmd = trace_sub.add_parser(
        "replay", help="replay a trace and diff the reproduced stats"
    )
    replay_cmd.add_argument("trace", metavar="FILE.jsonl")
    replay_cmd.add_argument("--check", default="off",
                            choices=("off", "strict", "audit"),
                            help="validate the replayed stream against the "
                                 "timing rules (strict exits non-zero on "
                                 "any violation)")
    replay_cmd.add_argument("--quiet", action="store_true",
                            help="suppress the summary line")
    show_cmd = trace_sub.add_parser("show", help="print a trace file")
    show_cmd.add_argument("trace", metavar="FILE.jsonl")
    show_cmd.add_argument("--limit", type=int, default=20,
                          help="command records to print (default: 20)")

    cache_cmd = sub.add_parser(
        "cache", help="trained-preset / attack-profile cache tools"
    )
    cache_cmd.add_argument("action", choices=("info", "clear"))

    lint_cmd = sub.add_parser(
        "lint",
        help="static determinism/resource-safety analysis (REP rules)",
    )
    lint_cmd.add_argument("paths", nargs="*", metavar="path",
                          help="files/directories to analyze "
                               "(default: src/ under the repo root); or "
                               "'graph QUALNAME' to print one symbol's "
                               "callers/callees/taint facts")
    lint_cmd.add_argument("--format", default="text",
                          choices=("text", "json"),
                          help="diagnostic output format (default: text)")
    lint_cmd.add_argument("--flow", default=False,
                          action=argparse.BooleanOptionalAction,
                          help="run the whole-program flow phase "
                               "(call graph + REP1xx rules)")
    lint_cmd.add_argument("--select", default=None, metavar="REP001,...",
                          help="only run these rule ids")
    lint_cmd.add_argument("--ignore", default=None, metavar="REP001,...",
                          help="skip these rule ids")
    lint_cmd.add_argument("--baseline", default="auto", metavar="FILE",
                          help="baseline of grandfathered findings "
                               "(default: lint-baseline.json at the repo "
                               "root when present; 'none' disables)")
    lint_cmd.add_argument("--write-baseline", action="store_true",
                          help="grandfather every current finding into "
                               "the baseline file and exit 0")
    lint_cmd.add_argument("--stats", action="store_true",
                          help="print findings-per-rule/package summary "
                               "tables (text format)")
    lint_cmd.add_argument("--check-suppressions", action="store_true",
                          help="also fail (exit 1) when dead suppressions "
                               "exist: noqa pragmas, baseline entries or "
                               "exempt paths that no longer match anything")
    lint_cmd.add_argument("--ratchet", default=None, metavar="OLD_FILE",
                          help="compare the committed baseline against "
                               "OLD_FILE and fail if it gained entries "
                               "(shrinking is allowed), then exit")
    lint_cmd.add_argument("--list-rules", action="store_true",
                          help="print the rule catalogue and exit")

    return parser


def _resolve_params(args) -> dict:
    """Merge ``--params-json`` (lossless) with ``--param k=v`` overrides."""
    import json

    params: dict = {}
    if getattr(args, "params_json", None):
        try:
            params = json.loads(args.params_json)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"--params-json is not valid JSON: {exc}")
        if not isinstance(params, dict):
            raise SystemExit(
                f"--params-json must be a JSON object, got "
                f"{type(params).__name__}"
            )
    params.update(_parse_params(args.param))
    return params


def _parse_params(pairs: list[str]) -> dict:
    """``k=v`` strings to a dict, coercing ints/floats when they parse."""
    params: dict = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param expects KEY=VALUE, got {pair!r}")
        key, raw = pair.split("=", 1)
        value: object = raw
        for cast in (int, float):
            try:
                value = cast(raw)
                break
            except ValueError:
                continue
        params[key] = value
    return params


def _list_specs(label: str, specs: list, run_hint: str) -> int:
    """Shared listing for defense/attacker registries."""
    if not specs:
        print(f"no {label} registered")
        return 1
    name_width = max(len(s.name) for s in specs)
    kind_width = max(len(s.kind) for s in specs)
    for spec in specs:
        extras = [f"cost {spec.cost:g}"]
        if spec.tournament:
            extras.append("tournament")
        print(
            f"{spec.name:<{name_width}}  {spec.kind:<{kind_width}}  "
            f"{spec.title}  [{'; '.join(extras)}]"
        )
    print(f"\n{len(specs)} {label}; {run_hint}")
    return 0


def _cmd_list(args) -> int:
    kind = getattr(args, "kind", "scenarios")
    status = 0
    if kind in ("defenses", "all"):
        from repro.defenses.registry import iter_defenses

        status |= _list_specs(
            "defenses", list(iter_defenses()),
            "deploy with: DefendedDeployment.build(defense=<name>)",
        )
        if kind == "all":
            print()
    if kind in ("attackers", "all"):
        from repro.attacks.registry import iter_attackers

        status |= _list_specs(
            "attackers", list(iter_attackers()),
            "run with: deployment.run_attack(attacker=<name>)",
        )
        if kind == "all":
            print()
    if kind not in ("scenarios", "all"):
        return status
    rows = list(iter_scenarios(tag=args.tag))
    if not rows:
        print("no scenarios registered" + (f" with tag {args.tag!r}" if args.tag else ""))
        return 1
    name_width = max(len(s.name) for s in rows)
    source_width = max(len(s.source) for s in rows)
    for spec in rows:
        extras = []
        if spec.presets:
            extras.append(f"presets: {', '.join(spec.presets)}")
        if spec.deterministic:
            extras.append("deterministic")
        suffix = f"  [{'; '.join(extras)}]" if extras else ""
        print(
            f"{spec.name:<{name_width}}  {spec.source:<{source_width}}  "
            f"{spec.title}{suffix}"
        )
    print(f"\n{len(rows)} scenarios; run with: python -m repro run <name>")
    return 0


def _cmd_run(args) -> int:
    params = _resolve_params(args)
    cache = PresetCache()
    if args.shard is not None and (
        args.chunk is not None or args.trial_indices is not None
    ):
        raise SystemExit(
            "--shard and --chunk/--trial-indices are mutually exclusive "
            "worker flags"
        )
    if args.shard is not None:
        return _run_shards(args, params, cache)
    if args.chunk is not None or args.trial_indices is not None:
        return _run_chunks(args, params, cache)
    backend = _resolve_backend(args)
    failed_checks: list[str] = []
    for name in args.scenarios:
        spec = get_scenario(name)  # fail fast on typos, before any work

        def progress(done: int, total: int) -> None:
            print(f"  [{name}] trial {done}/{total}", file=sys.stderr)

        if not args.quiet:
            cold = [
                p for p in spec.presets
                if not cache.path_for(preset_spec(p)).exists()
            ]
            trials = args.trials if args.trials is not None else spec.default_trials
            print(
                f"running {name} ({spec.source or 'unsourced'}): "
                f"{trials} trial(s), {args.jobs} job(s), seed {args.seed}"
                + (f"; cold presets: {', '.join(cold)}" if cold else "")
            )
        stream_path = None
        if args.stream or args.resume:
            stream_dir = (
                pathlib.Path(args.out) if args.out else default_results_dir()
            )
            stream_path = stream_dir / f"{name}.trials.jsonl"
        result = run_scenario(
            name,
            trials=args.trials,
            jobs=args.jobs,
            seed=args.seed,
            params=params,
            cache=cache,
            progress=None if args.quiet else progress,
            stream_path=stream_path,
            resume=args.resume,
            backend=backend,
        )
        if stream_path is not None and not args.quiet:
            print(f"trial stream: {stream_path}")
        if not _finish_result(spec, name, result, args):
            failed_checks.append(name)
        if not args.quiet:
            print(f"elapsed: {result.elapsed_s:.2f}s")
    if failed_checks and args.strict:
        return 1
    return 0


def _finish_result(spec, name: str, result, args) -> bool:
    """Shared run/merge epilogue: checks, artifact, report, warning.

    Returns False when the reproduction checks failed.  Keeping this in
    one place guarantees merged and single-host runs record check errors
    identically — the artifact byte-identity contract depends on it.
    """
    try:
        spec.run_checks(result)
    except AssertionError as exc:
        result.check_error = f"{type(exc).__name__}: {exc}"
    if not args.no_artifact:
        path = write_artifact(result, directory=args.out)
        if not args.quiet:
            print(f"artifact: {path}")
    if not args.quiet:
        print(spec.render_report(result))
    if result.check_error is not None:
        print(
            f"warning: reproduction checks FAILED for {name}: "
            f"{result.check_error}",
            file=sys.stderr,
        )
        return False
    return True


def _reject_scheduler_flags(
    args, context: str, allow: tuple[str, ...] = ()
) -> None:
    """Fail fast when sharded-scheduler flags reach a non-sharded path.

    ``allow`` names flags the calling path legitimately consumes (the
    chunk worker accepts ``--heartbeat-interval``, for example).
    """
    for flag, value in (
        ("--shards", args.shards),
        ("--shard-timeout", args.shard_timeout),
        ("--retries", args.retries),
        ("--chunk-size", args.chunk_size),
        ("--transport", args.transport),
        ("--hosts", args.hosts),
        ("--heartbeat-interval", args.heartbeat_interval),
        ("--retry-backoff/--no-retry-backoff", args.retry_backoff),
        ("--backoff-base", args.backoff_base),
        ("--backoff-cap", args.backoff_cap),
        ("--remote-python", args.remote_python),
        ("--remote-root", args.remote_root),
        ("--chaos-seed", args.chaos_seed),
        ("--chaos-rate", args.chaos_rate),
        ("--chaos-modes", args.chaos_modes),
        ("--chaos-hosts", args.chaos_hosts),
    ):
        if value is not None and flag not in allow:
            raise SystemExit(f"{flag} requires {context}")


def _resolve_transport(args):
    """Map the ``--transport`` flag family to a Transport (or None=local)."""
    from repro.experiments.transport import build_transport

    if args.transport != "ssh":
        for flag, value in (
            ("--hosts", args.hosts),
            ("--remote-python", args.remote_python),
            ("--remote-root", args.remote_root),
        ):
            if value is not None:
                raise SystemExit(f"{flag} requires --transport ssh")
    if args.transport != "chaos":
        for flag, value in (
            ("--chaos-seed", args.chaos_seed),
            ("--chaos-rate", args.chaos_rate),
            ("--chaos-modes", args.chaos_modes),
            ("--chaos-hosts", args.chaos_hosts),
        ):
            if value is not None:
                raise SystemExit(f"{flag} requires --transport chaos")
    return build_transport(
        args.transport,
        hosts=args.hosts,
        remote_python=args.remote_python,
        remote_root=args.remote_root,
        chaos_seed=0 if args.chaos_seed is None else args.chaos_seed,
        chaos_rate=args.chaos_rate,
        chaos_modes=args.chaos_modes,
        chaos_hosts=args.chaos_hosts,
    )


def _resolve_backend(args):
    """Map ``--backend``/``--shards`` to a Backend (None = runner default)."""
    from repro.experiments.backends import (
        ProcessPoolBackend,
        SerialBackend,
        ShardedBackend,
    )

    if args.backend != "sharded":
        _reject_scheduler_flags(args, "--backend sharded")
    if args.backend == "serial":
        return SerialBackend()
    if args.backend == "process":
        return ProcessPoolBackend(args.jobs)
    if args.backend == "sharded":
        shards = args.shards if args.shards is not None else args.jobs
        workdir = (
            pathlib.Path(args.out) if args.out else default_results_dir()
        )
        # Forward --resume so completed trials in existing workdir
        # streams are salvaged instead of re-run.
        return ShardedBackend(
            shards,
            workdir=workdir,
            resume=args.resume,
            timeout=args.shard_timeout,
            retries=1 if args.retries is None else args.retries,
            chunk_size=args.chunk_size,
            transport=_resolve_transport(args),
            heartbeat_interval=args.heartbeat_interval,
            retry_backoff=(
                True if args.retry_backoff is None else args.retry_backoff
            ),
            backoff_base=(
                0.5 if args.backoff_base is None else args.backoff_base
            ),
            backoff_cap=(
                30.0 if args.backoff_cap is None else args.backoff_cap
            ),
        )
    return None  # auto: run_scenario picks serial/process from --jobs


def _run_chunks(args, params: dict, cache: PresetCache) -> int:
    """Worker side of the chunk scheduler: execute one lease per scenario."""
    from repro.experiments.backends import run_chunk

    if args.chunk is None or args.trial_indices is None:
        raise SystemExit("--chunk and --trial-indices must be used together")
    if args.backend != "auto":
        raise SystemExit("--chunk and --backend are mutually exclusive")
    _reject_scheduler_flags(
        args, "--backend sharded (they are orchestrator flags, not valid "
        "on the --chunk worker)",
        allow=("--heartbeat-interval",),
    )
    try:
        indices = [
            int(text) for text in args.trial_indices.split(",") if text.strip()
        ]
    except ValueError:
        raise SystemExit(
            "--trial-indices expects comma-separated integers, got "
            f"{args.trial_indices!r}"
        ) from None
    if not indices:
        raise SystemExit("--trial-indices is empty")
    out_dir = pathlib.Path(args.out) if args.out else default_results_dir()
    for name in args.scenarios:
        get_scenario(name)  # fail fast on typos, before any work

        def progress(done: int, total: int) -> None:
            print(
                f"  [{name} chunk {args.chunk}] trial {done}/{total}",
                file=sys.stderr,
            )

        path = run_chunk(
            name,
            chunk_id=args.chunk,
            indices=indices,
            trials=args.trials,
            seed=args.seed,
            params=params,
            directory=out_dir,
            cache=cache,
            # A retried lease replays its previous attempt's stream.
            resume=True,
            jobs=args.jobs,
            progress=None if args.quiet else progress,
            heartbeat_interval=args.heartbeat_interval,
        )
        if not args.quiet:
            print(f"chunk stream: {path}")
    return 0


def _run_shards(args, params: dict, cache: PresetCache) -> int:
    """Worker side of a sharded run: execute one shard per scenario."""
    from repro.experiments.backends import parse_shard, run_shard

    if args.backend != "auto":
        raise SystemExit("--shard and --backend are mutually exclusive")
    _reject_scheduler_flags(
        args, "--backend sharded (they are orchestrator flags, not valid "
        "on the --shard worker; the shard count is the N in I/N)"
    )
    index, count = parse_shard(args.shard)
    out_dir = pathlib.Path(args.out) if args.out else default_results_dir()
    for name in args.scenarios:
        get_scenario(name)  # fail fast on typos, before any work

        def progress(done: int, total: int) -> None:
            print(
                f"  [{name} shard {index}/{count}] trial {done}/{total}",
                file=sys.stderr,
            )

        path = run_shard(
            name,
            shard=(index, count),
            trials=args.trials,
            seed=args.seed,
            params=params,
            directory=out_dir,
            cache=cache,
            resume=args.resume,
            jobs=args.jobs,
            progress=None if args.quiet else progress,
        )
        if not args.quiet:
            print(f"shard stream: {path}")
    return 0


def _cmd_merge(args) -> int:
    """Fuse shard/chunk streams into the canonical aggregate artifact."""
    from repro.experiments.backends import discover_streams, merge_shards

    spec = get_scenario(args.scenario)
    out_dir = pathlib.Path(args.out) if args.out else default_results_dir()
    paths = (
        [pathlib.Path(p) for p in args.shard_files]
        if args.shard_files
        else discover_streams(out_dir, args.scenario)
    )
    if not paths:
        print(
            f"error: no trial streams for {args.scenario!r} under {out_dir} "
            f"(expected {args.scenario}.shard-*of*.trials.jsonl or "
            f"{args.scenario}.chunk-*.trials.jsonl)",
            file=sys.stderr,
        )
        return 2
    result = merge_shards(paths, scenario=args.scenario)
    if not args.quiet:
        print(
            f"merged {len(paths)} shard stream(s), "
            f"{result.trials} trial(s)"
        )
    checks_ok = _finish_result(spec, args.scenario, result, args)
    return 1 if (not checks_ok and args.strict) else 0


def _cmd_bench(args) -> int:
    from repro.bench import format_suite, run_hotpath_suite

    paths = args.paths.split(",") if args.paths else None

    def progress(name: str) -> None:
        print(f"  [bench] {name} ...", file=sys.stderr)

    payload = run_hotpath_suite(
        quick=args.quick, paths=paths, progress=progress
    )
    print(format_suite(payload))
    if not args.no_artifact:
        path = write_bench_artifact(payload, directory=args.out)
        print(f"artifact: {path}")
    mismatches = [
        name for name, entry in payload["summary"].items()
        if not entry["parity"]
    ]
    if mismatches:
        print(
            f"error: parity MISMATCH in {', '.join(mismatches)} — fast and "
            "slow paths disagree",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_trace(args) -> int:
    """``repro trace record | replay | show`` dispatcher."""
    from repro.dram import TimingViolation, load_trace, stats_payload
    from repro.dram.timing_rules import TimingChecker

    if args.trace_command == "record":
        from repro.experiments.goldens import record_workload

        controller, trace = record_workload(args.workload, seed=args.seed)
        if args.check != "off":
            # Re-validate the recorded stream offline (the builders close
            # their traces, so check post-hoc from the records).
            checker = TimingChecker(
                timing=controller.timing, mode=args.check
            )
            for record in trace.commands:
                checker.observe(_record_to_event(record))
            if checker.violations:
                for violation in checker.violations:
                    print(f"violation: {violation.describe()}", file=sys.stderr)
                return 1
        path = trace.save(args.out)
        summary = trace.summary()
        print(
            f"recorded {args.workload} (seed {args.seed}): "
            f"{summary['commands_recorded']} command record(s), "
            f"{summary['total_activations']} activation(s) -> {path}"
        )
        return 0

    try:
        loaded = load_trace(args.trace)
    except FileNotFoundError:
        raise ValueError(f"no such trace file: {args.trace}") from None
    if args.trace_command == "show":
        geometry = loaded.header["geometry"]
        print(
            f"trace {args.trace}: format {loaded.header['format']}, "
            f"{len(loaded.records)} record(s), geometry "
            f"{geometry['banks']}x{geometry['subarrays_per_bank']}x"
            f"{geometry['rows_per_subarray']}"
        )
        for record in loaded.records[:max(args.limit, 0)]:
            where = "-" if record.bank is None else (
                f"{record.bank}.{record.subarray}.{record.row}"
                if record.row is not None else str(record.bank)
            )
            extras = []
            if record.count != 1:
                extras.append(f"x{record.count}")
            if record.hammer:
                extras.append("hammer")
            if record.auto:
                extras.append("auto")
            if record.command == "IDLE":
                extras.append(f"{record.duration_ns:g}ns")
            if record.dst_row is not None:
                extras.append(f"->{record.bank}.{record.dst_subarray}.{record.dst_row}")
            print(
                f"  t={record.time_ns:<14g} {record.command:<4} {where:<10} "
                f"{record.actor}" + (f"  [{', '.join(extras)}]" if extras else "")
            )
        hidden = len(loaded.records) - max(args.limit, 0)
        if hidden > 0:
            print(f"  ... {hidden} more record(s)")
        stats = loaded.stats
        print(
            f"stats: {stats['counts']} | time {stats['total_time_ns']:g} ns "
            f"| energy {stats['total_energy_pj']:g} pJ"
        )
        return 0

    # replay
    controller = loaded.build_controller()
    checker = None
    if args.check != "off":
        checker = TimingChecker(controller, mode=args.check)
    try:
        controller, trace = loaded.replay(controller=controller)
    except TimingViolation as exc:
        print(f"timing violation during replay: {exc}", file=sys.stderr)
        return 1
    finally:
        if checker is not None:
            checker.close()
    reproduced = stats_payload(controller)
    if reproduced != loaded.stats:
        print(
            "replay stats MISMATCH:\n"
            f"  recorded:   {loaded.stats}\n"
            f"  reproduced: {reproduced}",
            file=sys.stderr,
        )
        return 1
    if loaded.aggregates and trace.aggregates() != loaded.aggregates:
        print("replay trace-aggregate MISMATCH", file=sys.stderr)
        return 1
    if not args.quiet:
        suffix = ""
        if checker is not None:
            suffix = (
                f"; timing check ({args.check}): "
                f"{len(checker.violations)} violation(s) over "
                f"{checker.commands_checked} command(s)"
            )
        print(
            f"replayed {len(loaded.records)} record(s): stats reproduced "
            f"byte-identically{suffix}"
        )
    if checker is not None and checker.violations:
        for violation in checker.violations:
            print(f"violation: {violation.describe()}", file=sys.stderr)
        return 1
    return 0


def _record_to_event(record):
    from repro.dram import Command, CommandEvent

    return CommandEvent(
        time_ns=record.time_ns,
        command=None if record.command == "IDLE" else Command[record.command],
        actor=record.actor, bank=record.bank, subarray=record.subarray,
        row=record.row, count=record.count, hammer=record.hammer,
        dst_subarray=record.dst_subarray, dst_row=record.dst_row,
        auto=record.auto, duration_ns=record.duration_ns,
    )


def _cmd_lint(args) -> int:
    """``repro lint``: run the static analyzer; exit 1 on findings."""
    from repro.analysis.lint import (
        Baseline,
        build_index,
        format_dead_suppressions,
        format_findings,
        format_graph,
        format_rules,
        format_stats,
        repo_root,
        run_lint,
        to_json_text,
    )

    if args.list_rules:
        print(format_rules())
        return 0
    if args.paths and args.paths[0] == "graph":
        if len(args.paths) < 2:
            raise ValueError("lint graph needs a symbol: "
                             "repro lint graph pkg.mod.func [paths]")
        qualname = args.paths[1]
        index, parse_errors = build_index(args.paths[2:] or None)
        for error in parse_errors:
            print(f"error: cannot analyze {error}", file=sys.stderr)
        print(format_graph(index, qualname))
        return 0
    if args.ratchet is not None:
        committed = repo_root() / "lint-baseline.json"
        current = Baseline.load(committed)
        old = Baseline.load(args.ratchet)
        gained = current.gained_over(old)
        if gained:
            print(f"ratchet: {committed} gained {len(gained)} entr(ies) "
                  f"over {args.ratchet} — the baseline may only shrink:")
            for fp in gained:
                entry = current.fingerprints[fp]
                print(f"  + {fp}  {entry.get('rule', '?')} "
                      f"{entry.get('path', '?')}")
            return 1
        shrunk = len(old.fingerprints) - len(current.fingerprints)
        print(f"ratchet ok: no new baseline entries "
              f"({shrunk} removed since {args.ratchet})")
        return 0
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    baseline_path = None
    if args.baseline == "auto":
        default_path = repo_root() / "lint-baseline.json"
        if default_path.exists():
            baseline_path = default_path
    elif args.baseline not in ("none", ""):
        baseline_path = pathlib.Path(args.baseline)
    if args.write_baseline:
        target = baseline_path or repo_root() / "lint-baseline.json"
        # Grandfather what the rules currently find (pragmas already
        # applied), so a ratcheting rollout starts from a green gate.
        report = run_lint(args.paths or None, select=select, ignore=ignore,
                          flow=args.flow)
        Baseline.from_findings(report.findings).save(target)
        print(
            f"baseline: {len(report.findings)} finding(s) grandfathered "
            f"-> {target}"
        )
        return 0
    report = run_lint(
        args.paths or None,
        select=select,
        ignore=ignore,
        baseline=baseline_path,
        flow=args.flow,
    )
    if args.format == "json":
        print(to_json_text(report), end="")
    else:
        print(format_findings(report))
        if args.stats:
            print()
            print(format_stats(report))
        if args.check_suppressions and report.dead_suppressions:
            print()
            print(format_dead_suppressions(report))
    failed = bool(report.findings or report.parse_errors)
    if args.check_suppressions and report.dead_suppressions:
        failed = True
    return 1 if failed else 0


def _cmd_cache(args) -> int:
    caches = (("presets", PresetCache()), ("profiles", ProfileCache()))
    if args.action == "clear":
        for kind, cache in caches:
            removed = cache.clear()
            print(f"removed {removed} cached {kind[:-1]}(s) from {cache.root}")
        return 0
    for kind, cache in caches:
        entries = cache.entries()
        print(f"{kind} cache root: {cache.root}")
        if not entries:
            print("  (empty)")
            continue
        total = 0
        for path in entries:
            size = path.stat().st_size
            total += size
            print(f"  {path.name}  {size / 1024:.0f} KiB")
        print(f"  {len(entries)} entries, {total / 1024:.0f} KiB total")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    User-input errors (unknown scenario, bad argument values) print a
    one-line message and return 2 instead of dumping a traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "merge":
            return _cmd_merge(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "lint":
            return _cmd_lint(args)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")
