"""``python -m repro`` — the public entry point for running experiments.

Subcommands:

* ``list`` — catalogue of registered scenarios (name, source, presets).
* ``run <scenario> [...]`` — execute scenarios with ``--trials``,
  ``--jobs``, ``--seed`` and ``--param key=value`` overrides; aggregate
  results land as JSON artifacts under ``benchmarks/results/``.
  ``--stream`` appends per-trial JSONL as trials complete and
  ``--resume`` replays completed trials from a previous stream.
  ``--backend sharded --shards N`` fans the run out over N CLI worker
  subprocesses through a work-stealing chunk scheduler with a fault
  policy (``--shard-timeout``, ``--retries``, ``--chunk-size``);
  ``--shard i/N`` runs one static shard's trials only (the worker side
  of a manual multi-machine sweep) and ``--chunk K --trial-indices …``
  runs one chunk lease (the worker side of the scheduler), both
  streaming JSONL for ``merge``.
* ``merge <scenario>`` — fuse shard and/or chunk streams into the
  canonical aggregate artifact (validated exactly like ``--resume``;
  byte-identical to a single-host run).
* ``bench`` — hot-path perf microbenchmarks; emits ``BENCH_hotpaths.json``
  (see ``docs/performance.md``).
* ``cache info | clear`` — inspect or empty the trained-preset and
  attack-profile caches.

Reproduction checks run after each scenario; failures are reported (and
recorded in the artifact) but only fail the process under ``--strict``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.experiments.artifacts import (
    default_results_dir,
    write_artifact,
    write_bench_artifact,
)
from repro.experiments.cache import PresetCache, ProfileCache
from repro.experiments.registry import get_scenario, iter_scenarios
from repro.experiments.runner import run_scenario
from repro.presets import preset_spec

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DNN-Defender reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list registered scenarios")
    list_cmd.add_argument("--tag", default=None,
                          help="only scenarios carrying this tag")

    run_cmd = sub.add_parser("run", help="run one or more scenarios")
    run_cmd.add_argument("scenarios", nargs="+", metavar="scenario")
    run_cmd.add_argument("--trials", type=int, default=None,
                         help="Monte-Carlo trials (default: per-scenario)")
    run_cmd.add_argument("--jobs", type=int, default=1,
                         help="parallel worker processes (default: 1)")
    run_cmd.add_argument("--seed", type=int, default=0,
                         help="base seed; trial seeds derive from it")
    run_cmd.add_argument("--param", action="append", default=[],
                         metavar="KEY=VALUE",
                         help="scenario parameter override (repeatable)")
    run_cmd.add_argument("--params-json", default=None, metavar="JSON",
                         help="scenario parameters as one JSON object "
                              "(lossless; used by the sharded backend to "
                              "forward params to workers). --param "
                              "overrides individual keys on top")
    run_cmd.add_argument("--out", default=None,
                         help="artifact directory "
                              "(default: benchmarks/results/)")
    run_cmd.add_argument("--no-artifact", action="store_true",
                         help="skip writing the JSON artifact")
    run_cmd.add_argument("--strict", action="store_true",
                         help="exit non-zero if reproduction checks fail")
    run_cmd.add_argument("--quiet", action="store_true",
                         help="suppress the report table and progress")
    run_cmd.add_argument("--stream", action="store_true",
                         help="append per-trial JSONL results as trials "
                              "complete (<results>/<scenario>.trials.jsonl)")
    run_cmd.add_argument("--resume", action="store_true",
                         help="replay completed trials from the stream "
                              "file and run only the missing ones "
                              "(implies --stream)")
    run_cmd.add_argument("--backend", default="auto",
                         choices=("auto", "serial", "process", "sharded"),
                         help="execution backend (auto: serial for "
                              "--jobs 1, process pool otherwise)")
    run_cmd.add_argument("--shards", type=int, default=None,
                         help="shard count for --backend sharded "
                              "(default: --jobs)")
    run_cmd.add_argument("--shard", default=None, metavar="I/N",
                         help="run only shard I of N (trial indices "
                              "I, I+N, ...), streaming JSONL to "
                              "<out>/<scenario>.shard-IofN.trials.jsonl "
                              "for a later 'repro merge'")
    run_cmd.add_argument("--shard-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="--backend sharded: kill a chunk worker "
                              "exceeding this wall-clock budget and "
                              "requeue its unfinished trials")
    run_cmd.add_argument("--retries", type=int, default=None, metavar="N",
                         help="--backend sharded: re-dispatch a failed or "
                              "timed-out chunk up to N times, salvaging "
                              "its completed trials first (default: 1)")
    run_cmd.add_argument("--chunk-size", type=int, default=None, metavar="N",
                         help="--backend sharded: trials per work-stealing "
                              "chunk lease (default: pending/(4*shards))")
    run_cmd.add_argument("--chunk", type=int, default=None, metavar="K",
                         help="worker side of the sharded scheduler: run "
                              "one chunk lease, streaming JSONL to "
                              "<out>/<scenario>.chunk-K.trials.jsonl "
                              "(requires --trial-indices)")
    run_cmd.add_argument("--trial-indices", default=None, metavar="I,J,...",
                         help="comma-separated trial indices owned by the "
                              "--chunk lease")

    merge_cmd = sub.add_parser(
        "merge",
        help="fuse shard/chunk trial streams into the aggregate artifact",
    )
    merge_cmd.add_argument("scenario")
    merge_cmd.add_argument("shard_files", nargs="*", metavar="stream.jsonl",
                           help="shard/chunk stream files (default: discover "
                                "<out>/<scenario>.shard-*of*.trials.jsonl "
                                "and <out>/<scenario>.chunk-*.trials.jsonl)")
    merge_cmd.add_argument("--out", default=None,
                           help="artifact/shard directory "
                                "(default: benchmarks/results/)")
    merge_cmd.add_argument("--no-artifact", action="store_true",
                           help="skip writing the JSON artifact")
    merge_cmd.add_argument("--strict", action="store_true",
                           help="exit non-zero if reproduction checks fail")
    merge_cmd.add_argument("--quiet", action="store_true",
                           help="suppress the report table")

    bench_cmd = sub.add_parser(
        "bench", help="hot-path perf microbenchmarks (BENCH_hotpaths.json)"
    )
    bench_cmd.add_argument("--quick", action="store_true",
                           help="fewer repetitions (CI smoke budget)")
    bench_cmd.add_argument("--paths", default=None,
                           help="comma-separated subset of bench paths "
                                "(default: all)")
    bench_cmd.add_argument("--out", default=None,
                           help="artifact directory (default: repo root)")
    bench_cmd.add_argument("--no-artifact", action="store_true",
                           help="skip writing BENCH_hotpaths.json")

    cache_cmd = sub.add_parser(
        "cache", help="trained-preset / attack-profile cache tools"
    )
    cache_cmd.add_argument("action", choices=("info", "clear"))

    return parser


def _resolve_params(args) -> dict:
    """Merge ``--params-json`` (lossless) with ``--param k=v`` overrides."""
    import json

    params: dict = {}
    if getattr(args, "params_json", None):
        try:
            params = json.loads(args.params_json)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"--params-json is not valid JSON: {exc}")
        if not isinstance(params, dict):
            raise SystemExit(
                f"--params-json must be a JSON object, got "
                f"{type(params).__name__}"
            )
    params.update(_parse_params(args.param))
    return params


def _parse_params(pairs: list[str]) -> dict:
    """``k=v`` strings to a dict, coercing ints/floats when they parse."""
    params: dict = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param expects KEY=VALUE, got {pair!r}")
        key, raw = pair.split("=", 1)
        value: object = raw
        for cast in (int, float):
            try:
                value = cast(raw)
                break
            except ValueError:
                continue
        params[key] = value
    return params


def _cmd_list(args) -> int:
    rows = list(iter_scenarios(tag=args.tag))
    if not rows:
        print("no scenarios registered" + (f" with tag {args.tag!r}" if args.tag else ""))
        return 1
    name_width = max(len(s.name) for s in rows)
    source_width = max(len(s.source) for s in rows)
    for spec in rows:
        extras = []
        if spec.presets:
            extras.append(f"presets: {', '.join(spec.presets)}")
        if spec.deterministic:
            extras.append("deterministic")
        suffix = f"  [{'; '.join(extras)}]" if extras else ""
        print(
            f"{spec.name:<{name_width}}  {spec.source:<{source_width}}  "
            f"{spec.title}{suffix}"
        )
    print(f"\n{len(rows)} scenarios; run with: python -m repro run <name>")
    return 0


def _cmd_run(args) -> int:
    params = _resolve_params(args)
    cache = PresetCache()
    if args.shard is not None and (
        args.chunk is not None or args.trial_indices is not None
    ):
        raise SystemExit(
            "--shard and --chunk/--trial-indices are mutually exclusive "
            "worker flags"
        )
    if args.shard is not None:
        return _run_shards(args, params, cache)
    if args.chunk is not None or args.trial_indices is not None:
        return _run_chunks(args, params, cache)
    backend = _resolve_backend(args)
    failed_checks: list[str] = []
    for name in args.scenarios:
        spec = get_scenario(name)  # fail fast on typos, before any work

        def progress(done: int, total: int) -> None:
            print(f"  [{name}] trial {done}/{total}", file=sys.stderr)

        if not args.quiet:
            cold = [
                p for p in spec.presets
                if not cache.path_for(preset_spec(p)).exists()
            ]
            trials = args.trials if args.trials is not None else spec.default_trials
            print(
                f"running {name} ({spec.source or 'unsourced'}): "
                f"{trials} trial(s), {args.jobs} job(s), seed {args.seed}"
                + (f"; cold presets: {', '.join(cold)}" if cold else "")
            )
        stream_path = None
        if args.stream or args.resume:
            stream_dir = (
                pathlib.Path(args.out) if args.out else default_results_dir()
            )
            stream_path = stream_dir / f"{name}.trials.jsonl"
        result = run_scenario(
            name,
            trials=args.trials,
            jobs=args.jobs,
            seed=args.seed,
            params=params,
            cache=cache,
            progress=None if args.quiet else progress,
            stream_path=stream_path,
            resume=args.resume,
            backend=backend,
        )
        if stream_path is not None and not args.quiet:
            print(f"trial stream: {stream_path}")
        if not _finish_result(spec, name, result, args):
            failed_checks.append(name)
        if not args.quiet:
            print(f"elapsed: {result.elapsed_s:.2f}s")
    if failed_checks and args.strict:
        return 1
    return 0


def _finish_result(spec, name: str, result, args) -> bool:
    """Shared run/merge epilogue: checks, artifact, report, warning.

    Returns False when the reproduction checks failed.  Keeping this in
    one place guarantees merged and single-host runs record check errors
    identically — the artifact byte-identity contract depends on it.
    """
    try:
        spec.run_checks(result)
    except AssertionError as exc:
        result.check_error = f"{type(exc).__name__}: {exc}"
    if not args.no_artifact:
        path = write_artifact(result, directory=args.out)
        if not args.quiet:
            print(f"artifact: {path}")
    if not args.quiet:
        print(spec.render_report(result))
    if result.check_error is not None:
        print(
            f"warning: reproduction checks FAILED for {name}: "
            f"{result.check_error}",
            file=sys.stderr,
        )
        return False
    return True


def _reject_scheduler_flags(args, context: str) -> None:
    """Fail fast when sharded-scheduler flags reach a non-sharded path."""
    for flag, value in (
        ("--shards", args.shards),
        ("--shard-timeout", args.shard_timeout),
        ("--retries", args.retries),
        ("--chunk-size", args.chunk_size),
    ):
        if value is not None:
            raise SystemExit(f"{flag} requires {context}")


def _resolve_backend(args):
    """Map ``--backend``/``--shards`` to a Backend (None = runner default)."""
    from repro.experiments.backends import (
        ProcessPoolBackend,
        SerialBackend,
        ShardedBackend,
    )

    if args.backend != "sharded":
        _reject_scheduler_flags(args, "--backend sharded")
    if args.backend == "serial":
        return SerialBackend()
    if args.backend == "process":
        return ProcessPoolBackend(args.jobs)
    if args.backend == "sharded":
        shards = args.shards if args.shards is not None else args.jobs
        workdir = (
            pathlib.Path(args.out) if args.out else default_results_dir()
        )
        # Forward --resume so completed trials in existing workdir
        # streams are salvaged instead of re-run.
        return ShardedBackend(
            shards,
            workdir=workdir,
            resume=args.resume,
            timeout=args.shard_timeout,
            retries=1 if args.retries is None else args.retries,
            chunk_size=args.chunk_size,
        )
    return None  # auto: run_scenario picks serial/process from --jobs


def _run_chunks(args, params: dict, cache: PresetCache) -> int:
    """Worker side of the chunk scheduler: execute one lease per scenario."""
    from repro.experiments.backends import run_chunk

    if args.chunk is None or args.trial_indices is None:
        raise SystemExit("--chunk and --trial-indices must be used together")
    if args.backend != "auto":
        raise SystemExit("--chunk and --backend are mutually exclusive")
    _reject_scheduler_flags(
        args, "--backend sharded (they are orchestrator flags, not valid "
        "on the --chunk worker)"
    )
    try:
        indices = [
            int(text) for text in args.trial_indices.split(",") if text.strip()
        ]
    except ValueError:
        raise SystemExit(
            "--trial-indices expects comma-separated integers, got "
            f"{args.trial_indices!r}"
        ) from None
    if not indices:
        raise SystemExit("--trial-indices is empty")
    out_dir = pathlib.Path(args.out) if args.out else default_results_dir()
    for name in args.scenarios:
        get_scenario(name)  # fail fast on typos, before any work

        def progress(done: int, total: int) -> None:
            print(
                f"  [{name} chunk {args.chunk}] trial {done}/{total}",
                file=sys.stderr,
            )

        path = run_chunk(
            name,
            chunk_id=args.chunk,
            indices=indices,
            trials=args.trials,
            seed=args.seed,
            params=params,
            directory=out_dir,
            cache=cache,
            # A retried lease replays its previous attempt's stream.
            resume=True,
            jobs=args.jobs,
            progress=None if args.quiet else progress,
        )
        if not args.quiet:
            print(f"chunk stream: {path}")
    return 0


def _run_shards(args, params: dict, cache: PresetCache) -> int:
    """Worker side of a sharded run: execute one shard per scenario."""
    from repro.experiments.backends import parse_shard, run_shard

    if args.backend != "auto":
        raise SystemExit("--shard and --backend are mutually exclusive")
    _reject_scheduler_flags(
        args, "--backend sharded (they are orchestrator flags, not valid "
        "on the --shard worker; the shard count is the N in I/N)"
    )
    index, count = parse_shard(args.shard)
    out_dir = pathlib.Path(args.out) if args.out else default_results_dir()
    for name in args.scenarios:
        get_scenario(name)  # fail fast on typos, before any work

        def progress(done: int, total: int) -> None:
            print(
                f"  [{name} shard {index}/{count}] trial {done}/{total}",
                file=sys.stderr,
            )

        path = run_shard(
            name,
            shard=(index, count),
            trials=args.trials,
            seed=args.seed,
            params=params,
            directory=out_dir,
            cache=cache,
            resume=args.resume,
            jobs=args.jobs,
            progress=None if args.quiet else progress,
        )
        if not args.quiet:
            print(f"shard stream: {path}")
    return 0


def _cmd_merge(args) -> int:
    """Fuse shard/chunk streams into the canonical aggregate artifact."""
    from repro.experiments.backends import discover_streams, merge_shards

    spec = get_scenario(args.scenario)
    out_dir = pathlib.Path(args.out) if args.out else default_results_dir()
    paths = (
        [pathlib.Path(p) for p in args.shard_files]
        if args.shard_files
        else discover_streams(out_dir, args.scenario)
    )
    if not paths:
        print(
            f"error: no trial streams for {args.scenario!r} under {out_dir} "
            f"(expected {args.scenario}.shard-*of*.trials.jsonl or "
            f"{args.scenario}.chunk-*.trials.jsonl)",
            file=sys.stderr,
        )
        return 2
    result = merge_shards(paths, scenario=args.scenario)
    if not args.quiet:
        print(
            f"merged {len(paths)} shard stream(s), "
            f"{result.trials} trial(s)"
        )
    checks_ok = _finish_result(spec, args.scenario, result, args)
    return 1 if (not checks_ok and args.strict) else 0


def _cmd_bench(args) -> int:
    from repro.bench import format_suite, run_hotpath_suite

    paths = args.paths.split(",") if args.paths else None

    def progress(name: str) -> None:
        print(f"  [bench] {name} ...", file=sys.stderr)

    payload = run_hotpath_suite(
        quick=args.quick, paths=paths, progress=progress
    )
    print(format_suite(payload))
    if not args.no_artifact:
        path = write_bench_artifact(payload, directory=args.out)
        print(f"artifact: {path}")
    mismatches = [
        name for name, entry in payload["summary"].items()
        if not entry["parity"]
    ]
    if mismatches:
        print(
            f"error: parity MISMATCH in {', '.join(mismatches)} — fast and "
            "slow paths disagree",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_cache(args) -> int:
    caches = (("presets", PresetCache()), ("profiles", ProfileCache()))
    if args.action == "clear":
        for kind, cache in caches:
            removed = cache.clear()
            print(f"removed {removed} cached {kind[:-1]}(s) from {cache.root}")
        return 0
    for kind, cache in caches:
        entries = cache.entries()
        print(f"{kind} cache root: {cache.root}")
        if not entries:
            print("  (empty)")
            continue
        total = 0
        for path in entries:
            size = path.stat().st_size
            total += size
            print(f"  {path.name}  {size / 1024:.0f} KiB")
        print(f"  {len(entries)} entries, {total / 1024:.0f} KiB total")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    User-input errors (unknown scenario, bad argument values) print a
    one-line message and return 2 instead of dumping a traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "merge":
            return _cmd_merge(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "cache":
            return _cmd_cache(args)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")
