"""Flip executors: how an attack's chosen bit flip is *attempted*.

The bit-search algorithm (``repro.attacks.bfa``) decides *which* bit to flip;
an executor realises the flip in a deployment:

* :class:`SoftwareFlipExecutor` — flips the model copy directly; models the
  undefended baseline (every flip lands).
* :class:`LogicalDefenseExecutor` — the fast analytical path: a flip on a
  secured bit is blocked (DNN-Defender refreshes the victim row before
  ``T_RH``), anything else lands.  Equivalence with the full DRAM path is
  covered by integration tests.
* ``HammerExecutor`` (in :mod:`repro.attacks.hammer`) — drives real ACT
  streams through the simulated memory controller with the defense running.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol

from repro.nn.quant import BitLocation, QuantizedModel

__all__ = [
    "FlipExecutor",
    "SoftwareFlipExecutor",
    "LogicalDefenseExecutor",
    "execute_batch",
]


class FlipExecutor(Protocol):
    """Attempt a bit flip in the deployed model; return True if it landed."""

    def execute(self, location: BitLocation) -> bool:
        ...


def execute_batch(
    executor: FlipExecutor, locations: Sequence[BitLocation]
) -> list[bool]:
    """Execute many flips, using the executor's batched path when it has one.

    Executors may expose ``execute_many(locations) -> list[bool]`` — the
    DRAM-backed ``HammerExecutor`` uses it to share hammer windows between
    target bits on the same victim row.  Executors without a batched path
    fall back to a per-location ``execute`` loop with identical semantics.
    """
    many = getattr(executor, "execute_many", None)
    if many is not None:
        return list(many(locations))
    return [executor.execute(location) for location in locations]


class SoftwareFlipExecutor:
    """Undefended deployment: every requested flip succeeds."""

    def __init__(self, qmodel: QuantizedModel):
        self.qmodel = qmodel
        self.flips_performed = 0

    def execute(self, location: BitLocation) -> bool:
        self.qmodel.flip_bit(location)
        self.flips_performed += 1
        return True


class LogicalDefenseExecutor:
    """Analytical defense outcome: secured bits never flip.

    This captures DNN-Defender's guarantee (a target row is swap-refreshed
    within every hammer window, so its disturbance never reaches ``T_RH``)
    without simulating every activation.  ``blocked`` counts defended
    attempts — the defense-side metric reported in Section 5.2.
    """

    def __init__(self, qmodel: QuantizedModel, secured_bits: set[BitLocation]):
        self.qmodel = qmodel
        self.secured_bits = set(secured_bits)
        self.blocked = 0
        self.flips_performed = 0

    def execute(self, location: BitLocation) -> bool:
        if location in self.secured_bits:
            self.blocked += 1
            return False
        self.qmodel.flip_bit(location)
        self.flips_performed += 1
        return True


class BehavioralDefenseExecutor:
    """Stochastic block-and-deflect model of swap/shuffle defenses.

    Used for the Table 3 rows of RRS / SRS / SHADOW: an intended flip is
    blocked with probability ``block_prob`` (the defense relocated the
    aggressor or victim in time), and a blocked hammer session still flips
    a *random* bit with probability ``collateral_prob`` — the attacker's
    activations land next to relocated, unrelated data.  The result is the
    published plateau shape: hundreds of attempted flips, modest accuracy
    degradation.
    """

    def __init__(
        self,
        qmodel: QuantizedModel,
        block_prob: float,
        collateral_prob: float,
        rng,
    ):
        if not 0.0 <= block_prob <= 1.0:
            raise ValueError(f"block_prob must be in [0, 1], got {block_prob}")
        if not 0.0 <= collateral_prob <= 1.0:
            raise ValueError(
                f"collateral_prob must be in [0, 1], got {collateral_prob}"
            )
        self.qmodel = qmodel
        self.block_prob = block_prob
        self.collateral_prob = collateral_prob
        self.rng = rng
        self.blocked = 0
        self.flips_performed = 0
        self.collateral_flips = 0

    def _random_location(self) -> BitLocation:
        total = self.qmodel.total_bits
        flat = int(self.rng.integers(0, total))
        for layer_index, layer in enumerate(self.qmodel.layers):
            bits = layer.num_weights * 8
            if flat < bits:
                return BitLocation(layer_index, flat // 8, flat % 8)
            flat -= bits
        raise AssertionError("unreachable: flat index exceeded total bits")

    def execute(self, location: BitLocation) -> bool:
        if self.rng.random() < self.block_prob:
            self.blocked += 1
            if self.rng.random() < self.collateral_prob:
                self.qmodel.flip_bit(self._random_location())
                self.collateral_flips += 1
            return False
        self.qmodel.flip_bit(location)
        self.flips_performed += 1
        return True
