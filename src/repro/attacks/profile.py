"""Multi-round vulnerable-bit profiling (Section 4, Priority Protection).

The defender runs the *attacker's own* search algorithm on a copy of the
victim model: round ``R_1`` performs a complete BFA and records the flipped
bits; the model is restored, and round ``R_2`` repeats the search while
skipping every bit from ``R_1``; and so on for ``r`` rounds.  The union of
all rounds is the priority set handed to DNN-Defender — more rounds means
more secured bits and a higher protection level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.bfa import BfaConfig, BitFlipAttack
from repro.nn.quant import BitLocation, QuantizedModel

__all__ = ["ProfileResult", "profile_vulnerable_bits"]


@dataclass
class ProfileResult:
    """Vulnerable bits discovered per profiling round."""

    rounds: list[list[BitLocation]] = field(default_factory=list)

    @property
    def all_bits(self) -> set[BitLocation]:
        return {bit for round_bits in self.rounds for bit in round_bits}

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def bits_up_to_round(self, r: int) -> set[BitLocation]:
        """Union of rounds ``R_1 .. R_r`` (protection level knob)."""
        if r < 0:
            raise ValueError("round count must be non-negative")
        return {bit for round_bits in self.rounds[:r] for bit in round_bits}


def profile_vulnerable_bits(
    qmodel: QuantizedModel,
    attack_x: np.ndarray,
    attack_y: np.ndarray,
    rounds: int,
    config: BfaConfig | None = None,
    eval_x: np.ndarray | None = None,
    eval_y: np.ndarray | None = None,
) -> ProfileResult:
    """Run ``rounds`` of restore-and-skip BFA profiling.

    The model is always restored to its pre-profiling weights, including
    after the last round; profiling is read-only from the deployment's
    point of view.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    config = config or BfaConfig(stop_accuracy=None)
    snapshot = qmodel.snapshot()
    skip: set[BitLocation] = set()
    result = ProfileResult()
    try:
        for _ in range(rounds):
            attack = BitFlipAttack(
                qmodel,
                attack_x,
                attack_y,
                config=config,
                skip=frozenset(skip),
                eval_x=eval_x,
                eval_y=eval_y,
            )
            round_result = attack.run()
            qmodel.restore(snapshot)
            if not round_result.flips:
                break  # search exhausted: no loss-increasing bits remain
            result.rounds.append(round_result.flips)
            skip.update(round_result.flips)
    finally:
        qmodel.restore(snapshot)
    return result
