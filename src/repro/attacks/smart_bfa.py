"""smart-bfa: defense-aware progressive bit search (Ghavami et al. [PAPERS]).

The stealth counterpart of the adaptive white-box attacker.  Where the
adaptive attack skips *individually secured bits* (DNN-Defender's swap
set), smart-bfa reasons about *detection*: checksum defenses like RADAR
only guard the high bit positions of each weight (the sign and top
magnitude bits, whose flips do BFA-scale damage), so an attacker that
confines its search to the unguarded low columns never perturbs a
signature and its flips survive every detection sweep.

Concretely this runs the progressive bit search of
:class:`repro.attacks.bfa.BitFlipAttack` with

* ``skip_bit_positions`` = the defense's ``guarded_bit_positions()``
  (whole bit columns masked out of the candidate space), and
* ``skip`` = the defense's ``protected_bits()`` (individually secured
  bits, so the attacker also adapts to swap-based defenses).

Against an undefended model both sets are empty and smart-bfa degrades
to the plain BFA.  Against RADAR it needs more flips per accuracy point
(low-magnitude bits move weights less) but its damage is *permanent* —
the recovery sweep has nothing to detect — which is exactly the
trade-off the tournament matrix surfaces.
"""

from __future__ import annotations

from repro.attacks.bfa import BfaConfig, BitFlipAttack
from repro.attacks.protocol import AttackContext, AttackOutcome, Attacker

__all__ = ["SmartBfaAttacker"]


class SmartBfaAttacker(Attacker):
    """Progressive BFA that stays off guarded bit columns."""

    name = "smart-bfa"

    def execute(self, context: AttackContext) -> AttackOutcome:
        attack_x, attack_y = context.batch()
        eval_x, eval_y = context.eval_batch()
        guarded = context.guarded_bit_positions()
        secured = set(context.protected_bits())
        stop = context.param("stop_accuracy")
        config = BfaConfig(
            max_iterations=max(int(context.budget), 1),
            stop_accuracy=None if stop is None else float(stop),
            exact_eval_top=int(context.param("exact_eval_top", 4)),
        )
        attack = BitFlipAttack(
            context.qmodel, attack_x, attack_y,
            config=config,
            skip=secured,
            executor=context.flip_executor(),
            eval_x=eval_x, eval_y=eval_y,
            skip_bit_positions=guarded,
        )
        result = attack.run()
        return AttackOutcome(
            attacker=self.name,
            initial_accuracy=result.initial_accuracy,
            final_accuracy=result.final_accuracy,
            attempts=len(result.attempts),
            flips=list(result.flips),
            blocked=result.num_blocked,
            detail={
                "avoided_bit_columns": float(len(guarded)),
                "known_secured_bits": float(len(secured)),
            },
        )
