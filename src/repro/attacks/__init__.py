"""Adversarial weight attacks: BFA, random flips, RowHammer driver, and
the registry-backed ``Attacker`` protocol (``@attacker``)."""

from repro.attacks.adaptive import (
    SemiWhiteBoxResult,
    semi_white_box_attack,
    white_box_adaptive_attack,
)
from repro.attacks.bfa import AttackResult, BfaConfig, BitFlipAttack, FlipAttempt
from repro.attacks.executor import (
    BehavioralDefenseExecutor,
    FlipExecutor,
    LogicalDefenseExecutor,
    SoftwareFlipExecutor,
    execute_batch,
)
from repro.attacks.hammer import HammerExecutor, RowHammerAttacker, TickingDefense
from repro.attacks.profile import ProfileResult, profile_vulnerable_bits
from repro.attacks.protocol import AttackContext, Attacker, AttackOutcome
from repro.attacks.random_attack import (
    RandomAttackResult,
    random_bit_attack,
    sample_random_bits,
)
from repro.attacks.registry import (
    AttackerSpec,
    attacker,
    attacker_names,
    build_attacker,
    get_attacker,
    iter_attackers,
    register_attacker,
    unregister_attacker,
)
from repro.attacks.smart_bfa import SmartBfaAttacker
from repro.attacks.tbfa import TargetedBitFlipAttack, TbfaConfig, TbfaResult
from repro.attacks.threat import SEMI_WHITE_BOX, WHITE_BOX, ThreatModel

__all__ = [
    "AttackContext",
    "Attacker",
    "AttackOutcome",
    "AttackerSpec",
    "attacker",
    "attacker_names",
    "build_attacker",
    "get_attacker",
    "iter_attackers",
    "register_attacker",
    "unregister_attacker",
    "SmartBfaAttacker",
    "SemiWhiteBoxResult",
    "semi_white_box_attack",
    "white_box_adaptive_attack",
    "AttackResult",
    "BfaConfig",
    "BitFlipAttack",
    "FlipAttempt",
    "BehavioralDefenseExecutor",
    "FlipExecutor",
    "LogicalDefenseExecutor",
    "SoftwareFlipExecutor",
    "execute_batch",
    "HammerExecutor",
    "RowHammerAttacker",
    "TickingDefense",
    "ProfileResult",
    "profile_vulnerable_bits",
    "RandomAttackResult",
    "random_bit_attack",
    "sample_random_bits",
    "TargetedBitFlipAttack",
    "TbfaConfig",
    "TbfaResult",
    "SEMI_WHITE_BOX",
    "WHITE_BOX",
    "ThreatModel",
]
