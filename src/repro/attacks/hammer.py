"""RowHammer attack driver: realises BFA flips as ACT streams.

This is the reproduction's stand-in for the DeepHammer-style end-to-end
exploit: given a weight-bit target, the driver consults the mapping file for
the logical row, follows the controller's indirection to the *current
physical* row (the white-box attacker observes defense swaps and re-targets
— Section 4: "the malicious process knows the new location"), picks the
adjacent aggressor row, and hammers it to the RowHammer threshold.

Defense mechanisms run concurrently through a ``tick()`` protocol: the
driver splits each hammer window into chunks and lets the defense execute
its due swap operations between chunks, exactly the interleaving the
paper's timing analysis assumes (swaps must complete within
``T_RH x T_ACT``).
"""

from __future__ import annotations

from typing import Protocol

from repro.dram.address import RowAddress
from repro.dram.controller import MemoryController
from repro.mapping.layout import WeightLayout
from repro.nn.quant import BitLocation

__all__ = ["TickingDefense", "RowHammerAttacker", "HammerExecutor"]


class TickingDefense(Protocol):
    """Defense that performs its due maintenance when ticked."""

    def tick(self) -> None:
        ...


class _NullDefense:
    def tick(self) -> None:
        return None


class RowHammerAttacker:
    """Issues hammer sessions against weight bits through the controller."""

    def __init__(
        self,
        controller: MemoryController,
        layout: WeightLayout,
        defense: TickingDefense | None = None,
        chunks_per_window: int = 4,
        track_swaps: bool = True,
        sided: str = "single",
    ):
        if chunks_per_window < 1:
            raise ValueError("chunks_per_window must be >= 1")
        if sided not in ("single", "double"):
            raise ValueError(f"sided must be 'single' or 'double', got {sided!r}")
        self.controller = controller
        self.layout = layout
        self.defense = defense or _NullDefense()
        self.chunks_per_window = chunks_per_window
        # White-box attackers observe defense swaps and re-target the moved
        # victim (Section 4); a non-tracking attacker keeps hammering the
        # address it resolved at session start — RRS/SRS rely on that.
        self.track_swaps = track_swaps
        # Single-sided hammering (Fig. 3) uses one adjacent aggressor;
        # double-sided (DeepHammer-style) sandwiches the victim between
        # both neighbours, reaching the threshold with the same total
        # activation count split across two rows.
        self.sided = sided
        self.sessions = 0
        self.activations_issued = 0

    def _aggressor_for(self, victim_physical: RowAddress) -> RowAddress:
        """Adjacent row used as the single-sided aggressor."""
        neighbors = self.controller.device.mapper.neighbors(victim_physical)
        if not neighbors:
            raise ValueError(f"victim {victim_physical} has no neighbours")
        # Prefer the higher neighbour, matching Fig. 3's a+1 choice.
        return neighbors[-1]

    def _aggressors_for(self, victim_physical: RowAddress) -> list[RowAddress]:
        """Aggressor rows for the configured hammering mode."""
        if self.sided == "single":
            return [self._aggressor_for(victim_physical)]
        neighbors = self.controller.device.mapper.neighbors(victim_physical)
        if not neighbors:
            raise ValueError(f"victim {victim_physical} has no neighbours")
        return neighbors

    def attempt_flip(self, location: BitLocation, max_windows: int = 3) -> bool:
        """Hammer one weight bit for up to ``max_windows`` full windows.

        A row the defense refreshes *deterministically* (a secured target
        row) never flips no matter how many windows the attacker spends; an
        unprotected row may survive one window by luck (e.g. it happened to
        be the step-4 non-target of a nearby swap) but falls within a few.
        Returns True when the flip materialised in DRAM; the model copy is
        re-synchronised either way, so the caller observes ground truth.
        """
        if max_windows < 1:
            raise ValueError("max_windows must be >= 1")
        logical_row, bit_in_row = self.layout.locate_bit(location)
        before = self.layout.qmodel.bit_value(location)
        t_rh = self.controller.timing.t_rh
        base = t_rh // self.chunks_per_window
        counts = [base] * self.chunks_per_window
        counts[-1] += t_rh - base * self.chunks_per_window
        declared: RowAddress | None = None
        flipped = False
        # Non-tracking attackers resolve the victim and the aggressor
        # *address* once; their activations then follow whatever physical
        # row the address maps to after defense remapping.
        initial_physical = self.controller.indirection.physical(logical_row)
        aggressor_logical = self.controller.indirection.logical(
            self._aggressor_for(initial_physical)
        )
        # Re-resolving the victim and aggressors is only necessary after a
        # defense remap; the indirection version check makes repeated
        # bursts against an unmoved row O(1) instead of re-deriving the
        # same addresses every chunk.
        resolved_version: int | None = None
        physical = initial_physical
        aggressors: list[RowAddress] = []
        cache_resolution = self.controller.fast_path
        for _ in range(max_windows):
            for count in counts:
                # Let the defense run whatever is due before this burst.
                self.defense.tick()
                version = self.controller.indirection.version
                if not cache_resolution or resolved_version != version:
                    if self.track_swaps:
                        # Re-resolve: the defense may have moved the victim.
                        physical = self.controller.indirection.physical(
                            logical_row
                        )
                        aggressors = self._aggressors_for(physical)
                    else:
                        physical = initial_physical
                        aggressors = [
                            self.controller.indirection.physical(
                                aggressor_logical
                            )
                        ]
                    resolved_version = version
                if declared is not None and declared != physical:
                    self.controller.clear_attack_targets(declared)
                if declared != physical:
                    self.controller.declare_attack_targets(
                        physical, [bit_in_row]
                    )
                    declared = physical
                share = count // len(aggressors)
                shares = [share] * len(aggressors)
                shares[0] += count - share * len(aggressors)
                for aggressor, n_acts in zip(aggressors, shares):
                    self.controller.activate(
                        aggressor, actor="attacker", count=n_acts, hammer=True
                    )
                    self.activations_issued += n_acts
            self.sessions += 1
            self.layout.sync_model_from_dram()
            flipped = self.layout.qmodel.bit_value(location) != before
            if flipped:
                break
        if declared is not None:
            self.controller.clear_attack_targets(declared)
        return flipped


class HammerExecutor:
    """Adapts :class:`RowHammerAttacker` to the attack executor protocol."""

    def __init__(self, attacker: RowHammerAttacker):
        self.attacker = attacker
        self.flips_performed = 0
        self.blocked = 0

    def execute(self, location: BitLocation) -> bool:
        succeeded = self.attacker.attempt_flip(location)
        if succeeded:
            self.flips_performed += 1
        else:
            self.blocked += 1
        return succeeded
