"""RowHammer attack driver: realises BFA flips as ACT streams.

This is the reproduction's stand-in for the DeepHammer-style end-to-end
exploit: given a weight-bit target, the driver consults the mapping file for
the logical row, follows the controller's indirection to the *current
physical* row (the white-box attacker observes defense swaps and re-targets
— Section 4: "the malicious process knows the new location"), picks the
adjacent aggressor row, and hammers it to the RowHammer threshold.

Defense mechanisms run concurrently through a ``tick()`` protocol: the
driver splits each hammer window into chunks and lets the defense execute
its due swap operations between chunks, exactly the interleaving the
paper's timing analysis assumes (swaps must complete within
``T_RH x T_ACT``).

Every hammer burst goes through ``MemoryController.activate`` and is
therefore visible to command observers: a :class:`repro.dram.CommandTrace`
records the bursts for replay and a :class:`repro.dram.TimingChecker`
validates them against the DDR timing rules (a hammer ACT stream runs at
``T_ACT`` = 118 ns per activation, well above every rule window, so a
correctly charged attack is timing-legal by construction).

Multi-bit attacks (T-BFA's N-to-1 flip sets, the limited-budget attacks of
Bai et al.) often target several bits that share a victim row.  The batched
:meth:`RowHammerAttacker.attempt_flips` path groups targets by victim
logical row, declares all of a row's target bits at once, and shares one
hammer window — and one post-window model sync — across them, instead of
paying a full ``T_RH`` activation window (plus sync) per bit.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol

from repro.dram.address import RowAddress
from repro.dram.controller import MemoryController
from repro.mapping.layout import WeightLayout
from repro.nn.quant import BitLocation

__all__ = ["TickingDefense", "RowHammerAttacker", "HammerExecutor"]


class TickingDefense(Protocol):
    """Defense that performs its due maintenance when ticked."""

    def tick(self) -> None:
        ...


class _NullDefense:
    def tick(self) -> None:
        return None


class RowHammerAttacker:
    """Issues hammer sessions against weight bits through the controller."""

    def __init__(
        self,
        controller: MemoryController,
        layout: WeightLayout,
        defense: TickingDefense | None = None,
        chunks_per_window: int = 4,
        track_swaps: bool = True,
        sided: str = "single",
    ):
        if chunks_per_window < 1:
            raise ValueError("chunks_per_window must be >= 1")
        if sided not in ("single", "double"):
            raise ValueError(f"sided must be 'single' or 'double', got {sided!r}")
        self.controller = controller
        self.layout = layout
        self.defense = defense or _NullDefense()
        self.chunks_per_window = chunks_per_window
        # White-box attackers observe defense swaps and re-target the moved
        # victim (Section 4); a non-tracking attacker keeps hammering the
        # address it resolved at session start — RRS/SRS rely on that.
        self.track_swaps = track_swaps
        # Single-sided hammering (Fig. 3) uses one adjacent aggressor;
        # double-sided (DeepHammer-style) sandwiches the victim between
        # both neighbours, reaching the threshold with the same total
        # activation count split across two rows.
        self.sided = sided
        self.sessions = 0
        self.activations_issued = 0

    @property
    def busy_time_ns(self) -> float:
        """Bus time the controller has charged to this attacker so far."""
        return self.controller.actor_stats("attacker").total_time_ns

    def _aggressor_for(self, victim_physical: RowAddress) -> RowAddress:
        """Adjacent row used as the single-sided aggressor."""
        neighbors = self.controller.device.mapper.neighbors(victim_physical)
        if not neighbors:
            raise ValueError(f"victim {victim_physical} has no neighbours")
        # Prefer the higher neighbour, matching Fig. 3's a+1 choice.
        return neighbors[-1]

    def _aggressors_for(self, victim_physical: RowAddress) -> list[RowAddress]:
        """Aggressor rows for the configured hammering mode."""
        if self.sided == "single":
            return [self._aggressor_for(victim_physical)]
        neighbors = self.controller.device.mapper.neighbors(victim_physical)
        if not neighbors:
            raise ValueError(f"victim {victim_physical} has no neighbours")
        return neighbors

    def _burst_counts(self) -> list[int]:
        """Per-chunk activation counts of one ``T_RH`` hammer window.

        ``T_RH`` activations split over ``chunks_per_window`` bursts with
        the remainder on the last.  When ``T_RH < chunks_per_window`` the
        even split floors to zero: a zero-activation burst would still
        tick the defense and re-declare/charge attack targets, so empty
        bursts are dropped (regression-tested in
        ``tests/attacks/test_hammer_batched.py``).
        """
        t_rh = self.controller.timing.t_rh
        base = t_rh // self.chunks_per_window
        counts = [base] * self.chunks_per_window
        counts[-1] += t_rh - base * self.chunks_per_window
        return [count for count in counts if count > 0]

    def _hammer_row(
        self,
        logical_row: RowAddress,
        target_bits: list[int],
        max_windows: int,
        flipped_check,
    ) -> bool:
        """Hammer one victim row for up to ``max_windows`` windows.

        All of the row's target bits are declared together; after each
        window the model is synced from DRAM *once* and ``flipped_check``
        decides whether every requested flip materialised (stopping
        early).  Returns the final check outcome.
        """
        counts = self._burst_counts()
        declared: RowAddress | None = None
        done = False
        # Non-tracking attackers resolve the victim and the aggressor
        # *address* once; their activations then follow whatever physical
        # row the address maps to after defense remapping.
        initial_physical = self.controller.indirection.physical(logical_row)
        aggressor_logical = self.controller.indirection.logical(
            self._aggressor_for(initial_physical)
        )
        # Re-resolving the victim and aggressors is only necessary after a
        # defense remap; the indirection version check makes repeated
        # bursts against an unmoved row O(1) instead of re-deriving the
        # same addresses every chunk.
        resolved_version: int | None = None
        physical = initial_physical
        aggressors: list[RowAddress] = []
        cache_resolution = self.controller.fast_path
        for _ in range(max_windows):
            for count in counts:
                # Let the defense run whatever is due before this burst.
                self.defense.tick()
                version = self.controller.indirection.version
                if not cache_resolution or resolved_version != version:
                    if self.track_swaps:
                        # Re-resolve: the defense may have moved the victim.
                        physical = self.controller.indirection.physical(
                            logical_row
                        )
                        aggressors = self._aggressors_for(physical)
                    else:
                        physical = initial_physical
                        aggressors = [
                            self.controller.indirection.physical(
                                aggressor_logical
                            )
                        ]
                    resolved_version = version
                if declared is not None and declared != physical:
                    self.controller.clear_attack_targets(declared)
                if declared != physical:
                    self.controller.declare_attack_targets(
                        physical, target_bits
                    )
                    declared = physical
                share = count // len(aggressors)
                shares = [share] * len(aggressors)
                shares[0] += count - share * len(aggressors)
                for aggressor, n_acts in zip(aggressors, shares):
                    if n_acts == 0:
                        continue  # an empty share issues no commands
                    self.controller.activate(
                        aggressor, actor="attacker", count=n_acts, hammer=True
                    )
                    self.activations_issued += n_acts
            self.sessions += 1
            self.layout.sync_model_from_dram()
            done = flipped_check()
            if done:
                break
        if declared is not None:
            self.controller.clear_attack_targets(declared)
        return done

    def attempt_flip(self, location: BitLocation, max_windows: int = 3) -> bool:
        """Hammer one weight bit for up to ``max_windows`` full windows.

        A row the defense refreshes *deterministically* (a secured target
        row) never flips no matter how many windows the attacker spends; an
        unprotected row may survive one window by luck (e.g. it happened to
        be the step-4 non-target of a nearby swap) but falls within a few.
        Returns True when the flip materialised in DRAM; the model copy is
        re-synchronised either way, so the caller observes ground truth.
        """
        return self.attempt_flips([location], max_windows=max_windows)[0]

    def attempt_flips(
        self, locations: Sequence[BitLocation], max_windows: int = 3
    ) -> list[bool]:
        """Batched multi-bit hammer: one window shared per victim row.

        ``locations`` are grouped by victim logical row (first-seen row
        order, preserving per-row target order); each row's target bits
        are declared together and hammered in one shared window loop, and
        the post-window model sync runs once per row per window instead
        of once per bit.  A row's loop stops as soon as *all* of its
        requested flips materialised.  Returns per-location success flags
        aligned with the input order.

        For a single location this is exactly :meth:`attempt_flip`; for
        ``k`` bits on one unprotected row it issues one ``T_RH`` window
        where the sequential path issues ``k``.
        """
        if max_windows < 1:
            raise ValueError("max_windows must be >= 1")
        located = self.layout.locate_bits(locations)
        groups: dict[RowAddress, list[int]] = {}
        for index, (logical_row, _) in enumerate(located):
            groups.setdefault(logical_row, []).append(index)
        results = [False] * len(locations)
        qmodel = self.layout.qmodel
        for logical_row, indices in groups.items():
            target_bits = [located[i][1] for i in indices]
            before = {i: qmodel.bit_value(locations[i]) for i in indices}

            def check(indices=indices, before=before) -> bool:
                done = True
                for i in indices:
                    results[i] = qmodel.bit_value(locations[i]) != before[i]
                    done = done and results[i]
                return done

            self._hammer_row(logical_row, target_bits, max_windows, check)
        return results


class HammerExecutor:
    """Adapts :class:`RowHammerAttacker` to the attack executor protocol."""

    def __init__(self, attacker: RowHammerAttacker):
        self.attacker = attacker
        self.flips_performed = 0
        self.blocked = 0

    def execute(self, location: BitLocation) -> bool:
        succeeded = self.attacker.attempt_flip(location)
        if succeeded:
            self.flips_performed += 1
        else:
            self.blocked += 1
        return succeeded

    def execute_many(self, locations: Sequence[BitLocation]) -> list[bool]:
        """Batched multi-bit execution through shared hammer windows.

        Unlike a per-``execute`` loop, target bits sharing a victim row
        share one window and one model sync
        (:meth:`RowHammerAttacker.attempt_flips`); the defense ticks once
        per burst rather than once per burst *per bit*.
        """
        outcomes = self.attacker.attempt_flips(list(locations))
        for succeeded in outcomes:
            if succeeded:
                self.flips_performed += 1
            else:
                self.blocked += 1
        return outcomes
