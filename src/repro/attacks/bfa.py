"""Progressive bit-search Bit-Flip Attack (Rakin et al., ICCV 2019 [15]).

The attack iterates: compute the gradient of the inference loss w.r.t. every
weight, rank candidate single-bit flips by their first-order loss increase
``dL ~ g * (delta_w)``, exact-evaluate the best few candidates by actually
flipping them on the attacker's model copy, and commit the winner through a
:class:`FlipExecutor` (software, analytical defense, or the full DRAM
simulation).  Iteration stops when accuracy collapses to the target level or
the flip budget is exhausted — matching Eq. 1's maximisation of loss under a
minimal Hamming-distance budget.

Vectorised bit scoring: for an int8 weight ``w`` with per-layer scale ``s``,
flipping bit ``b < 7`` changes the weight by ``+-2^b * s`` (sign from the
current bit value) and flipping the sign bit by ``-+128 * s``; the estimated
loss change of a flip is ``g * delta_w`` and only loss-increasing flips are
candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.executor import FlipExecutor, SoftwareFlipExecutor
from repro.nn.quant import BitLocation, QuantizedModel
from repro.nn.train import evaluate, loss_and_grads
from repro.nn.tensor import Tensor, no_grad
from repro.nn import functional as F

__all__ = ["BfaConfig", "FlipAttempt", "AttackResult", "BitFlipAttack"]

_BIT_POSITIONS = np.arange(8, dtype=np.uint8)
# Weight delta for flipping bit b of a two's-complement byte whose bit is
# currently 0; the sign bit subtracts 128.  A set bit moves by the negation.
_BIT_MAGNITUDES = np.array(
    [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, -128.0], dtype=np.float64
)


@dataclass(frozen=True)
class BfaConfig:
    """Knobs of the progressive bit search."""

    max_iterations: int = 50
    stop_accuracy: float | None = None   # e.g. 0.11 for CIFAR-10-like
    exact_eval_top: int = 8              # layers exact-evaluated per iteration
    eval_batch_size: int = 256
    min_estimated_gain: float = 0.0      # candidates must increase loss
    # Fast candidate scoring: argpartition top-k over masked scores with a
    # per-layer bit-delta cache, instead of a full argsort plus a Python
    # rank scan per layer per iteration.  Parity-tested against the slow
    # path; keep the flag so benchmarks and tests can compare both.
    fast_scoring: bool = True
    # Micro-batch size for the per-iteration gradient pass
    # (:func:`repro.nn.train.loss_and_grads`): ``None`` is one full-batch
    # pass; a smaller value accumulates grads across slices so large
    # attack batches no longer spike peak activation memory.
    grad_batch_size: int | None = None

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.exact_eval_top < 1:
            raise ValueError("exact_eval_top must be >= 1")
        if self.grad_batch_size is not None and self.grad_batch_size < 1:
            raise ValueError("grad_batch_size must be >= 1 or None")


@dataclass(frozen=True)
class FlipAttempt:
    """One committed attack step (successful or defended)."""

    iteration: int
    location: BitLocation
    estimated_gain: float
    succeeded: bool
    loss_after: float
    accuracy_after: float


@dataclass
class AttackResult:
    """Outcome of one attack run."""

    initial_accuracy: float
    attempts: list[FlipAttempt] = field(default_factory=list)

    @property
    def flips(self) -> list[BitLocation]:
        return [a.location for a in self.attempts if a.succeeded]

    @property
    def num_flips(self) -> int:
        return len(self.flips)

    @property
    def num_blocked(self) -> int:
        return sum(1 for a in self.attempts if not a.succeeded)

    @property
    def final_accuracy(self) -> float:
        if not self.attempts:
            return self.initial_accuracy
        return self.attempts[-1].accuracy_after

    @property
    def accuracy_history(self) -> list[float]:
        return [self.initial_accuracy] + [a.accuracy_after for a in self.attempts]


class BitFlipAttack:
    """Progressive bit search over a quantized model.

    Args:
        qmodel: the (attacker-visible copy of the) deployed model.  White-box
            threat model: identical architecture and weights (Table 1).
        attack_x / attack_y: the attacker's sample batch (test data).
        config: search parameters.
        skip: bits the attacker will not target (adaptive attacker skipping
            bits it knows are secured, or bits burned in earlier rounds).
        skip_bit_positions: whole bit *columns* (0..7) the attacker avoids
            in every weight of every layer — the smart-bfa attacker's way
            of staying invisible to checksum defenses that only guard the
            high bit positions.  ``None`` (default) targets all columns.
        executor: how committed flips are attempted; defaults to the
            undefended software executor.
        eval_x / eval_y: held-out data for the reported accuracy curve;
            defaults to the attack batch.
    """

    def __init__(
        self,
        qmodel: QuantizedModel,
        attack_x: np.ndarray,
        attack_y: np.ndarray,
        config: BfaConfig | None = None,
        skip: set[BitLocation] | None = None,
        executor: FlipExecutor | None = None,
        eval_x: np.ndarray | None = None,
        eval_y: np.ndarray | None = None,
        skip_bit_positions: frozenset[int] | None = None,
    ):
        self.qmodel = qmodel
        self.attack_x = attack_x
        self.attack_y = attack_y
        self.config = config or BfaConfig()
        self.skip = set(skip or ())
        self.skip_bit_positions = frozenset(skip_bit_positions or ())
        if any(b < 0 or b > 7 for b in self.skip_bit_positions):
            raise ValueError(
                f"skip_bit_positions must be in 0..7, "
                f"got {sorted(self.skip_bit_positions)}"
            )
        # Column index array for vectorised masking (None when unused so
        # the default path stays byte-for-byte identical).
        self._skip_columns = (
            np.array(sorted(self.skip_bit_positions), dtype=np.intp)
            if self.skip_bit_positions else None
        )
        self.executor = executor or SoftwareFlipExecutor(qmodel)
        self.eval_x = attack_x if eval_x is None else eval_x
        self.eval_y = attack_y if eval_y is None else eval_y
        self.tried: set[BitLocation] = set()
        # Per-layer skip counts: the candidate scan must look past every
        # skipped bit before giving up on a layer (secured sets can cover
        # entire rows' worth of top candidates).
        self._skip_per_layer: dict[int, int] = {}
        for location in self.skip:
            self._skip_per_layer[location.layer] = (
                self._skip_per_layer.get(location.layer, 0) + 1
            )
        # Fast-path state: a persistent per-layer boolean mask over the
        # flat (weight, bit) space covering skip + tried bits, and a
        # bit-delta table cached per layer, invalidated by the layer's
        # mutation version (committed flips, collateral damage, restores).
        self._masks: dict[int, np.ndarray] = {}
        self._delta_cache: dict[int, tuple[int, np.ndarray]] = {}

    # ------------------------------------------------------------------ #
    # Candidate generation
    # ------------------------------------------------------------------ #

    @staticmethod
    def _bit_deltas(weight_int: np.ndarray) -> np.ndarray:
        """Integer weight change for flipping each bit: shape ``(n, 8)``."""
        bytes_view = weight_int.reshape(-1).view(np.uint8)
        bit_values = (bytes_view[:, None] >> _BIT_POSITIONS) & 1
        # Magnitude bits 0..6 gain +2^b when currently 0, lose 2^b when 1;
        # the sign bit (two's complement) moves the weight by -/+128.
        deltas = np.where(bit_values == 0, _BIT_MAGNITUDES, -_BIT_MAGNITUDES)
        return deltas

    def _scaled_deltas(self, layer_index: int) -> np.ndarray:
        """Per-layer ``_bit_deltas * scale``, cached until the layer mutates.

        The cache key is :attr:`QuantizedLayer.version`, which every
        integer-weight mutation bumps (committed flips, behavioural
        collateral flips, DRAM sync, snapshots) — including the exact-eval
        flip/revert pairs, which net out but still invalidate, keeping the
        cache trivially safe.
        """
        layer = self.qmodel.layer(layer_index)
        cached = self._delta_cache.get(layer_index)
        if cached is not None and cached[0] == layer.version:
            return cached[1]
        deltas = self._bit_deltas(layer.weight_int) * layer.scale
        self._delta_cache[layer_index] = (layer.version, deltas)
        return deltas

    def _layer_mask(self, layer_index: int) -> np.ndarray:
        """Persistent boolean mask over the layer's flat (weight, bit) grid
        marking skip + tried bits; updated in place as bits are tried."""
        mask = self._masks.get(layer_index)
        if mask is None:
            layer = self.qmodel.layer(layer_index)
            mask = np.zeros(layer.num_weights * 8, dtype=bool)
            if self._skip_columns is not None:
                mask.reshape(-1, 8)[:, self._skip_columns] = True
            for location in self.skip:
                if location.layer == layer_index:
                    mask[location.index * 8 + location.bit] = True
            for location in self.tried:
                if location.layer == layer_index:
                    mask[location.index * 8 + location.bit] = True
            self._masks[layer_index] = mask
        return mask

    def _mark_tried(self, location: BitLocation) -> None:
        """Record an attempted bit in both the set and the fast-path mask."""
        self.tried.add(location)
        mask = self._masks.get(location.layer)
        if mask is not None:
            mask[location.index * 8 + location.bit] = True

    def _layer_best_candidate(
        self, layer_index: int
    ) -> tuple[BitLocation, float] | None:
        """Intra-layer search: best estimated flip in one layer, or None."""
        if self.config.fast_scoring:
            candidates = self._layer_top_candidates(layer_index, 1)
            return candidates[0] if candidates else None
        return self._layer_best_candidate_argsort(layer_index)

    def _layer_top_candidates(
        self, layer_index: int, k: int
    ) -> list[tuple[BitLocation, float]]:
        """Fast path: top-``k`` eligible flips by estimated gain.

        Skip/tried bits are masked to ``-inf`` up front, so an
        ``np.argpartition`` top-k over the masked scores replaces the full
        argsort plus Python rank scan of the slow path.  Results match
        :meth:`_layer_best_candidate_argsort` whenever scores are
        tie-free (ties carry no preference in either path).
        """
        layer = self.qmodel.layer(layer_index)
        grad = layer.grad_flat().astype(np.float64)
        deltas = self._scaled_deltas(layer_index)
        scores = (grad[:, None] * deltas).reshape(-1)
        scores[self._layer_mask(layer_index)] = -np.inf
        if k < scores.size:
            top = np.argpartition(scores, scores.size - k)[scores.size - k:]
            top = top[np.argsort(scores[top])[::-1]]
        else:
            top = np.argsort(scores)[::-1]
        results: list[tuple[BitLocation, float]] = []
        for flat in top:
            score = float(scores[flat])
            if not np.isfinite(score) or score <= self.config.min_estimated_gain:
                break
            index, bit = divmod(int(flat), 8)
            results.append((BitLocation(layer_index, index, bit), score))
        return results

    def _layer_best_candidate_argsort(
        self, layer_index: int
    ) -> tuple[BitLocation, float] | None:
        """Slow path: full argsort + rank scan (pre-optimization behaviour,
        kept as the parity reference and the ``repro bench`` baseline)."""
        layer = self.qmodel.layer(layer_index)
        grad = layer.grad_flat().astype(np.float64)
        deltas = self._bit_deltas(layer.weight_int) * layer.scale
        scores = grad[:, None] * deltas        # estimated dL per (weight, bit)
        if self._skip_columns is not None:
            scores[:, self._skip_columns] = -np.inf
        order = np.argsort(scores, axis=None)[::-1]
        budget = 64 + self._skip_per_layer.get(layer_index, 0) + len(self.tried)
        limit = min(order.size, budget)
        for rank in range(limit):
            flat = int(order[rank])
            index, bit = divmod(flat, 8)
            score = float(scores.flat[flat])
            if score <= self.config.min_estimated_gain:
                return None
            location = BitLocation(layer_index, index, bit)
            if location in self.skip or location in self.tried:
                continue
            return location, score
        return None

    def _attack_loss(self) -> float:
        """Loss on the attack batch with current weights (forward only)."""
        self.qmodel.model.eval()
        with no_grad():
            logits = self.qmodel(Tensor(self.attack_x))
            return F.cross_entropy(logits, self.attack_y).item()

    def _select_flip(self) -> tuple[BitLocation, float] | None:
        """One full inter/intra-layer search step; returns (bit, est gain)."""
        loss_and_grads(
            self.qmodel.model, self.attack_x, self.attack_y,
            batch_size=self.config.grad_batch_size,
        )
        per_layer = []
        for layer_index in range(self.qmodel.num_layers):
            candidate = self._layer_best_candidate(layer_index)
            if candidate is not None:
                per_layer.append(candidate)
        if not per_layer:
            return None
        per_layer.sort(key=lambda item: item[1], reverse=True)
        shortlist = per_layer[: self.config.exact_eval_top]
        # Inter-layer search: exact-evaluate each layer's champion on the
        # attacker's copy (flip, measure, revert) and commit the best.
        best: tuple[BitLocation, float, float] | None = None
        for location, estimate in shortlist:
            self.qmodel.flip_bit(location)
            loss = self._attack_loss()
            self.qmodel.flip_bit(location)  # revert
            if best is None or loss > best[1]:
                best = (location, loss, estimate)
        assert best is not None
        return best[0], best[2]

    # ------------------------------------------------------------------ #
    # Attack loop
    # ------------------------------------------------------------------ #

    def evaluate_accuracy(self) -> float:
        return evaluate(
            self.qmodel.model, self.eval_x, self.eval_y,
            batch_size=self.config.eval_batch_size,
        )

    def run(self) -> AttackResult:
        result = AttackResult(initial_accuracy=self.evaluate_accuracy())
        for iteration in range(self.config.max_iterations):
            selected = self._select_flip()
            if selected is None:
                break  # no loss-increasing candidate remains
            location, estimate = selected
            succeeded = self.executor.execute(location)
            self._mark_tried(location)
            accuracy = self.evaluate_accuracy()
            result.attempts.append(
                FlipAttempt(
                    iteration=iteration,
                    location=location,
                    estimated_gain=estimate,
                    succeeded=succeeded,
                    loss_after=self._attack_loss(),
                    accuracy_after=accuracy,
                )
            )
            stop = self.config.stop_accuracy
            if stop is not None and accuracy <= stop:
                break
        return result
