"""Random bit-flip baseline (Fig. 1b's "Random Attack" curve).

Flips uniformly random weight bits through an executor.  The paper's
motivation figure shows that >100 random flips barely move an 8-bit
ResNet-34, while fewer than 5 *targeted* flips destroy it; this baseline is
also the level DNN-Defender aims to reduce a white-box BFA to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.executor import FlipExecutor, SoftwareFlipExecutor
from repro.nn.quant import BitLocation, QuantizedModel
from repro.nn.train import evaluate

__all__ = ["RandomAttackResult", "random_bit_attack", "sample_random_bits"]


@dataclass
class RandomAttackResult:
    """Accuracy trace of a random-flip campaign."""

    flips_performed: list[BitLocation] = field(default_factory=list)
    checkpoints: list[int] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else float("nan")


def sample_random_bits(
    qmodel: QuantizedModel, count: int, rng: np.random.Generator
) -> list[BitLocation]:
    """Sample ``count`` distinct weight-bit locations uniformly."""
    total_bits = qmodel.total_bits
    if count > total_bits:
        raise ValueError(f"cannot sample {count} of {total_bits} bits")
    layer_bits = np.array([layer.num_weights * 8 for layer in qmodel.layers])
    offsets = np.concatenate([[0], np.cumsum(layer_bits)])
    flat = rng.choice(total_bits, size=count, replace=False)
    locations = []
    for value in flat:
        layer = int(np.searchsorted(offsets, value, side="right") - 1)
        within = int(value - offsets[layer])
        locations.append(BitLocation(layer, within // 8, within % 8))
    return locations


def random_bit_attack(
    qmodel: QuantizedModel,
    eval_x: np.ndarray,
    eval_y: np.ndarray,
    num_flips: int,
    rng: np.random.Generator,
    executor: FlipExecutor | None = None,
    eval_every: int = 10,
) -> RandomAttackResult:
    """Flip ``num_flips`` random bits, recording accuracy every few flips."""
    if eval_every < 1:
        raise ValueError("eval_every must be >= 1")
    executor = executor or SoftwareFlipExecutor(qmodel)
    result = RandomAttackResult()
    result.checkpoints.append(0)
    result.accuracies.append(evaluate(qmodel.model, eval_x, eval_y))
    locations = sample_random_bits(qmodel, num_flips, rng)
    for i, location in enumerate(locations, start=1):
        if executor.execute(location):
            result.flips_performed.append(location)
        if i % eval_every == 0 or i == num_flips:
            result.checkpoints.append(i)
            result.accuracies.append(evaluate(qmodel.model, eval_x, eval_y))
    return result
