"""Attacker registry: named :class:`Attacker` factories (``@attacker``).

The exact counterpart of the defense registry
(:mod:`repro.defenses.registry`): an :class:`AttackerSpec` describes one
registered attacker — a zero-argument factory returning a fresh
:class:`repro.attacks.protocol.Attacker` — and the ``@attacker``
decorator registers it by name.  The ``tournament-matrix`` scenario and
``repro list --kind attackers`` resolve attackers here.

``REPRO_ATTACKER_MODULES`` (comma-separated module names) names extra
modules to import for their registration side effects, so shard worker
subprocesses see dynamically registered attackers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.attacks.protocol import Attacker

__all__ = [
    "AttackerSpec",
    "attacker",
    "register_attacker",
    "unregister_attacker",
    "get_attacker",
    "attacker_names",
    "iter_attackers",
    "build_attacker",
]

_REGISTRY: dict[str, "AttackerSpec"] = {}


@dataclass
class AttackerSpec:
    """One registered attacker.

    Attributes:
        name: Registry identifier (``bfa``, ``smart-bfa`` …).
        build: ``() -> Attacker`` factory (attackers carry no build-time
            state; everything arrives through the ``AttackContext``).
        title: One-line description (shown by ``repro list``).
        kind: Threat-model class — ``"baseline"`` (no gradient access),
            ``"white-box"`` (full gradients, defense-blind),
            ``"adaptive"`` (defense-aware), or ``"targeted"``.
        cost: Relative attack cost hint (1.0 = a random-flip campaign);
            feeds the tournament's ``trial_cost`` scheduling hint.
            Never affects results.
        tournament: Whether the attacker is in the default
            ``tournament-matrix`` roster.
    """

    name: str
    build: Callable[[], Attacker]
    title: str = ""
    kind: str = "white-box"
    cost: float = 1.0
    tournament: bool = True

    def __call__(self) -> Attacker:
        return self.build()


def register_attacker(spec: AttackerSpec) -> AttackerSpec:
    """Add ``spec`` to the registry; duplicate names are an error."""
    if spec.name in _REGISTRY:
        raise ValueError(f"attacker {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister_attacker(name: str) -> None:
    """Remove an attacker (tests registering throwaway attackers)."""
    _REGISTRY.pop(name, None)


def attacker(
    name: str,
    *,
    title: str = "",
    kind: str = "white-box",
    cost: float = 1.0,
    tournament: bool = True,
) -> Callable[[Callable[[], Attacker]], AttackerSpec]:
    """Decorator: register the wrapped factory as a named attacker."""

    def wrap(fn: Callable[[], Attacker]) -> AttackerSpec:
        return register_attacker(
            AttackerSpec(
                name=name, build=fn, title=title, kind=kind, cost=cost,
                tournament=tournament,
            )
        )

    return wrap


def get_attacker(name: str) -> AttackerSpec:
    """Resolve an attacker by name; raise with the catalogue on miss."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"unknown attacker {name!r}; registered attackers: {known}"
        ) from None


def attacker_names() -> list[str]:
    """Sorted names of all registered attackers."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def iter_attackers(kind: str | None = None) -> Iterator[AttackerSpec]:
    """Iterate attackers in name order, optionally filtered by kind."""
    _ensure_builtins()
    for name in sorted(_REGISTRY):
        spec = _REGISTRY[name]
        if kind is None or spec.kind == kind:
            yield spec


def build_attacker(name: str) -> Attacker:
    """Resolve + instantiate in one call (the scenario entry point)."""
    return get_attacker(name).build()


def _ensure_builtins() -> None:
    """Import the built-in attacker registrations exactly once."""
    import importlib

    import repro.attacks.builtin  # noqa: F401  (registers on import)

    from repro.utils.env import env_str

    extra = env_str("REPRO_ATTACKER_MODULES", "")
    for module in filter(None, (m.strip() for m in extra.split(","))):
        importlib.import_module(module)
