"""Threat-model capability flags (Table 1 of the paper).

The standard white-box BFA threat model grants the attacker the model
architecture/parameters, a small batch of test data, and the DRAM addresses
of the parameters — but not the training pipeline or direct memory
write permission.  The two attack variants evaluated in Section 5.2 differ
in one extra capability: awareness of the deployed defense.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ThreatModel", "SEMI_WHITE_BOX", "WHITE_BOX"]


@dataclass(frozen=True)
class ThreatModel:
    """Capabilities granted to the attacker."""

    knows_architecture: bool = True       # Table 1: yes
    knows_parameters: bool = True         # Table 1: yes
    has_test_batch: bool = True           # Table 1: yes (e.g. 128 samples)
    knows_dram_addresses: bool = True     # Table 1: yes (mapping file)
    knows_training_data: bool = False     # Table 1: no
    has_memory_write: bool = False        # Table 1: no (flips only via RH)
    knows_defense: bool = False           # semi-white-box vs white-box

    def __post_init__(self) -> None:
        if self.has_memory_write:
            raise ValueError(
                "Table 1 denies direct memory write permission; flips must "
                "go through RowHammer"
            )

    @property
    def name(self) -> str:
        return "white-box" if self.knows_defense else "semi-white-box"


SEMI_WHITE_BOX = ThreatModel(knows_defense=False)
WHITE_BOX = ThreatModel(knows_defense=True)
