"""Built-in ``@attacker`` registrations.

Importing this module populates the attacker registry with the ported
attacks — random flips, progressive BFA, targeted T-BFA, the
semi-white-box replay, the adaptive white-box variant — plus smart-bfa,
the detection-aware search.  Each factory returns a stateless
:class:`repro.attacks.protocol.Attacker`; all run-specific inputs arrive
through the :class:`repro.attacks.protocol.AttackContext`.
"""

from __future__ import annotations

from repro.attacks.bfa import BfaConfig, BitFlipAttack
from repro.attacks.protocol import AttackContext, AttackOutcome, Attacker
from repro.attacks.random_attack import sample_random_bits
from repro.attacks.registry import attacker
from repro.attacks.smart_bfa import SmartBfaAttacker
from repro.attacks.tbfa import TargetedBitFlipAttack, TbfaConfig
from repro.nn.quant import BitLocation
from repro.nn.train import evaluate

__all__ = []  # registration side effects only


def _bfa_config(context: AttackContext) -> BfaConfig:
    stop = context.param("stop_accuracy")
    return BfaConfig(
        max_iterations=max(int(context.budget), 1),
        stop_accuracy=None if stop is None else float(stop),
        exact_eval_top=int(context.param("exact_eval_top", 4)),
    )


def _bfa_outcome(name: str, result, **detail) -> AttackOutcome:
    """Map a :class:`repro.attacks.bfa.AttackResult` onto the protocol."""
    return AttackOutcome(
        attacker=name,
        initial_accuracy=result.initial_accuracy,
        final_accuracy=result.final_accuracy,
        attempts=len(result.attempts),
        flips=list(result.flips),
        blocked=result.num_blocked,
        detail={k: float(v) for k, v in detail.items()},
    )


class RandomAttacker(Attacker):
    """Uniform random flips (Fig. 1b baseline): plan-then-replay."""

    name = "random"

    def plan(self, context: AttackContext) -> list[BitLocation]:
        count = max(int(context.budget), 1)
        return sample_random_bits(
            context.qmodel, count, context.rng(stream=3)
        )


class BfaAttacker(Attacker):
    """Progressive white-box BFA, blind to any deployed defense."""

    name = "bfa"

    def execute(self, context: AttackContext) -> AttackOutcome:
        attack_x, attack_y = context.batch()
        eval_x, eval_y = context.eval_batch()
        attack = BitFlipAttack(
            context.qmodel, attack_x, attack_y,
            config=_bfa_config(context),
            executor=context.flip_executor(),
            eval_x=eval_x, eval_y=eval_y,
        )
        return _bfa_outcome(self.name, attack.run())


class AdaptiveAttacker(Attacker):
    """Defense-aware BFA: skips every bit it knows to be secured."""

    name = "adaptive"

    def execute(self, context: AttackContext) -> AttackOutcome:
        attack_x, attack_y = context.batch()
        eval_x, eval_y = context.eval_batch()
        secured = set(context.protected_bits())
        attack = BitFlipAttack(
            context.qmodel, attack_x, attack_y,
            config=_bfa_config(context),
            skip=secured,
            executor=context.flip_executor(),
            eval_x=eval_x, eval_y=eval_y,
        )
        return _bfa_outcome(
            self.name, attack.run(), known_secured_bits=len(secured)
        )


class SemiWhiteBoxAttacker(Attacker):
    """Defense-unaware replay: plan on an offline copy, then fire."""

    name = "semi-white-box"

    def plan(self, context: AttackContext) -> list[BitLocation]:
        attack_x, attack_y = context.batch()
        eval_x, eval_y = context.eval_batch()
        from repro.attacks.executor import SoftwareFlipExecutor

        snapshot = context.qmodel.snapshot()
        planner = BitFlipAttack(
            context.qmodel, attack_x, attack_y,
            config=_bfa_config(context),
            executor=SoftwareFlipExecutor(context.qmodel),
            eval_x=eval_x, eval_y=eval_y,
        )
        planned = planner.run().flips
        context.qmodel.restore(snapshot)
        return list(planned)


class TbfaAttacker(Attacker):
    """N-to-1 targeted attack: source class forced into target class."""

    name = "tbfa"

    def execute(self, context: AttackContext) -> AttackOutcome:
        attack_x, attack_y = context.batch()
        eval_x, eval_y = context.eval_batch()
        config = TbfaConfig(
            source_class=int(context.param("tbfa_source_class", 0)),
            target_class=int(context.param("tbfa_target_class", 1)),
            max_iterations=max(int(context.budget), 1),
            exact_eval_top=int(context.param("exact_eval_top", 4)),
        )
        initial = evaluate(context.qmodel.model, eval_x, eval_y)
        attack = TargetedBitFlipAttack(
            context.qmodel, attack_x, attack_y, config,
            executor=context.flip_executor(),
            skip=set(context.protected_bits()) or None,
        )
        result = attack.run()
        final = evaluate(context.qmodel.model, eval_x, eval_y)
        return AttackOutcome(
            attacker=self.name,
            initial_accuracy=initial,
            final_accuracy=final,
            attempts=result.attempts,
            flips=list(result.flips),
            blocked=result.attempts - len(result.flips),
            detail={
                "success_rate": float(result.final_success_rate),
                "other_accuracy": float(result.final_other_accuracy),
            },
        )


@attacker("random", title="uniform random bit flips (Fig. 1b baseline)",
          kind="baseline", cost=1.0)
def _build_random() -> Attacker:
    return RandomAttacker()


@attacker("bfa", title="progressive bit-search BFA (defense-blind)",
          kind="white-box", cost=3.0)
def _build_bfa() -> Attacker:
    return BfaAttacker()


@attacker("adaptive", title="adaptive BFA: skips known-secured bits",
          kind="adaptive", cost=3.0)
def _build_adaptive() -> Attacker:
    return AdaptiveAttacker()


@attacker("semi-white-box",
          title="offline-planned BFA replayed blind (Sec. 5.2)",
          kind="white-box", cost=3.0, tournament=False)
def _build_semi_white_box() -> Attacker:
    return SemiWhiteBoxAttacker()


@attacker("tbfa", title="targeted N-to-1 bit-flip attack (T-BFA)",
          kind="targeted", cost=3.0, tournament=False)
def _build_tbfa() -> Attacker:
    return TbfaAttacker()


@attacker("smart-bfa",
          title="detection-aware BFA: avoids checksummed bit columns",
          kind="adaptive", cost=3.0)
def _build_smart_bfa() -> Attacker:
    return SmartBfaAttacker()
