"""Attack variants of Section 5.2: semi-white-box and adaptive white-box.

* **Semi-white-box** — the attacker does not know a defense is deployed.  It
  generates its bit-flip sequence *offline* on a model copy (where every
  flip "works"), then replays that fixed sequence against the real
  deployment.  Under DNN-Defender the replayed flips on secured bits never
  materialise, so the attack achieves no accuracy drop.

* **Adaptive white-box** — the attacker knows the defense and the secured
  bit set.  It skips secured bits during the search and keeps attacking the
  best *unprotected* bits; defended attempts are also fed back into the
  skip set.  Fig. 9 sweeps the secured-bit budget against this attacker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.bfa import AttackResult, BfaConfig, BitFlipAttack
from repro.attacks.executor import (
    FlipExecutor,
    SoftwareFlipExecutor,
    execute_batch,
)
from repro.nn.quant import BitLocation, QuantizedModel
from repro.nn.train import evaluate

__all__ = [
    "SemiWhiteBoxResult",
    "semi_white_box_attack",
    "white_box_adaptive_attack",
]


@dataclass
class SemiWhiteBoxResult:
    """Replay outcome of a defense-unaware attack."""

    planned_sequence: list[BitLocation] = field(default_factory=list)
    landed: list[BitLocation] = field(default_factory=list)
    blocked: list[BitLocation] = field(default_factory=list)
    initial_accuracy: float = 0.0
    final_accuracy: float = 0.0

    @property
    def accuracy_drop(self) -> float:
        return self.initial_accuracy - self.final_accuracy


def semi_white_box_attack(
    qmodel: QuantizedModel,
    attack_x: np.ndarray,
    attack_y: np.ndarray,
    executor: FlipExecutor,
    config: BfaConfig | None = None,
    eval_x: np.ndarray | None = None,
    eval_y: np.ndarray | None = None,
    batched_replay: bool = False,
) -> SemiWhiteBoxResult:
    """Plan a BFA offline, then replay it through the real deployment.

    ``batched_replay=True`` fires the precomputed multi-bit sequence
    through the executor's batched path
    (:func:`repro.attacks.executor.execute_batch`): with a DRAM-backed
    ``HammerExecutor``, target bits sharing a victim row then share one
    hammer window and one model sync.  The default stays the per-flip
    replay because the committed defended scenarios measure that
    interleaving (one defense tick sequence per planned flip).
    """
    eval_x = attack_x if eval_x is None else eval_x
    eval_y = attack_y if eval_y is None else eval_y
    snapshot = qmodel.snapshot()
    # Offline planning phase on the attacker's copy: no defense involved.
    planner = BitFlipAttack(
        qmodel, attack_x, attack_y, config=config,
        executor=SoftwareFlipExecutor(qmodel),
        eval_x=eval_x, eval_y=eval_y,
    )
    plan = planner.run()
    qmodel.restore(snapshot)
    result = SemiWhiteBoxResult(
        planned_sequence=list(plan.flips),
        initial_accuracy=evaluate(qmodel.model, eval_x, eval_y),
    )
    # Replay against the deployment; the attacker cannot tell which flips
    # landed, it just fires the precomputed sequence.
    if batched_replay:
        outcomes = execute_batch(executor, result.planned_sequence)
    else:
        outcomes = [
            executor.execute(location)
            for location in result.planned_sequence
        ]
    for location, landed in zip(result.planned_sequence, outcomes):
        if landed:
            result.landed.append(location)
        else:
            result.blocked.append(location)
    result.final_accuracy = evaluate(qmodel.model, eval_x, eval_y)
    return result


def white_box_adaptive_attack(
    qmodel: QuantizedModel,
    attack_x: np.ndarray,
    attack_y: np.ndarray,
    executor: FlipExecutor,
    secured_bits: set[BitLocation],
    config: BfaConfig | None = None,
    eval_x: np.ndarray | None = None,
    eval_y: np.ndarray | None = None,
) -> AttackResult:
    """Defense-aware BFA: skip every secured bit, adapt on failures.

    The returned result's ``attempts`` include any defended attempts (bits
    the attacker tried anyway, e.g. when the secured set it obtained is
    stale); its ``flips`` are the landed ones — the "SB + # of additional
    bit-flips" axis of Fig. 9 counts these.
    """
    attack = BitFlipAttack(
        qmodel, attack_x, attack_y, config=config,
        skip=set(secured_bits), executor=executor,
        eval_x=eval_x, eval_y=eval_y,
    )
    return attack.run()
