"""The ``Attacker`` protocol: uniform plan/execute surface over all attacks.

Every attack in the repo — random flips, progressive BFA, targeted
T-BFA, the adaptive and defense-blind variants, smart-bfa — presents the
same two-phase interface here:

* :meth:`Attacker.plan` derives a bit-target list from the attacker's
  knowledge (model copy, budget, RNG) without touching the deployment;
* :meth:`Attacker.execute` carries the attack out against a deployment
  through a :class:`~repro.attacks.executor.FlipExecutor` and returns a
  uniform :class:`AttackOutcome`.

Replay-style attackers (random, semi-white-box) implement ``plan`` and
inherit the default ``execute`` (plan offline, fire the sequence);
interactive searches (BFA and friends) override ``execute`` because
their planning and execution interleave — each committed flip informs
the next gradient step.

The :class:`AttackContext` mirrors ``DefenseContext``: it carries the
deployed model, dataset, seed, flip budget, the executor the defense
wired up, and — for defense-aware attackers — the defense object itself,
queried only through the protocol methods ``protected_bits()`` /
``guarded_bit_positions()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.executor import FlipExecutor, SoftwareFlipExecutor
from repro.nn.quant import BitLocation, QuantizedModel
from repro.nn.train import evaluate

__all__ = ["AttackContext", "AttackOutcome", "Attacker"]


@dataclass
class AttackContext:
    """Everything an attacker may draw on, bundled for ``execute``.

    Attributes:
        qmodel: the deployed model (white-box attackers read it
            directly; the executor commits flips to it).
        dataset: source of attack/eval batches (optional when explicit
            batches are supplied).
        seed: base seed; all attacker randomness must derive from
            :meth:`rng` so runs are replayable.
        budget: flip/iteration budget — the Hamming-distance axis every
            scenario sweeps.
        executor: the deployment's flip path (defense-wrapped); ``None``
            falls back to the undefended software executor.
        defense: the live defense object, for attackers whose threat
            model includes defense knowledge.  Defense-blind attackers
            simply never look at it.
        params: free-form knobs (``tbfa_source_class`` …) read via
            :meth:`param`.
        attack_batch: samples drawn for gradient estimation when no
            explicit batch is given.
    """

    qmodel: QuantizedModel
    dataset: object | None = None
    seed: int = 0
    budget: int = 25
    executor: FlipExecutor | None = None
    defense: object | None = None
    params: dict = field(default_factory=dict)
    attack_batch: int = 96
    attack_x: np.ndarray | None = None
    attack_y: np.ndarray | None = None
    eval_x: np.ndarray | None = None
    eval_y: np.ndarray | None = None

    def rng(self, stream: int = 0) -> np.random.Generator:
        """Deterministic per-stream generator (seed + stream)."""
        return np.random.default_rng(self.seed + stream)

    def param(self, key: str, default=None):
        return self.params.get(key, default)

    def batch(self) -> tuple[np.ndarray, np.ndarray]:
        """The attacker's sample batch; drawn once, then stable."""
        if self.attack_x is None:
            if self.dataset is None:
                raise ValueError(
                    "AttackContext needs a dataset or explicit attack_x/y"
                )
            self.attack_x, self.attack_y = self.dataset.attack_batch(
                self.attack_batch, self.rng(stream=1)
            )
        return self.attack_x, self.attack_y

    def eval_batch(self) -> tuple[np.ndarray, np.ndarray]:
        """Held-out data for the reported accuracy; defaults to batch()."""
        if self.eval_x is not None:
            return self.eval_x, self.eval_y
        return self.batch()

    def flip_executor(self) -> FlipExecutor:
        if self.executor is None:
            self.executor = SoftwareFlipExecutor(self.qmodel)
        return self.executor

    def protected_bits(self) -> frozenset[BitLocation]:
        """Bits the defense secures (adaptive attackers skip these)."""
        if self.defense is None:
            return frozenset()
        return frozenset(self.defense.protected_bits())

    def guarded_bit_positions(self) -> frozenset[int]:
        """Bit columns a checksum defense watches (smart-bfa avoids them)."""
        if self.defense is None:
            return frozenset()
        return frozenset(self.defense.guarded_bit_positions())


@dataclass
class AttackOutcome:
    """Uniform result of one attack execution, attacker-agnostic.

    ``detail`` holds attacker-specific scalars (T-BFA success rate,
    smart-bfa's avoided column count …) that flow into scenario metrics
    via :meth:`as_metrics`.
    """

    attacker: str
    initial_accuracy: float
    final_accuracy: float
    attempts: int
    flips: list[BitLocation] = field(default_factory=list)
    blocked: int = 0
    detail: dict[str, float] = field(default_factory=dict)

    @property
    def num_flips(self) -> int:
        return len(self.flips)

    @property
    def accuracy_drop(self) -> float:
        return self.initial_accuracy - self.final_accuracy

    def as_metrics(self, prefix: str = "") -> dict[str, float]:
        """Flatten to scalar metrics (artifact- and merge-safe)."""
        metrics = {
            f"{prefix}initial_accuracy": float(self.initial_accuracy),
            f"{prefix}final_accuracy": float(self.final_accuracy),
            f"{prefix}accuracy_drop": float(self.accuracy_drop),
            f"{prefix}attempts": float(self.attempts),
            f"{prefix}flips": float(self.num_flips),
            f"{prefix}blocked": float(self.blocked),
        }
        for key in sorted(self.detail):
            metrics[f"{prefix}detail.{key}"] = float(self.detail[key])
        return metrics


class Attacker:
    """Base class every registered attacker extends.

    Subclasses either implement :meth:`plan` (replay-style attacks —
    the default :meth:`execute` fires the planned sequence), or override
    :meth:`execute` outright (interactive searches).
    """

    name = "attacker"

    def plan(self, context: AttackContext) -> list[BitLocation]:
        """Derive the bit-target sequence without touching the deployment."""
        raise NotImplementedError(
            f"attacker {self.name!r} has no offline plan; call execute()"
        )

    def execute(self, context: AttackContext) -> AttackOutcome:
        """Default replay: plan offline, then fire through the executor."""
        executor = context.flip_executor()
        eval_x, eval_y = context.eval_batch()
        initial = evaluate(context.qmodel.model, eval_x, eval_y)
        planned = self.plan(context)
        landed: list[BitLocation] = []
        blocked = 0
        for location in planned:
            if executor.execute(location):
                landed.append(location)
            else:
                blocked += 1
        final = evaluate(context.qmodel.model, eval_x, eval_y)
        return AttackOutcome(
            attacker=self.name,
            initial_accuracy=initial,
            final_accuracy=final,
            attempts=len(planned),
            flips=landed,
            blocked=blocked,
        )
