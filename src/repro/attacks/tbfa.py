"""T-BFA: targeted bit-flip attack (Rakin et al., TPAMI 2021 [17]).

The paper's threat model cites T-BFA alongside the untargeted BFA: instead
of crushing overall accuracy, the attacker flips bits so that inputs of a
*source* class are misclassified into a chosen *target* class while the
rest of the model keeps working (a stealthier objective).  This module
implements the "N-to-1" variant: all source-class samples should land in
the target class.

The search mirrors the untargeted BFA — gradient ranking plus exact
evaluation — but optimises a targeted loss: minimise cross-entropy towards
the target class on source-class samples while an auxiliary term preserves
the remaining classes' behaviour.  DNN-Defender's protection argument is
unchanged: the most damaging bits for *any* objective concentrate in the
same high-gradient rows the profiler secures, and the defense blocks the
flips physically, not by objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.bfa import BitFlipAttack
from repro.attacks.executor import FlipExecutor, SoftwareFlipExecutor
from repro.nn import functional as F
from repro.nn.quant import BitLocation, QuantizedModel
from repro.nn.tensor import Tensor, no_grad

__all__ = ["TbfaConfig", "TbfaResult", "TargetedBitFlipAttack"]


@dataclass(frozen=True)
class TbfaConfig:
    """Knobs of the targeted bit search."""

    source_class: int
    target_class: int
    max_iterations: int = 30
    exact_eval_top: int = 6
    stop_success_rate: float = 0.9   # stop once 90% of source maps to target
    preserve_weight: float = 1.0     # weight of the keep-others-correct term
    # Micro-batch size for the targeted gradient/loss passes: ``None`` is
    # one full pass per term; a smaller value slices both the source and
    # preservation batches, accumulating grads, so sweep-scale attack
    # batches keep peak activation memory bounded.
    grad_batch_size: int | None = None

    def __post_init__(self) -> None:
        if self.source_class == self.target_class:
            raise ValueError("source and target classes must differ")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 < self.stop_success_rate <= 1.0:
            raise ValueError("stop_success_rate must be in (0, 1]")
        if self.grad_batch_size is not None and self.grad_batch_size < 1:
            raise ValueError("grad_batch_size must be >= 1 or None")


@dataclass
class TbfaResult:
    """Outcome of a targeted attack run."""

    initial_success_rate: float
    initial_other_accuracy: float
    flips: list[BitLocation] = field(default_factory=list)
    attempts: int = 0
    success_rate_history: list[float] = field(default_factory=list)
    other_accuracy_history: list[float] = field(default_factory=list)

    @property
    def final_success_rate(self) -> float:
        if self.success_rate_history:
            return self.success_rate_history[-1]
        return self.initial_success_rate

    @property
    def final_other_accuracy(self) -> float:
        if self.other_accuracy_history:
            return self.other_accuracy_history[-1]
        return self.initial_other_accuracy


class TargetedBitFlipAttack:
    """N-to-1 targeted bit-flip attack over a quantized model."""

    def __init__(
        self,
        qmodel: QuantizedModel,
        attack_x: np.ndarray,
        attack_y: np.ndarray,
        config: TbfaConfig,
        executor: FlipExecutor | None = None,
        skip: set[BitLocation] | None = None,
    ):
        self.qmodel = qmodel
        self.config = config
        self.executor = executor or SoftwareFlipExecutor(qmodel)
        self.skip = set(skip or ())
        self.tried: set[BitLocation] = set()
        source_mask = attack_y == config.source_class
        if not source_mask.any():
            raise ValueError(
                f"attack batch contains no samples of source class "
                f"{config.source_class}"
            )
        self.x_source = attack_x[source_mask]
        self.x_other = attack_x[~source_mask]
        self.y_other = attack_y[~source_mask]
        self.y_forced = np.full(
            self.x_source.shape[0], config.target_class, dtype=np.int64
        )

    # ------------------------------------------------------------------ #
    # Objective
    # ------------------------------------------------------------------ #

    def _targeted_loss(self, build_graph: bool) -> float:
        """CE towards the target on source samples, plus a preservation
        term on the remaining samples.  Populates grads when asked.

        With ``config.grad_batch_size`` set, each term runs as
        micro-batch slices with full-batch gradient scaling
        (:func:`repro.nn.functional.cross_entropy_slice`); grads
        accumulate across slices and the composite loss is rebuilt from
        the concatenated per-sample losses.
        """
        model = self.qmodel.model
        model.eval()
        batch_size = self.config.grad_batch_size
        if build_graph:
            model.zero_grad()
            if batch_size is not None:
                return self._targeted_loss_microbatched(batch_size)
            loss = F.cross_entropy(
                model(Tensor(self.x_source)), self.y_forced
            )
            if self.x_other.shape[0] and self.config.preserve_weight > 0:
                keep = F.cross_entropy(
                    model(Tensor(self.x_other)), self.y_other
                )
                loss = loss + keep * self.config.preserve_weight
            loss.backward()
            return loss.item()
        with no_grad():
            if batch_size is not None:
                return self._targeted_loss_microbatched(
                    batch_size, backward=False
                )
            loss = F.cross_entropy(
                model(Tensor(self.x_source)), self.y_forced
            )
            if self.x_other.shape[0] and self.config.preserve_weight > 0:
                keep = F.cross_entropy(
                    model(Tensor(self.x_other)), self.y_other
                )
                loss = loss + keep * self.config.preserve_weight
            return loss.item()

    def _term_microbatched(
        self, x: np.ndarray, y: np.ndarray, batch_size: int,
        term_weight: float, backward: bool,
    ) -> np.floating:
        """One loss term (mean CE over ``x``) in micro-batch slices.

        Each slice backpropagates with the full-term ``weight / len(x)``
        scaling, so accumulated grads match the unsliced term's; returns
        the term's mean loss (unweighted) as a float32 scalar.
        """
        model = self.qmodel.model
        n = x.shape[0]
        per_sample: list[np.ndarray] = []
        for start in range(0, n, batch_size):
            stop = start + batch_size
            logits = model(Tensor(x[start:stop]))
            loss, losses = F.cross_entropy_slice(logits, y[start:stop], n)
            if backward:
                term = loss if term_weight == 1.0 else loss * term_weight
                term.backward()
            per_sample.append(losses)
        return np.mean(np.concatenate(per_sample))

    def _targeted_loss_microbatched(
        self, batch_size: int, backward: bool = True
    ) -> float:
        source = self._term_microbatched(
            self.x_source, self.y_forced, batch_size, 1.0, backward
        )
        total = source
        if self.x_other.shape[0] and self.config.preserve_weight > 0:
            keep = self._term_microbatched(
                self.x_other, self.y_other, batch_size,
                self.config.preserve_weight, backward,
            )
            total = source + keep * self.config.preserve_weight
        return float(total)

    def success_rate(self) -> float:
        """Fraction of source samples classified as the target class."""
        with no_grad():
            logits = self.qmodel(Tensor(self.x_source))
        return float(
            (logits.data.argmax(axis=1) == self.config.target_class).mean()
        )

    def other_accuracy(self) -> float:
        """Accuracy on the non-source part of the batch (stealth metric)."""
        if not self.x_other.shape[0]:
            return float("nan")
        with no_grad():
            logits = self.qmodel(Tensor(self.x_other))
        return float((logits.data.argmax(axis=1) == self.y_other).mean())

    # ------------------------------------------------------------------ #
    # Search (descends the targeted loss)
    # ------------------------------------------------------------------ #

    def _select_flip(self) -> BitLocation | None:
        self._targeted_loss(build_graph=True)
        candidates: list[tuple[BitLocation, float]] = []
        for layer_index in range(self.qmodel.num_layers):
            layer = self.qmodel.layer(layer_index)
            grad = layer.grad_flat().astype(np.float64)
            deltas = BitFlipAttack._bit_deltas(layer.weight_int) * layer.scale
            # Targeted attack *minimises* the loss: pick negative dL.
            scores = grad[:, None] * deltas
            order = np.argsort(scores, axis=None)
            budget = 64 + len(self.skip) + len(self.tried)
            for rank in range(min(order.size, budget)):
                flat = int(order[rank])
                index, bit = divmod(flat, 8)
                score = float(scores.flat[flat])
                if score >= 0:
                    break
                location = BitLocation(layer_index, index, bit)
                if location in self.skip or location in self.tried:
                    continue
                candidates.append((location, score))
                break
        if not candidates:
            return None
        candidates.sort(key=lambda item: item[1])
        best: tuple[BitLocation, float] | None = None
        for location, _ in candidates[: self.config.exact_eval_top]:
            self.qmodel.flip_bit(location)
            loss = self._targeted_loss(build_graph=False)
            self.qmodel.flip_bit(location)
            if best is None or loss < best[1]:
                best = (location, loss)
        return best[0] if best else None

    def run(self) -> TbfaResult:
        result = TbfaResult(
            initial_success_rate=self.success_rate(),
            initial_other_accuracy=self.other_accuracy(),
        )
        for _ in range(self.config.max_iterations):
            location = self._select_flip()
            if location is None:
                break
            self.tried.add(location)
            result.attempts += 1
            if self.executor.execute(location):
                result.flips.append(location)
            result.success_rate_history.append(self.success_rate())
            result.other_accuracy_history.append(self.other_accuracy())
            if result.final_success_rate >= self.config.stop_success_rate:
                break
        return result
