"""Optimizers. Plain SGD with momentum and weight decay covers the paper."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Parameter

__all__ = ["SGD"]


class SGD:
    """Stochastic gradient descent with classical momentum.

    Update: ``v = momentum * v + (grad + weight_decay * w); w -= lr * v``.
    """

    def __init__(
        self,
        parameters,
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            v *= self.momentum
            v += grad
            p.data -= self.lr * v
