"""Optimizers. Plain SGD with momentum and weight decay covers the paper."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.tensor import Parameter

__all__ = ["SGD", "default_decay_filter"]


def default_decay_filter(parameter: Parameter) -> bool:
    """Standard recipe: decay weight matrices/kernels only.

    Biases and normalisation parameters (BatchNorm ``gamma``/``beta``)
    are 1-D; L2-regularising them is a classic training bug — shrinking
    ``gamma`` toward zero fights the normalisation itself and measurably
    hurts the small VGG/ResNet baselines the paper assumes.  Conv and
    linear weights are the only ``ndim >= 2`` parameters in this
    framework, so the rank is a reliable discriminator.
    """
    return parameter.data.ndim >= 2


class SGD:
    """Stochastic gradient descent with classical momentum.

    Update: ``v = momentum * v + (grad + weight_decay * w); w -= lr * v``.

    ``weight_decay`` is applied only to parameters selected by
    ``decay_filter`` (default: :func:`default_decay_filter`, which
    exempts biases and BatchNorm ``gamma``/``beta``).  Pass
    ``decay_filter=lambda p: True`` to recover the legacy
    decay-everything behaviour.
    """

    def __init__(
        self,
        parameters,
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        decay_filter: Callable[[Parameter], bool] | None = None,
    ):
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        decay_filter = (
            decay_filter if decay_filter is not None else default_decay_filter
        )
        self._decays = [bool(decay_filter(p)) for p in self.parameters]
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        for p, v, decays in zip(
            self.parameters, self._velocity, self._decays
        ):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay and decays:
                grad = grad + self.weight_decay * p.data
            v *= self.momentum
            v += grad
            p.data -= self.lr * v
