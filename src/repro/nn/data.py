"""Synthetic image-classification datasets.

The reproduction environment has no network access, so CIFAR-10 and ImageNet
are replaced by deterministic synthetic datasets that preserve what the
attack dynamics need: a convnet trained on them reaches high accuracy, the
loss surface gives informative per-weight gradients, and flipping the most
sensitive weight bits collapses accuracy towards random guess while random
flips barely move it (Fig. 1b's contrast).

Each class gets a smooth random "prototype" image (low-frequency Gaussian
field); samples are prototype + per-sample smooth deformation + pixel noise +
a random circular shift.  Difficulty is controlled by the noise-to-signal
ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

__all__ = ["Dataset", "synthetic_classification", "cifar10_like", "imagenet_like"]


@dataclass
class Dataset:
    """Train/test split of a synthetic classification task."""

    name: str
    x_train: np.ndarray  # (N, C, H, W) float32
    y_train: np.ndarray  # (N,) int64
    x_test: np.ndarray
    y_test: np.ndarray
    num_classes: int

    def __post_init__(self) -> None:
        if self.x_train.shape[0] != self.y_train.shape[0]:
            raise ValueError("train images/labels length mismatch")
        if self.x_test.shape[0] != self.y_test.shape[0]:
            raise ValueError("test images/labels length mismatch")

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return tuple(self.x_train.shape[1:])

    @property
    def random_guess_accuracy(self) -> float:
        return 1.0 / self.num_classes

    def attack_batch(
        self, batch_size: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample the attacker's batch from the *test* set (threat model,
        Table 1: the attacker holds a small batch of test data)."""
        n = self.x_test.shape[0]
        idx = rng.choice(n, size=min(batch_size, n), replace=False)
        return self.x_test[idx], self.y_test[idx]


def _smooth_field(
    shape: tuple[int, ...], sigma: float, rng: np.random.Generator
) -> np.ndarray:
    field = rng.normal(0.0, 1.0, size=shape)
    field = ndimage.gaussian_filter(field, sigma=sigma)
    std = field.std()
    if std > 0:
        field /= std
    return field


def synthetic_classification(
    name: str,
    num_classes: int,
    n_train: int,
    n_test: int,
    image_hw: int = 16,
    channels: int = 3,
    noise: float = 0.45,
    deform: float = 0.3,
    max_shift: int = 2,
    seed: int = 0,
) -> Dataset:
    """Generate a synthetic dataset (see module docstring)."""
    if num_classes < 2:
        raise ValueError(f"need at least 2 classes, got {num_classes}")
    # Keep the augmentation shift proportionate on tiny images.
    max_shift = min(max_shift, image_hw // 8)
    rng = np.random.default_rng(seed)
    prototypes = np.stack(
        [
            _smooth_field((channels, image_hw, image_hw), sigma=2.0, rng=rng)
            for _ in range(num_classes)
        ]
    )

    def sample(n: int, sample_rng: np.random.Generator):
        labels = sample_rng.integers(0, num_classes, size=n)
        images = np.empty((n, channels, image_hw, image_hw), dtype=np.float32)
        for i, label in enumerate(labels):
            image = prototypes[label].copy()
            image += deform * _smooth_field(
                (channels, image_hw, image_hw), sigma=1.5, rng=sample_rng
            )
            if max_shift > 0:
                shift = sample_rng.integers(-max_shift, max_shift + 1, size=2)
                image = np.roll(image, shift, axis=(1, 2))
            image += noise * sample_rng.normal(0.0, 1.0, size=image.shape)
            images[i] = image
        return images, labels.astype(np.int64)

    x_train, y_train = sample(n_train, np.random.default_rng(seed + 1))
    x_test, y_test = sample(n_test, np.random.default_rng(seed + 2))
    # Normalise with train statistics (per channel).
    mean = x_train.mean(axis=(0, 2, 3), keepdims=True)
    std = x_train.std(axis=(0, 2, 3), keepdims=True)
    std[std == 0] = 1.0
    x_train = ((x_train - mean) / std).astype(np.float32)
    x_test = ((x_test - mean) / std).astype(np.float32)
    return Dataset(name, x_train, y_train, x_test, y_test, num_classes)


def cifar10_like(
    n_train: int = 2000,
    n_test: int = 512,
    image_hw: int = 16,
    seed: int = 0,
) -> Dataset:
    """10-class stand-in for CIFAR-10 (random guess = 10%)."""
    return synthetic_classification(
        "cifar10-like", 10, n_train, n_test, image_hw=image_hw, seed=seed
    )


def imagenet_like(
    num_classes: int = 40,
    n_train: int = 4000,
    n_test: int = 800,
    image_hw: int = 16,
    seed: int = 0,
) -> Dataset:
    """Many-class stand-in for ImageNet (random guess = 1/num_classes)."""
    return synthetic_classification(
        "imagenet-like",
        num_classes,
        n_train,
        n_test,
        image_hw=image_hw,
        noise=0.45,
        seed=seed,
    )
