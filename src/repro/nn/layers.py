"""Layer zoo: convolution, linear, batch norm, pooling, activations.

``Conv2d`` and ``Linear`` are the *quantizable* layers: after training they
can be frozen to 8-bit two's-complement integer weights (see
:mod:`repro.nn.quant`), which is the representation the bit-flip attack
manipulates.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.seeding import fallback_rng
from repro.nn.tensor import Parameter, Tensor

__all__ = [
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Identity",
    "Dropout",
]


def _kaiming_normal(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


class Conv2d(Module):
    """2D convolution with optional bias."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = fallback_rng("Conv2d.__init__", rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = int(kernel_size)
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * self.kernel_size**2
        self.weight = Parameter(
            _kaiming_normal(
                (out_channels, in_channels, self.kernel_size, self.kernel_size),
                fan_in,
                rng,
            )
        )
        self.bias = Parameter(np.zeros(out_channels, dtype=np.float32)) if bias else None
        # Optional differentiable transform of the weight at forward time
        # (e.g. straight-through binarization for BNN-style defenses).
        self.weight_transform = None

    def forward(self, x: Tensor) -> Tensor:
        weight = self.weight
        if self.weight_transform is not None:
            weight = self.weight_transform(weight)
        return F.conv2d(x, weight, self.bias,
                        stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )


class Linear(Module):
    """Fully connected layer: ``(N, in) -> (N, out)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = fallback_rng("Linear.__init__", rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            _kaiming_normal((out_features, in_features), in_features, rng)
        )
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None
        self.weight_transform = None

    def forward(self, x: Tensor) -> Tensor:
        weight = self.weight
        if self.weight_transform is not None:
            weight = self.weight_transform(weight)
        return F.linear(x, weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class BatchNorm2d(Module):
    """Per-channel batch normalisation with running statistics."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features, dtype=np.float32))
        self.beta = Parameter(np.zeros(num_features, dtype=np.float32))
        self._buffers = {
            "running_mean": np.zeros(num_features, dtype=np.float32),
            "running_var": np.ones(num_features, dtype=np.float32),
        }
        # Eval-mode constants (reshaped running stats, 1/sqrt(var+eps)) as
        # plain non-grad ndarrays; self-invalidates when the running
        # buffers change (training forwards, load_state_dict).
        self._eval_cache = F.BatchNormEvalCache()

    @property
    def running_mean(self) -> np.ndarray:
        return self._buffers["running_mean"]

    @property
    def running_var(self) -> np.ndarray:
        return self._buffers["running_var"]

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm2d(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
            eval_cache=self._eval_cache,
        )

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class MaxPool2d(Module):
    """Disjoint-window max pooling (stride == kernel size)."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size)


class AvgPool2d(Module):
    """Disjoint-window average pooling (stride == kernel size)."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Dropout(Module):
    """Inverted dropout.

    Thread a seeded ``rng`` (e.g. ``TrialContext.rng()``) for
    reproducible masks; an unseeded instance only falls back — loudly,
    via :class:`repro.nn.seeding.UnseededRngWarning` — when a training
    forward pass actually needs randomness, so eval-only use never warns.
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return F.dropout(x, self.p, training=False)
        if self.rng is None:
            self.rng = fallback_rng("Dropout.forward")
        return F.dropout(x, self.p, training=True, rng=self.rng)
