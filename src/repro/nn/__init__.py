"""From-scratch numpy DNN framework.

Provides the DNN substrate the paper's experiments need: autograd tensors,
conv/BN/pool/linear layers, VGG/ResNet models, 8-bit weight quantization
with bit-level access, SGD training, and synthetic datasets standing in for
CIFAR-10/ImageNet (see DESIGN.md for the substitution rationale).
"""

from repro.nn import functional
from repro.nn.data import Dataset, cifar10_like, imagenet_like, synthetic_classification
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.loss import CrossEntropyLoss
from repro.nn.models import (
    VGG,
    BasicBlock,
    ResNet,
    make_resnet18,
    make_resnet20,
    make_resnet34,
    make_vgg11,
)
from repro.nn.module import Module, Sequential
from repro.nn.optim import SGD, default_decay_filter
from repro.nn.seeding import UnseededRngWarning, fallback_rng
from repro.nn.quant import BitLocation, QuantizedLayer, QuantizedModel
from repro.nn.tensor import Parameter, Tensor, no_grad
from repro.nn.train import evaluate, fit, loss_and_grads, predict_logits

__all__ = [
    "functional",
    "Dataset",
    "cifar10_like",
    "imagenet_like",
    "synthetic_classification",
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2d",
    "Identity",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "CrossEntropyLoss",
    "VGG",
    "BasicBlock",
    "ResNet",
    "make_resnet18",
    "make_resnet20",
    "make_resnet34",
    "make_vgg11",
    "Module",
    "Sequential",
    "SGD",
    "default_decay_filter",
    "UnseededRngWarning",
    "fallback_rng",
    "BitLocation",
    "QuantizedLayer",
    "QuantizedModel",
    "Parameter",
    "Tensor",
    "no_grad",
    "evaluate",
    "fit",
    "loss_and_grads",
    "predict_logits",
]
