"""8-bit weight quantization and bit-level weight manipulation.

Following the BFA paper [15], each quantizable layer (conv / linear) gets a
symmetric per-layer scale ``s = max|W| / 127`` and integer weights
``W_int = clip(round(W / s), -127, 127)`` stored in two's complement.  The
deployed model computes with ``W_int * s``; an attacker flipping bit ``b`` of
a weight byte changes the weight by ``+-2^b * s`` (``-+128 * s`` for the sign
bit), which is exactly the lever the bit-flip attack exploits.

:class:`QuantizedModel` is the single authority over the integer weights:
attacks flip bits through it, the DRAM mapping reads/writes its packed bytes,
and it keeps the float model's parameters in sync so inference and gradients
always see the dequantized values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.utils.bits import (
    flip_bit_in_byte,
    int8_to_twos_complement,
    twos_complement_to_int8,
)

__all__ = ["BitLocation", "QuantizedLayer", "QuantizedModel"]


@dataclass(frozen=True, order=True)
class BitLocation:
    """Canonical coordinates of one weight bit.

    Attributes:
        layer: index into :attr:`QuantizedModel.layers`.
        index: flat weight index within that layer.
        bit: bit position 0..7 (bit 7 is the two's-complement sign bit).
    """

    layer: int
    index: int
    bit: int


class QuantizedLayer:
    """One quantized conv/linear layer: integer weights + scale."""

    def __init__(self, name: str, module: Module, qmax: int = 127):
        weight = getattr(module, "weight", None)
        if weight is None:
            raise ValueError(f"module {name} has no weight to quantize")
        self.name = name
        self.module = module
        self.qmax = qmax
        w = module.weight.data
        max_abs = float(np.max(np.abs(w))) if w.size else 0.0
        self.scale = max_abs / qmax if max_abs > 0 else 1.0
        q = np.clip(np.round(w / self.scale), -qmax, qmax)
        self.weight_int = q.astype(np.int8)
        # Monotonic mutation counter: bumped on every integer-weight change
        # so derived caches (e.g. the BFA's per-layer bit-delta tables) can
        # detect staleness without hashing the weights.
        self.version = 0
        self._sync_float()

    def _sync_float(self) -> None:
        self.module.weight.data[...] = (
            self.weight_int.astype(np.float32) * self.scale
        )

    @property
    def num_weights(self) -> int:
        return int(self.weight_int.size)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.weight_int.shape

    def get_int(self, index: int) -> int:
        return int(self.weight_int.flat[index])

    def set_int(self, index: int, value: int) -> None:
        if not -128 <= value <= 127:
            raise ValueError(f"int8 value out of range: {value}")
        self.weight_int.flat[index] = np.int8(value)
        self.module.weight.data.flat[index] = np.float32(value * self.scale)
        self.version += 1

    def flip_bit(self, index: int, bit: int) -> float:
        """Flip one bit of one weight; returns the float weight delta."""
        old = self.get_int(index)
        byte = int(int8_to_twos_complement(np.array(old, dtype=np.int8))[()])
        new_byte = flip_bit_in_byte(byte, bit)
        new = int(twos_complement_to_int8(np.array(new_byte, dtype=np.uint8))[()])
        self.set_int(index, new)
        return (new - old) * self.scale

    def packed_bytes(self) -> np.ndarray:
        """Two's-complement bytes of the flat weight vector (for DRAM)."""
        return int8_to_twos_complement(self.weight_int.reshape(-1))

    def load_packed_bytes(self, data: np.ndarray) -> None:
        """Overwrite integer weights from packed bytes (DRAM read-back)."""
        data = np.asarray(data, dtype=np.uint8)
        if data.size != self.num_weights:
            raise ValueError(
                f"expected {self.num_weights} bytes, got {data.size}"
            )
        self.weight_int = twos_complement_to_int8(data).reshape(self.shape)
        self.version += 1
        self._sync_float()

    def load_packed_slice(self, offset: int, data: np.ndarray) -> None:
        """Overwrite ``data.size`` weights starting at flat index ``offset``.

        The partial counterpart of :meth:`load_packed_bytes`: one DRAM
        row's worth of bytes updates only its slice of the integer weights
        and the dequantized float weights, so an incremental post-window
        sync costs O(touched rows) instead of O(model).
        """
        data = np.asarray(data, dtype=np.uint8)
        stop = offset + data.size
        if offset < 0 or stop > self.num_weights:
            raise ValueError(
                f"byte slice [{offset}, {stop}) out of range for "
                f"{self.num_weights} weights"
            )
        if data.size == 0:
            return
        ints = twos_complement_to_int8(data)
        self.weight_int.flat[offset:stop] = ints
        self.module.weight.data.flat[offset:stop] = (
            ints.astype(np.float32) * self.scale
        )
        self.version += 1

    def grad_flat(self) -> np.ndarray:
        """Flat gradient of the loss w.r.t. this layer's (float) weights."""
        grad = self.module.weight.grad
        if grad is None:
            raise RuntimeError(
                f"layer {self.name} has no gradient; run backward() first"
            )
        return grad.reshape(-1)


class QuantizedModel:
    """A deployed (frozen, 8-bit) model plus bit-level weight access."""

    QUANTIZABLE = (Conv2d, Linear)

    def __init__(self, model: Module, qmax: int = 127):
        self.model = model
        self.layers: list[QuantizedLayer] = []
        seen: set[int] = set()
        for name, module in model._named_modules():
            if isinstance(module, self.QUANTIZABLE) and id(module) not in seen:
                seen.add(id(module))
                self.layers.append(QuantizedLayer(name, module, qmax=qmax))
        if not self.layers:
            raise ValueError("model contains no quantizable layers")

    # ------------------------------------------------------------------ #
    # Shape queries
    # ------------------------------------------------------------------ #

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def total_weights(self) -> int:
        return sum(layer.num_weights for layer in self.layers)

    @property
    def total_bits(self) -> int:
        return self.total_weights * 8

    def layer(self, index: int) -> QuantizedLayer:
        if not 0 <= index < len(self.layers):
            raise ValueError(f"layer {index} out of range [0, {len(self.layers)})")
        return self.layers[index]

    # ------------------------------------------------------------------ #
    # Bit manipulation
    # ------------------------------------------------------------------ #

    def flip_bit(self, location: BitLocation) -> float:
        """Flip one weight bit; returns the float weight delta."""
        return self.layer(location.layer).flip_bit(location.index, location.bit)

    def get_int(self, location: BitLocation) -> int:
        return self.layer(location.layer).get_int(location.index)

    def bit_value(self, location: BitLocation) -> int:
        byte = int(
            int8_to_twos_complement(
                np.array(self.get_int(location), dtype=np.int8)
            )[()]
        )
        return (byte >> location.bit) & 1

    # ------------------------------------------------------------------ #
    # Snapshots (attack rounds flip bits back; Section 4's profiler)
    # ------------------------------------------------------------------ #

    def snapshot(self) -> list[np.ndarray]:
        return [layer.weight_int.copy() for layer in self.layers]

    def restore(self, snapshot: list[np.ndarray]) -> None:
        if len(snapshot) != len(self.layers):
            raise ValueError(
                f"snapshot has {len(snapshot)} layers, model has "
                f"{len(self.layers)}"
            )
        for layer, saved in zip(self.layers, snapshot):
            if saved.shape != layer.shape:
                raise ValueError(
                    f"snapshot shape mismatch for {layer.name}: "
                    f"{saved.shape} vs {layer.shape}"
                )
            layer.weight_int = saved.copy()
            layer.version += 1
            layer._sync_float()

    def hamming_distance_from(self, snapshot: list[np.ndarray]) -> int:
        """Total flipped bits relative to a snapshot (the BFA budget metric)."""
        total = 0
        for layer, saved in zip(self.layers, snapshot):
            a = int8_to_twos_complement(layer.weight_int.reshape(-1))
            b = int8_to_twos_complement(saved.reshape(-1))
            total += int(
                np.unpackbits(np.bitwise_xor(a, b)).sum()
            )
        return total

    # ------------------------------------------------------------------ #
    # Forward helpers
    # ------------------------------------------------------------------ #

    def __call__(self, x):
        return self.model(x)

    def zero_grad(self) -> None:
        self.model.zero_grad()
