"""Training and evaluation loops."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.data import Dataset
from repro.nn.module import Module
from repro.nn.optim import SGD
from repro.nn.tensor import Tensor, no_grad

__all__ = ["fit", "evaluate", "predict_logits", "loss_and_grads"]


def _iter_batches(
    x: np.ndarray, y: np.ndarray, batch_size: int, rng: np.random.Generator
):
    order = rng.permutation(x.shape[0])
    for start in range(0, x.shape[0], batch_size):
        idx = order[start:start + batch_size]
        yield x[idx], y[idx]


def fit(
    model: Module,
    dataset: Dataset,
    epochs: int = 10,
    batch_size: int = 64,
    lr: float = 0.05,
    momentum: float = 0.9,
    weight_decay: float = 5e-4,
    lr_decay_at: tuple[int, ...] = (),
    seed: int = 0,
    verbose: bool = False,
) -> dict[str, list[float]]:
    """Train ``model`` on ``dataset``; returns per-epoch history."""
    rng = np.random.default_rng(seed)
    optimizer = SGD(model.parameters(), lr=lr, momentum=momentum,
                    weight_decay=weight_decay)
    history: dict[str, list[float]] = {"loss": [], "test_accuracy": []}
    for epoch in range(epochs):
        if epoch in lr_decay_at:
            optimizer.lr *= 0.1
        model.train()
        losses = []
        for xb, yb in _iter_batches(dataset.x_train, dataset.y_train,
                                    batch_size, rng):
            optimizer.zero_grad()
            logits = model(Tensor(xb))
            loss = F.cross_entropy(logits, yb)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        accuracy = evaluate(model, dataset.x_test, dataset.y_test)
        history["loss"].append(float(np.mean(losses)))
        history["test_accuracy"].append(accuracy)
        if verbose:
            print(
                f"epoch {epoch + 1:3d}/{epochs}  "
                f"loss {history['loss'][-1]:.4f}  "
                f"test acc {accuracy * 100:.2f}%"
            )
    return history


def predict_logits(
    model: Module, x: np.ndarray, batch_size: int = 256
) -> np.ndarray:
    """Inference logits for ``x`` (eval mode, no autograd)."""
    model.eval()
    outputs = []
    with no_grad():
        for start in range(0, x.shape[0], batch_size):
            logits = model(Tensor(x[start:start + batch_size]))
            outputs.append(logits.data)
    return np.concatenate(outputs, axis=0)


def evaluate(
    model: Module, x: np.ndarray, y: np.ndarray, batch_size: int = 256
) -> float:
    """Top-1 accuracy of ``model`` on ``(x, y)``."""
    logits = predict_logits(model, x, batch_size=batch_size)
    return float((logits.argmax(axis=1) == y).mean())


def loss_and_grads(
    model: Module, x: np.ndarray, y: np.ndarray,
    batch_size: int | None = None,
) -> float:
    """Forward/backward pass(es) in eval mode; returns the loss value.

    Used by the attack and the profiler: eval mode keeps batch-norm
    statistics frozen (the attacker cannot perturb them), while autograd
    still populates ``weight.grad`` for the bit ranking.

    ``batch_size=None`` (the default) is the single full-batch pass.
    Passing a micro-batch size accumulates parameter gradients across
    slices instead, bounding peak activation memory at
    O(``batch_size``) rather than O(len(x)) for large attack batches.
    Per-sample logit gradients use the full-batch ``1/N`` scaling
    (:func:`repro.nn.functional.cross_entropy_slice`), the returned loss
    is reconstructed from the concatenated per-sample losses, and the
    slice accumulation itself is exact (grouping-exact reference test).
    Loss and grads match the single pass to float32 rounding — not byte
    for byte, because BLAS may pick different gemm kernels for different
    batch shapes (per-row results shift in the last mantissa bits) and
    slice partial sums are grouped per slice — parity-tested with tight
    tolerances in ``tests/nn/test_train_microbatch.py``.
    """
    model.eval()
    model.zero_grad()
    n = x.shape[0]
    if batch_size is None or batch_size >= n:
        logits = model(Tensor(x))
        loss = F.cross_entropy(logits, y)
        loss.backward()
        return loss.item()
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    per_sample: list[np.ndarray] = []
    for start in range(0, n, batch_size):
        stop = start + batch_size
        logits = model(Tensor(x[start:stop]))
        loss, losses = F.cross_entropy_slice(logits, y[start:stop], n)
        loss.backward()
        per_sample.append(losses)
    return float(np.mean(np.concatenate(per_sample)))
