"""Module base class: parameter registry, train/eval mode, state dicts."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.tensor import Parameter

__all__ = ["Module", "Sequential"]


class Module:
    """Base class for layers and models.

    Sub-modules and :class:`Parameter` attributes are discovered by
    attribute scan (the PyTorch convention, without the metaclass
    machinery).  ``forward`` must be overridden; instances are callable.
    """

    def __init__(self):
        self.training = True

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #

    def forward(self, x):
        raise NotImplementedError

    def __call__(self, x):
        return self.forward(x)

    # ------------------------------------------------------------------ #
    # Registry walks
    # ------------------------------------------------------------------ #

    def children(self) -> Iterator["Module"]:
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self.children():
            yield from child.modules()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}" if prefix else name
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{i}", item

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def parameter_count(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    # Modes
    # ------------------------------------------------------------------ #

    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    # ------------------------------------------------------------------ #
    # State persistence
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, module in self._named_modules():
            for buf_name, buffer in getattr(module, "_buffers", {}).items():
                key = f"{name}.{buf_name}" if name else buf_name
                state[key] = buffer.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        buffers: dict[str, np.ndarray] = {}
        for name, module in self._named_modules():
            for buf_name, buffer in getattr(module, "_buffers", {}).items():
                key = f"{name}.{buf_name}" if name else buf_name
                buffers[key] = buffer
        missing = (set(params) | set(buffers)) - set(state)
        if missing:
            raise KeyError(f"state dict is missing keys: {sorted(missing)}")
        for name, param in params.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{param.data.shape} vs {state[name].shape}"
                )
            param.data[...] = state[name]
        for name, buffer in buffers.items():
            buffer[...] = state[name]

    def _named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, value in vars(self).items():
            full = f"{prefix}.{name}" if prefix else name
            if isinstance(value, Module):
                yield from value._named_modules(full)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item._named_modules(f"{full}.{i}")


class Sequential(Module):
    """Apply sub-modules in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self):
        return len(self.layers)

    def __getitem__(self, index):
        return self.layers[index]
