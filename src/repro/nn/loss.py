"""Loss functions (wrappers over the functional primitives)."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor

__all__ = ["CrossEntropyLoss"]


class CrossEntropyLoss:
    """Mean cross-entropy over a batch of logits and integer targets."""

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets)
