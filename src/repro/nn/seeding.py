"""Loud fallbacks for unseeded randomness.

Every stochastic component in :mod:`repro.nn` (layer initialisation,
dropout) accepts an ``rng`` argument so experiment trials stay
bit-for-bit reproducible: the scenario runner derives one seed per trial
and :meth:`repro.experiments.runner.TrialContext.rng` fans it out to
sub-components.  Historically a caller who forgot to thread the rng got
a silent ``np.random.default_rng()`` — fresh OS entropy that breaks the
runner's determinism contract without any signal.

:func:`fallback_rng` keeps the fallback working but makes it *loud*: it
emits an :class:`UnseededRngWarning` naming the call site, unless the
caller has explicitly opted in by setting ``REPRO_ALLOW_UNSEEDED_RNG=1``
(e.g. throwaway notebooks where reproducibility genuinely does not
matter).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.utils.env import env_str

__all__ = ["UnseededRngWarning", "fallback_rng"]


class UnseededRngWarning(RuntimeWarning):
    """A stochastic component fell back to OS-entropy randomness."""


def fallback_rng(
    site: str, rng: np.random.Generator | None = None
) -> np.random.Generator:
    """Return ``rng``, or a fresh unseeded generator with a loud warning.

    Args:
        site: Human-readable call site for the warning message, e.g.
            ``"Conv2d.__init__"``.
        rng: The caller-threaded generator; returned as-is when present.
    """
    if rng is not None:
        return rng
    if env_str("REPRO_ALLOW_UNSEEDED_RNG") != "1":
        warnings.warn(
            f"{site}: no rng was supplied, falling back to OS-entropy "
            "randomness — results will not be reproducible. Thread a "
            "seeded np.random.Generator (e.g. TrialContext.rng()) "
            "through, or set REPRO_ALLOW_UNSEEDED_RNG=1 to silence this "
            "warning.",
            UnseededRngWarning,
            stacklevel=3,
        )
    return np.random.default_rng()
