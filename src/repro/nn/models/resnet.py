"""ResNet family: ResNet-20 (CIFAR style) and ResNet-18/34 (ImageNet style).

The paper attacks an 8-bit ResNet-20 on CIFAR-10 (Table 3, baseline from
[15]) and ResNet-18/34 on ImageNet (Figs. 1b, 9b, 9c).  Architectures follow
He et al.; the ImageNet stem is adapted for small synthetic inputs (3x3
stride-1 conv instead of 7x7 stride-2 + maxpool when the input is small),
and ``width_scale`` shrinks channel counts for CI-scale runs.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Identity,
    Linear,
    ReLU,
)
from repro.nn.module import Module, Sequential
from repro.nn.seeding import fallback_rng

__all__ = ["BasicBlock", "ResNet", "make_resnet20", "make_resnet18", "make_resnet34"]


def _scaled(channels: int, width_scale: float) -> int:
    return max(8, int(round(channels * width_scale)))


class BasicBlock(Module):
    """Two 3x3 convs with identity (or projected) shortcut."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: np.random.Generator | None = None,
        activation_factory=ReLU,
    ):
        super().__init__()
        rng = fallback_rng("BasicBlock.__init__", rng)
        self.conv1 = Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1,
            bias=False, rng=rng,
        )
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(
            out_channels, out_channels, 3, stride=1, padding=1,
            bias=False, rng=rng,
        )
        self.bn2 = BatchNorm2d(out_channels)
        self.relu = activation_factory()
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride,
                       bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x):
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        out = out + self.shortcut(x)
        return self.relu(out)


class ResNet(Module):
    """Generic basic-block ResNet."""

    def __init__(
        self,
        stage_blocks: list[int],
        stage_channels: list[int],
        num_classes: int = 10,
        in_channels: int = 3,
        width_scale: float = 1.0,
        rng: np.random.Generator | None = None,
        activation_factory=ReLU,
    ):
        super().__init__()
        rng = fallback_rng("ResNet.__init__", rng)
        if len(stage_blocks) != len(stage_channels):
            raise ValueError(
                f"{len(stage_blocks)} stages but {len(stage_channels)} widths"
            )
        widths = [_scaled(c, width_scale) for c in stage_channels]
        self.stem_conv = Conv2d(
            in_channels, widths[0], 3, stride=1, padding=1, bias=False, rng=rng
        )
        self.stem_bn = BatchNorm2d(widths[0])
        self.relu = activation_factory()
        stages: list[Module] = []
        channels = widths[0]
        for stage_index, (blocks, width) in enumerate(zip(stage_blocks, widths)):
            for block_index in range(blocks):
                stride = 2 if stage_index > 0 and block_index == 0 else 1
                stages.append(
                    BasicBlock(
                        channels, width, stride=stride, rng=rng,
                        activation_factory=activation_factory,
                    )
                )
                channels = width
        self.stages = Sequential(*stages)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(channels, num_classes, rng=rng)

    def forward(self, x):
        out = self.relu(self.stem_bn(self.stem_conv(x)))
        out = self.stages(out)
        out = self.pool(out)
        return self.fc(out)


def make_resnet20(
    num_classes: int = 10,
    in_channels: int = 3,
    width_scale: float = 1.0,
    seed: int = 0,
    activation_factory=ReLU,
) -> ResNet:
    """CIFAR-style ResNet-20: 3 stages x 3 blocks, widths 16/32/64."""
    rng = np.random.default_rng(seed)
    return ResNet([3, 3, 3], [16, 32, 64], num_classes=num_classes,
                  in_channels=in_channels, width_scale=width_scale, rng=rng,
                  activation_factory=activation_factory)


def make_resnet18(
    num_classes: int = 100,
    in_channels: int = 3,
    width_scale: float = 1.0,
    seed: int = 0,
) -> ResNet:
    """ResNet-18: 4 stages x 2 blocks, widths 64/128/256/512."""
    rng = np.random.default_rng(seed)
    return ResNet([2, 2, 2, 2], [64, 128, 256, 512], num_classes=num_classes,
                  in_channels=in_channels, width_scale=width_scale, rng=rng)


def make_resnet34(
    num_classes: int = 100,
    in_channels: int = 3,
    width_scale: float = 1.0,
    seed: int = 0,
) -> ResNet:
    """ResNet-34: 4 stages of 3/4/6/3 blocks, widths 64/128/256/512."""
    rng = np.random.default_rng(seed)
    return ResNet([3, 4, 6, 3], [64, 128, 256, 512], num_classes=num_classes,
                  in_channels=in_channels, width_scale=width_scale, rng=rng)
