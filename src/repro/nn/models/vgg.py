"""VGG-11 (with batch norm), faithful in structure and scalable in width.

The paper evaluates VGG-11 on CIFAR-10 (Fig. 9a).  The reproduction keeps
the published layer sequence — eight 3x3 conv layers interleaved with max
pooling, then a three-layer classifier — and adds two knobs so the same code
runs at CI scale: ``width_scale`` shrinks every channel count, and pooling
stages are skipped once the spatial size reaches 1 (so small inputs work).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.module import Module, Sequential
from repro.nn.seeding import fallback_rng

__all__ = ["VGG", "make_vgg11", "VGG11_CONFIG"]

# Channel plan of VGG-11: integers are conv output channels, "M" is 2x2 max
# pooling.
VGG11_CONFIG: list[int | str] = [
    64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"
]


def _scaled(channels: int, width_scale: float) -> int:
    return max(8, int(round(channels * width_scale)))


class VGG(Module):
    """VGG feature extractor + MLP classifier."""

    def __init__(
        self,
        config: list[int | str],
        num_classes: int = 10,
        in_channels: int = 3,
        input_size: int = 32,
        width_scale: float = 1.0,
        hidden_scale: float | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = fallback_rng("VGG.__init__", rng)
        if input_size < 4:
            raise ValueError(f"input_size must be >= 4, got {input_size}")
        hidden_scale = width_scale if hidden_scale is None else hidden_scale
        layers: list[Module] = []
        channels = in_channels
        size = input_size
        for item in config:
            if item == "M":
                if size >= 2 and size % 2 == 0:
                    layers.append(MaxPool2d(2))
                    size //= 2
                continue
            out_channels = _scaled(int(item), width_scale)
            layers.append(
                Conv2d(channels, out_channels, 3, padding=1, rng=rng)
            )
            layers.append(BatchNorm2d(out_channels))
            layers.append(ReLU())
            channels = out_channels
        self.features = Sequential(*layers)
        hidden = max(32, int(round(4096 * hidden_scale)))
        flat = channels * size * size
        self.classifier = Sequential(
            Flatten(),
            Linear(flat, hidden, rng=rng),
            ReLU(),
            Linear(hidden, hidden, rng=rng),
            ReLU(),
            Linear(hidden, num_classes, rng=rng),
        )
        self.feature_channels = channels
        self.feature_size = size

    def forward(self, x):
        return self.classifier(self.features(x))


def make_vgg11(
    num_classes: int = 10,
    in_channels: int = 3,
    input_size: int = 32,
    width_scale: float = 1.0,
    hidden_scale: float | None = None,
    seed: int = 0,
) -> VGG:
    """Build a VGG-11 with deterministic initialisation."""
    rng = np.random.default_rng(seed)
    return VGG(
        VGG11_CONFIG,
        num_classes=num_classes,
        in_channels=in_channels,
        input_size=input_size,
        width_scale=width_scale,
        hidden_scale=hidden_scale,
        rng=rng,
    )
