"""Model zoo used by the paper's experiments."""

from repro.nn.models.resnet import (
    BasicBlock,
    ResNet,
    make_resnet18,
    make_resnet20,
    make_resnet34,
)
from repro.nn.models.vgg import VGG, VGG11_CONFIG, make_vgg11

__all__ = [
    "BasicBlock",
    "ResNet",
    "make_resnet18",
    "make_resnet20",
    "make_resnet34",
    "VGG",
    "VGG11_CONFIG",
    "make_vgg11",
]
