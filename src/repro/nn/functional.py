"""Neural-network primitives with custom backward passes.

Convolution uses the im2col formulation so the heavy lifting happens in one
matrix multiply per layer; pooling supports the disjoint-window case
(``kernel == stride``) used by the VGG/ResNet configurations in this
reproduction; cross-entropy fuses log-softmax and NLL with the standard
``softmax - onehot`` gradient.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "linear",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "batch_norm2d",
    "log_softmax",
    "softmax",
    "cross_entropy",
    "dropout",
]


def _pair(value) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


# ---------------------------------------------------------------------- #
# im2col / col2im
# ---------------------------------------------------------------------- #

def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> np.ndarray:
    """Unfold ``(N, C, H, W)`` into ``(N, C*kh*kw, OH*OW)`` patch columns."""
    n, c, h, w = x.shape
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"kernel ({kh}x{kw}, stride={stride}, padding={padding}) does not "
            f"fit input {h}x{w}"
        )
    if padding:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    for i in range(kh):
        i_end = i + stride * oh
        for j in range(kw):
            j_end = j + stride * ow
            cols[:, :, i, j] = x[:, :, i:i_end:stride, j:j_end:stride]
    return cols.reshape(n, c * kh * kw, oh * ow)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold patch columns back to an input-shaped array (adjoint of im2col)."""
    n, c, h, w = x_shape
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + stride * oh
        for j in range(kw):
            j_end = j + stride * ow
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


# ---------------------------------------------------------------------- #
# Convolution / linear
# ---------------------------------------------------------------------- #

def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2D convolution: x ``(N,C,H,W)``, weight ``(F,C,KH,KW)``."""
    n, c, h, w = x.shape
    f, wc, kh, kw = weight.shape
    if wc != c:
        raise ValueError(f"input has {c} channels but weight expects {wc}")
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    cols = im2col(x.data, kh, kw, stride, padding)        # (N, CKK, L)
    w2d = weight.data.reshape(f, -1)                      # (F, CKK)
    out = w2d @ cols                                      # (N, F, L)
    out = out.reshape(n, f, oh, ow)
    if bias is not None:
        out = out + bias.data.reshape(1, f, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward_fn(grad: np.ndarray) -> None:
        grad2d = grad.reshape(n, f, oh * ow)              # (N, F, L)
        if weight.requires_grad:
            # Sum over batch of dout @ cols^T.
            grad_w = np.einsum("nfl,nkl->fk", grad2d, cols)
            Tensor._accumulate(weight, grad_w.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            Tensor._accumulate(bias, grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            grad_cols = w2d.T @ grad2d                    # (N, CKK, L)
            grad_x = col2im(grad_cols, x.data.shape, kh, kw, stride, padding)
            Tensor._accumulate(x, grad_x)

    return Tensor._make(out, parents, backward_fn)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map: x ``(N, in)``, weight ``(out, in)`` -> ``(N, out)``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


# ---------------------------------------------------------------------- #
# Pooling
# ---------------------------------------------------------------------- #

def _check_disjoint(h: int, w: int, kh: int, kw: int) -> None:
    if h % kh or w % kw:
        raise ValueError(
            f"disjoint pooling requires the kernel ({kh}x{kw}) to tile the "
            f"input ({h}x{w}) exactly"
        )


def max_pool2d(x: Tensor, kernel_size) -> Tensor:
    """Max pooling with disjoint windows (``stride == kernel_size``)."""
    kh, kw = _pair(kernel_size)
    n, c, h, w = x.shape
    _check_disjoint(h, w, kh, kw)
    oh, ow = h // kh, w // kw
    windows = x.data.reshape(n, c, oh, kh, ow, kw)
    out = windows.max(axis=(3, 5))
    # Mask of argmax positions for the backward pass; axes reordered so each
    # window's kh*kw elements are contiguous, then ties broken to the first
    # maximum per window.
    mask = windows == out[:, :, :, None, :, None]       # (n,c,oh,kh,ow,kw)
    flat = mask.transpose(0, 1, 2, 4, 3, 5).reshape(-1, kh * kw)
    first = np.argmax(flat, axis=1)
    tie = np.zeros_like(flat)
    tie[np.arange(tie.shape[0]), first] = True
    tie_mask = (
        tie.reshape(n, c, oh, ow, kh, kw).transpose(0, 1, 2, 4, 3, 5)
    )

    def backward_fn(grad: np.ndarray) -> None:
        g = grad[:, :, :, None, :, None] * tie_mask
        Tensor._accumulate(x, g.reshape(x.data.shape))

    return Tensor._make(out, (x,), backward_fn)


def avg_pool2d(x: Tensor, kernel_size) -> Tensor:
    """Average pooling with disjoint windows."""
    kh, kw = _pair(kernel_size)
    n, c, h, w = x.shape
    _check_disjoint(h, w, kh, kw)
    oh, ow = h // kh, w // kw
    windows = x.data.reshape(n, c, oh, kh, ow, kw)
    out = windows.mean(axis=(3, 5))
    scale = 1.0 / (kh * kw)

    def backward_fn(grad: np.ndarray) -> None:
        g = np.broadcast_to(
            grad[:, :, :, None, :, None] * scale, (n, c, oh, kh, ow, kw)
        )
        Tensor._accumulate(x, g.reshape(x.data.shape))

    return Tensor._make(out, (x,), backward_fn)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial dimensions: ``(N,C,H,W)`` -> ``(N,C)``."""
    return x.mean(axis=(2, 3))


# ---------------------------------------------------------------------- #
# Batch normalisation
# ---------------------------------------------------------------------- #

def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Per-channel batch norm over ``(N, C, H, W)``.

    In training mode the batch statistics are used (and the running buffers
    updated in place); in eval mode the running statistics are constants,
    so only the affine part participates in autograd.
    """
    c = x.shape[1]
    gamma4 = gamma.reshape(1, c, 1, 1)
    beta4 = beta.reshape(1, c, 1, 1)
    if training:
        mean = x.mean(axis=(0, 2, 3), keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=(0, 2, 3), keepdims=True)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean.data.reshape(c)
        n = x.data.shape[0] * x.data.shape[2] * x.data.shape[3]
        unbiased = var.data.reshape(c) * (n / max(n - 1, 1))
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
        inv_std = (var + eps) ** -0.5
        xhat = centered * inv_std
    else:
        mean = running_mean.reshape(1, c, 1, 1)
        inv_std = 1.0 / np.sqrt(running_var.reshape(1, c, 1, 1) + eps)
        xhat = (x - mean) * Tensor(inv_std)
    return xhat * gamma4 + beta4


# ---------------------------------------------------------------------- #
# Softmax / losses
# ---------------------------------------------------------------------- #

def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_sum
    softmax_vals = np.exp(out)

    def backward_fn(grad: np.ndarray) -> None:
        g = grad - softmax_vals * grad.sum(axis=axis, keepdims=True)
        Tensor._accumulate(x, g)

    return Tensor._make(out, (x,), backward_fn)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(x, axis=axis).exp()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``(N, K)`` logits and integer targets."""
    targets = np.asarray(targets)
    if targets.ndim != 1:
        raise ValueError(f"targets must be 1-D class indices, got {targets.shape}")
    n, k = logits.shape
    if targets.shape[0] != n:
        raise ValueError(f"{n} logits rows but {targets.shape[0]} targets")
    if targets.min() < 0 or targets.max() >= k:
        raise ValueError("target class index out of range")
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    loss_value = -log_probs[np.arange(n), targets].mean()
    probs = np.exp(log_probs)

    def backward_fn(grad: np.ndarray) -> None:
        g = probs.copy()
        g[np.arange(n), targets] -= 1.0
        g *= float(grad) / n
        Tensor._accumulate(logits, g)

    return Tensor._make(np.asarray(loss_value, dtype=logits.dtype),
                        (logits,), backward_fn)


def dropout(x: Tensor, p: float, training: bool,
            rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout; identity when evaluating or ``p == 0``.

    Pass a seeded ``rng`` for reproducible masks; omitting it falls back
    to OS entropy with an :class:`repro.nn.seeding.UnseededRngWarning`
    (trial determinism depends on every random draw being seeded).
    """
    from repro.nn.seeding import fallback_rng

    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    rng = fallback_rng("functional.dropout", rng)
    mask = (rng.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)

    def backward_fn(grad: np.ndarray) -> None:
        Tensor._accumulate(x, grad * mask)

    return Tensor._make(x.data * mask, (x,), backward_fn)
