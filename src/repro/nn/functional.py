"""Neural-network primitives with custom backward passes.

Convolution uses the im2col formulation so the heavy lifting happens in one
matrix multiply per layer; pooling supports the disjoint-window case
(``kernel == stride``) used by the VGG/ResNet configurations in this
reproduction; cross-entropy fuses log-softmax and NLL with the standard
``softmax - onehot`` gradient.

Two functionally identical kernel paths exist (selected per call by
:func:`vectorized_default`, env ``REPRO_NN_VECTORIZED``):

* the **vectorized** default — ``sliding_window_view`` strided im2col,
  pooled scratch buffers reused across calls, in-place/``out=`` matmuls,
  a fused eval-mode batch-norm node with cached constants, and lazy
  backward preparation (pooling argmax masks are only built when a
  gradient can actually flow);
* the **legacy** path — the original per-``(kh, kw)`` Python loops and
  per-op autograd graph, kept as the verifiable parity reference for
  ``repro bench`` (``forward_backward``) and the parity tests.

Both paths produce byte-identical outputs and gradients: the vectorized
kernels only change data movement (strided copies, buffer reuse) and
fuse elementwise chains in the exact evaluation order of the legacy
graph, never the floating-point reduction order.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.tensor import Tensor, _unbroadcast, is_grad_enabled
from repro.utils.env import env_flag

__all__ = [
    "vectorized_default",
    "BatchNormEvalCache",
    "im2col",
    "col2im",
    "conv2d",
    "linear",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "batch_norm2d",
    "log_softmax",
    "softmax",
    "cross_entropy",
    "dropout",
]

_VEC_ENV = "REPRO_NN_VECTORIZED"


def vectorized_default() -> bool:
    """Resolve the kernel-path default (env-overridable).

    ``REPRO_NN_VECTORIZED=0`` forces the legacy per-``(kh, kw)``-loop
    kernels; anything else (including unset) enables the strided
    vectorized path.  The ``repro bench`` harness uses the toggle to
    measure before/after on the same process.
    """
    return env_flag(_VEC_ENV, True)


def _pair(value) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


# ---------------------------------------------------------------------- #
# Scratch-buffer pool
# ---------------------------------------------------------------------- #

class _BufferPool:
    """Free-list of scratch arrays keyed by ``(shape, dtype)``.

    The convolution hot path allocates multi-megabyte column/padding
    buffers on every call; page-faulting those in dominates im2col time.
    The pool recycles them: ``acquire`` pops a previously released array
    (contents are garbage — callers must overwrite or ``fill``),
    ``release`` returns it.  Arrays handed to callers that never release
    (e.g. a conv graph discarded before ``backward``) are simply
    garbage-collected; the pool only ever misses, never corrupts.

    Single-threaded by design, like the autograd engine itself; process
    pools fork fresh interpreters and therefore fresh pools.
    """

    def __init__(self, max_per_key: int = 4):
        self.max_per_key = max_per_key
        self._free: dict[tuple, list[np.ndarray]] = {}

    def acquire(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        key = (shape, np.dtype(dtype).str)
        free = self._free.get(key)
        if free:
            return free.pop()
        return np.empty(shape, dtype=dtype)

    def release(self, array: np.ndarray | None) -> None:
        if array is None or array.base is not None:
            return  # only whole allocations are poolable, never views
        key = (array.shape, array.dtype.str)
        free = self._free.setdefault(key, [])
        if len(free) < self.max_per_key:
            free.append(array)


_POOL = _BufferPool()


def _conv_geometry(
    h: int, w: int, kh: int, kw: int, stride: int, padding: int
) -> tuple[int, int]:
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"kernel ({kh}x{kw}, stride={stride}, padding={padding}) does not "
            f"fit input {h}x{w}"
        )
    return oh, ow


# ---------------------------------------------------------------------- #
# im2col / col2im
# ---------------------------------------------------------------------- #

def _pad_pooled(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the spatial dims into a pooled scratch buffer."""
    n, c, h, w = x.shape
    buf = _POOL.acquire((n, c, h + 2 * padding, w + 2 * padding), x.dtype)
    buf.fill(0)
    buf[:, :, padding:-padding, padding:-padding] = x
    return buf


def _im2col_fast(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int,
    oh: int, ow: int, cols6: np.ndarray,
) -> np.ndarray:
    """Strided-view im2col into a caller-supplied ``(n,c,kh,kw,oh,ow)``
    buffer; returns it reshaped to ``(n, c*kh*kw, oh*ow)``."""
    n, c = x.shape[:2]
    padded = _pad_pooled(x, padding) if padding else x
    windows = sliding_window_view(padded, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]       # (n, c, oh, ow, kh, kw)
    np.copyto(cols6, windows.transpose(0, 1, 4, 5, 2, 3))
    if padding:
        _POOL.release(padded)
    return cols6.reshape(n, c * kh * kw, oh * ow)


def _im2col_legacy(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int,
    oh: int, ow: int,
) -> np.ndarray:
    n, c = x.shape[:2]
    if padding:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    for i in range(kh):
        i_end = i + stride * oh
        for j in range(kw):
            j_end = j + stride * ow
            cols[:, :, i, j] = x[:, :, i:i_end:stride, j:j_end:stride]
    return cols.reshape(n, c * kh * kw, oh * ow)


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> np.ndarray:
    """Unfold ``(N, C, H, W)`` into ``(N, C*kh*kw, OH*OW)`` patch columns."""
    n, c, h, w = x.shape
    oh, ow = _conv_geometry(h, w, kh, kw, stride, padding)
    if not vectorized_default():
        return _im2col_legacy(x, kh, kw, stride, padding, oh, ow)
    cols6 = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    return _im2col_fast(x, kh, kw, stride, padding, oh, ow, cols6)


def _col2im_into(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
    padded: np.ndarray,
) -> np.ndarray:
    """Fold columns into a caller-supplied padded buffer (zeroed here).

    The accumulation runs in the same ``(i, j)`` order as the legacy
    loop so overlapping windows sum in an identical floating-point
    order — the result is byte-identical, only the buffer is reused.
    """
    n, c, h, w = x_shape
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    cols6 = cols.reshape(n, c, kh, kw, oh, ow)
    padded.fill(0)
    for i in range(kh):
        i_end = i + stride * oh
        for j in range(kw):
            j_end = j + stride * ow
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols6[:, :, i, j]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold patch columns back to an input-shaped array (adjoint of im2col)."""
    n, c, h, w = x_shape
    padded = np.zeros(
        (n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype
    )
    return _col2im_into(cols, x_shape, kh, kw, stride, padding, padded)


# ---------------------------------------------------------------------- #
# Convolution / linear
# ---------------------------------------------------------------------- #

def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2D convolution: x ``(N,C,H,W)``, weight ``(F,C,KH,KW)``."""
    n, c, h, w = x.shape
    f, wc, kh, kw = weight.shape
    if wc != c:
        raise ValueError(f"input has {c} channels but weight expects {wc}")
    oh, ow = _conv_geometry(h, w, kh, kw, stride, padding)
    vectorized = vectorized_default()
    parents = (x, weight) if bias is None else (x, weight, bias)
    needs_grad = is_grad_enabled() and any(p.requires_grad for p in parents)
    w2d = weight.data.reshape(f, -1)                      # (F, CKK)

    if vectorized:
        cols6 = _POOL.acquire((n, c, kh, kw, oh, ow), x.dtype)
        cols = _im2col_fast(x.data, kh, kw, stride, padding, oh, ow, cols6)
    else:
        cols6 = None
        cols = _im2col_legacy(x.data, kh, kw, stride, padding, oh, ow)
    out = w2d @ cols                                      # (N, F, L)
    out = out.reshape(n, f, oh, ow)
    if bias is not None:
        if vectorized:
            np.add(out, bias.data.reshape(1, f, 1, 1), out=out)
        else:
            out = out + bias.data.reshape(1, f, 1, 1)

    if not needs_grad:
        _POOL.release(cols6)
        return Tensor(out)

    x_shape = x.data.shape

    def backward_fn(grad: np.ndarray) -> None:
        nonlocal cols, cols6
        if cols is None:
            # Released by a previous backward (pooled-buffer path);
            # rebuild from the still-live input so double-backward keeps
            # the legacy semantics.
            cols6 = _POOL.acquire((n, c, kh, kw, oh, ow), x.data.dtype)
            cols = _im2col_fast(
                x.data, kh, kw, stride, padding, oh, ow, cols6
            )
        grad2d = grad.reshape(n, f, oh * ow)              # (N, F, L)
        if weight.requires_grad:
            # Sum over batch of dout @ cols^T.
            grad_w = np.einsum("nfl,nkl->fk", grad2d, cols)
            Tensor._accumulate(weight, grad_w.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            Tensor._accumulate(bias, grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            if vectorized:
                grad_cols = _POOL.acquire(cols.shape, grad.dtype)
                np.matmul(w2d.T, grad2d, out=grad_cols)   # (N, CKK, L)
                padded = _POOL.acquire(
                    (n, c, h + 2 * padding, w + 2 * padding), grad.dtype
                )
                grad_x = _col2im_into(
                    grad_cols, x_shape, kh, kw, stride, padding, padded
                )
                Tensor._accumulate(x, grad_x)
                _POOL.release(grad_cols)
                _POOL.release(padded)
            else:
                grad_cols = w2d.T @ grad2d                # (N, CKK, L)
                grad_x = col2im(grad_cols, x_shape, kh, kw, stride, padding)
                Tensor._accumulate(x, grad_x)
        if cols6 is not None:
            _POOL.release(cols6)
            cols = None
            cols6 = None

    return Tensor._make(out, parents, backward_fn)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map: x ``(N, in)``, weight ``(out, in)`` -> ``(N, out)``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


# ---------------------------------------------------------------------- #
# Pooling
# ---------------------------------------------------------------------- #

def _check_disjoint(h: int, w: int, kh: int, kw: int) -> None:
    if h % kh or w % kw:
        raise ValueError(
            f"disjoint pooling requires the kernel ({kh}x{kw}) to tile the "
            f"input ({h}x{w}) exactly"
        )


def max_pool2d(x: Tensor, kernel_size) -> Tensor:
    """Max pooling with disjoint windows (``stride == kernel_size``)."""
    kh, kw = _pair(kernel_size)
    n, c, h, w = x.shape
    _check_disjoint(h, w, kh, kw)
    oh, ow = h // kh, w // kw
    windows = x.data.reshape(n, c, oh, kh, ow, kw)
    out = windows.max(axis=(3, 5))
    if vectorized_default() and not (is_grad_enabled() and x.requires_grad):
        # Inference: the argmax mask is backward-only state — skip it.
        return Tensor(out)
    # Mask of argmax positions for the backward pass; axes reordered so each
    # window's kh*kw elements are contiguous, then ties broken to the first
    # maximum per window (np.argmax returns the first maximal element, so
    # taking it over the raw window values matches the legacy
    # argmax-over-equality-mask selection bit for bit).
    flat = windows.transpose(0, 1, 2, 4, 3, 5).reshape(-1, kh * kw)
    first = np.argmax(flat, axis=1)
    tie = np.zeros(flat.shape, dtype=bool)
    tie[np.arange(tie.shape[0]), first] = True
    tie_mask = (
        tie.reshape(n, c, oh, ow, kh, kw).transpose(0, 1, 2, 4, 3, 5)
    )

    def backward_fn(grad: np.ndarray) -> None:
        g = grad[:, :, :, None, :, None] * tie_mask
        Tensor._accumulate(x, g.reshape(x.data.shape))

    return Tensor._make(out, (x,), backward_fn)


def avg_pool2d(x: Tensor, kernel_size) -> Tensor:
    """Average pooling with disjoint windows."""
    kh, kw = _pair(kernel_size)
    n, c, h, w = x.shape
    _check_disjoint(h, w, kh, kw)
    oh, ow = h // kh, w // kw
    windows = x.data.reshape(n, c, oh, kh, ow, kw)
    out = windows.mean(axis=(3, 5))
    scale = 1.0 / (kh * kw)

    def backward_fn(grad: np.ndarray) -> None:
        g = np.broadcast_to(
            grad[:, :, :, None, :, None] * scale, (n, c, oh, kh, ow, kw)
        )
        Tensor._accumulate(x, g.reshape(x.data.shape))

    return Tensor._make(out, (x,), backward_fn)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial dimensions: ``(N,C,H,W)`` -> ``(N,C)``."""
    return x.mean(axis=(2, 3))


# ---------------------------------------------------------------------- #
# Batch normalisation
# ---------------------------------------------------------------------- #

class BatchNormEvalCache:
    """Eval-mode batch-norm constants, cached between forwards.

    Eval-mode batch norm uses the frozen running statistics, so
    ``mean.reshape(1, C, 1, 1)`` and ``1/sqrt(var + eps)`` are loop
    invariants across every inference/attack forward — yet the legacy
    path rebuilt both (and wrapped ``inv_std`` in a throwaway
    :class:`Tensor` that joined the autograd graph) on each call.  The
    cache holds them as plain ndarrays — they can never require grad or
    allocate grad buffers — and self-invalidates by comparing snapshots
    of the running buffers, so in-place updates (training forwards,
    ``load_state_dict``) are picked up on the next eval forward.
    """

    __slots__ = ("_mean_src", "_var_src", "_eps", "mean4", "inv_std4")

    def __init__(self):
        self._mean_src: np.ndarray | None = None
        self._var_src: np.ndarray | None = None
        self._eps: float | None = None
        self.mean4: np.ndarray | None = None
        self.inv_std4: np.ndarray | None = None

    def constants(
        self, running_mean: np.ndarray, running_var: np.ndarray, eps: float
    ) -> tuple[np.ndarray, np.ndarray]:
        if (
            self._mean_src is not None
            and self._eps == eps
            and np.array_equal(self._mean_src, running_mean)
            and np.array_equal(self._var_src, running_var)
        ):
            return self.mean4, self.inv_std4
        c = running_mean.shape[0]
        self._mean_src = running_mean.copy()
        self._var_src = running_var.copy()
        self._eps = eps
        self.mean4 = self._mean_src.reshape(1, c, 1, 1)
        self.inv_std4 = 1.0 / np.sqrt(
            self._var_src.reshape(1, c, 1, 1) + eps
        )
        return self.mean4, self.inv_std4


def _batch_norm2d_eval_fused(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    eps: float,
    cache: BatchNormEvalCache | None,
) -> Tensor:
    """Fused eval-mode batch norm: one graph node instead of four.

    Forward and backward replicate the legacy elementwise chain
    ``((x - mean) * inv_std) * gamma + beta`` operation for operation,
    so outputs and gradients are byte-identical; only the intermediate
    graph nodes (and the recomputed constants) are gone.
    """
    c = x.shape[1]
    if cache is None:
        cache = BatchNormEvalCache()
    mean4, inv_std4 = cache.constants(running_mean, running_var, eps)
    gamma4 = gamma.data.reshape(1, c, 1, 1)
    xhat = (x.data - mean4) * inv_std4
    out = xhat * gamma4 + beta.data.reshape(1, c, 1, 1)

    def backward_fn(grad: np.ndarray) -> None:
        if gamma.requires_grad:
            Tensor._accumulate(
                gamma,
                _unbroadcast(grad * xhat, (1, c, 1, 1)).reshape(gamma.shape),
            )
        if beta.requires_grad:
            Tensor._accumulate(
                beta, _unbroadcast(grad, (1, c, 1, 1)).reshape(beta.shape)
            )
        if x.requires_grad:
            Tensor._accumulate(x, (grad * gamma4) * inv_std4)

    return Tensor._make(out, (x, gamma, beta), backward_fn)


def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
    eval_cache: BatchNormEvalCache | None = None,
) -> Tensor:
    """Per-channel batch norm over ``(N, C, H, W)``.

    In training mode the batch statistics are used (and the running buffers
    updated in place); in eval mode the running statistics are constants,
    so only the affine part participates in autograd.  ``eval_cache`` (see
    :class:`BatchNormEvalCache`) lets a layer reuse the eval constants
    across forwards on the vectorized path.
    """
    c = x.shape[1]
    if not training and vectorized_default():
        return _batch_norm2d_eval_fused(
            x, gamma, beta, running_mean, running_var, eps, eval_cache
        )
    gamma4 = gamma.reshape(1, c, 1, 1)
    beta4 = beta.reshape(1, c, 1, 1)
    if training:
        mean = x.mean(axis=(0, 2, 3), keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=(0, 2, 3), keepdims=True)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean.data.reshape(c)
        n = x.data.shape[0] * x.data.shape[2] * x.data.shape[3]
        unbiased = var.data.reshape(c) * (n / max(n - 1, 1))
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
        inv_std = (var + eps) ** -0.5
        xhat = centered * inv_std
    else:
        mean = running_mean.reshape(1, c, 1, 1)
        inv_std = 1.0 / np.sqrt(running_var.reshape(1, c, 1, 1) + eps)
        xhat = (x - mean) * Tensor(inv_std)
    return xhat * gamma4 + beta4


# ---------------------------------------------------------------------- #
# Softmax / losses
# ---------------------------------------------------------------------- #

def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_sum
    softmax_vals = np.exp(out)

    def backward_fn(grad: np.ndarray) -> None:
        g = grad - softmax_vals * grad.sum(axis=axis, keepdims=True)
        Tensor._accumulate(x, g)

    return Tensor._make(out, (x,), backward_fn)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(x, axis=axis).exp()


def _log_probs(logits: Tensor, targets: np.ndarray) -> np.ndarray:
    """Validated per-row log-probabilities shared by the CE variants."""
    targets = np.asarray(targets)
    if targets.ndim != 1:
        raise ValueError(
            f"targets must be 1-D class indices, got {targets.shape}"
        )
    n, k = logits.shape
    if targets.shape[0] != n:
        raise ValueError(f"{n} logits rows but {targets.shape[0]} targets")
    if n == 0:
        raise ValueError(
            "cross_entropy requires a non-empty batch (got 0 samples); "
            "the mean loss of an empty batch is undefined"
        )
    if targets.min() < 0 or targets.max() >= k:
        raise ValueError("target class index out of range")
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``(N, K)`` logits and integer targets."""
    targets = np.asarray(targets)
    log_probs = _log_probs(logits, targets)
    n = logits.shape[0]
    loss_value = -log_probs[np.arange(n), targets].mean()
    probs = np.exp(log_probs)

    def backward_fn(grad: np.ndarray) -> None:
        g = probs.copy()
        g[np.arange(n), targets] -= 1.0
        g *= float(grad) / n
        Tensor._accumulate(logits, g)

    return Tensor._make(np.asarray(loss_value, dtype=logits.dtype),
                        (logits,), backward_fn)


def cross_entropy_slice(
    logits: Tensor, targets: np.ndarray, normalizer: int
) -> tuple[Tensor, np.ndarray]:
    """Cross-entropy for one micro-batch slice of a larger batch.

    Returns ``(loss, per_sample)`` where ``per_sample`` holds each row's
    negative log-likelihood and ``loss`` backpropagates with the
    *full-batch* scaling ``1/normalizer`` — exactly the per-sample logit
    gradient the single-pass mean loss produces, so slice-wise backward
    passes accumulate the same contributions as one full pass.  The
    scalar ``loss`` value (``per_sample.sum() / normalizer``) is a slice
    partial; callers reconstruct the batch loss from the concatenated
    ``per_sample`` vectors (see
    :func:`repro.nn.train.loss_and_grads`).
    """
    if normalizer < 1:
        raise ValueError(f"normalizer must be >= 1, got {normalizer}")
    targets = np.asarray(targets)
    log_probs = _log_probs(logits, targets)
    n = logits.shape[0]
    per_sample = -log_probs[np.arange(n), targets]
    loss_value = per_sample.sum() / normalizer
    probs = np.exp(log_probs)

    def backward_fn(grad: np.ndarray) -> None:
        g = probs.copy()
        g[np.arange(n), targets] -= 1.0
        g *= float(grad) / normalizer
        Tensor._accumulate(logits, g)

    return (
        Tensor._make(np.asarray(loss_value, dtype=logits.dtype),
                     (logits,), backward_fn),
        per_sample,
    )


def dropout(x: Tensor, p: float, training: bool,
            rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout; identity when evaluating or ``p == 0``.

    Pass a seeded ``rng`` for reproducible masks; omitting it falls back
    to OS entropy with an :class:`repro.nn.seeding.UnseededRngWarning`
    (trial determinism depends on every random draw being seeded).
    """
    from repro.nn.seeding import fallback_rng

    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    rng = fallback_rng("functional.dropout", rng)
    mask = (rng.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)

    def backward_fn(grad: np.ndarray) -> None:
        Tensor._accumulate(x, grad * mask)

    return Tensor._make(x.data * mask, (x,), backward_fn)
