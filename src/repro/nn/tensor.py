"""Reverse-mode automatic differentiation over numpy arrays.

The paper's DNN experiments need exactly three capabilities from a deep
learning framework: forward inference, a scalar loss, and gradients of that
loss with respect to every weight (the BFA ranks bits by gradient).  This
module provides them from scratch — PyTorch is not available in the
reproduction environment.

Design: a :class:`Tensor` wraps a numpy array; every differentiable op builds
a node that remembers its parents and a closure that maps the node's output
gradient to parent-gradient contributions.  ``Tensor.backward()`` runs the
closures in reverse topological order.

Broadcasting follows numpy semantics; gradients are "unbroadcast" (summed
over broadcast axes) when flowing back to a smaller parent.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

import numpy as np

__all__ = ["Tensor", "Parameter", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = [True]


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED[-1]


def _as_array(data) -> np.ndarray:
    array = np.asarray(data)
    if array.dtype not in (np.float32, np.float64):
        array = array.astype(np.float32)
    return array


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast from ``shape``."""
    if grad.shape == shape:
        return grad
    # Remove extra leading axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autograd."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: tuple["Tensor", ...] = (),
        backward_fn: Callable[[np.ndarray], None] | None = None,
    ):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents = parents
        self._backward_fn = backward_fn

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helper
    # ------------------------------------------------------------------ #

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        parents = tuple(parents)
        needs_grad = is_grad_enabled() and any(p.requires_grad for p in parents)
        if not needs_grad:
            return Tensor(data)
        return Tensor(data, requires_grad=True, parents=parents,
                      backward_fn=backward_fn)

    @staticmethod
    def _accumulate(parent: "Tensor", grad: np.ndarray) -> None:
        if not parent.requires_grad:
            return
        grad = _unbroadcast(grad, parent.data.shape)
        if parent.grad is None:
            parent.grad = grad.astype(parent.data.dtype, copy=True)
        else:
            parent.grad += grad

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that requires no grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a "
                    f"scalar output, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        self.grad = np.asarray(grad, dtype=self.data.dtype)
        for node in reversed(topo):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #

    @staticmethod
    def _coerce(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward_fn(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad)
            Tensor._accumulate(other, grad)

        return self._make(out_data, (self, other), backward_fn)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward_fn(grad: np.ndarray) -> None:
            Tensor._accumulate(self, -grad)

        return self._make(-self.data, (self,), backward_fn)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward_fn(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad * other.data)
            Tensor._accumulate(other, grad * self.data)

        return self._make(out_data, (self, other), backward_fn)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        return self * other ** -1.0

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported")
        exponent = float(exponent)
        out_data = self.data ** exponent

        def backward_fn(grad: np.ndarray) -> None:
            Tensor._accumulate(
                self, grad * exponent * self.data ** (exponent - 1.0)
            )

        return self._make(out_data, (self,), backward_fn)

    # ------------------------------------------------------------------ #
    # Matrix multiply
    # ------------------------------------------------------------------ #

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        if self.ndim < 2 or other.ndim < 2:
            raise ValueError("matmul requires tensors with ndim >= 2")
        out_data = self.data @ other.data

        def backward_fn(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad @ other.data.swapaxes(-1, -2))
            Tensor._accumulate(other, self.data.swapaxes(-1, -2) @ grad)

        return self._make(out_data, (self, other), backward_fn)

    # ------------------------------------------------------------------ #
    # Reductions and shape ops
    # ------------------------------------------------------------------ #

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward_fn(grad: np.ndarray) -> None:
            g = grad
            if not keepdims and axis is not None:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            Tensor._accumulate(self, np.broadcast_to(g, self.data.shape))

        return self._make(out_data, (self,), backward_fn)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward_fn(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad.reshape(self.data.shape))

        return self._make(out_data, (self,), backward_fn)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward_fn(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad.transpose(inverse))

        return self._make(out_data, (self,), backward_fn)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward_fn(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            Tensor._accumulate(self, full)

        return self._make(out_data, (self,), backward_fn)

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward_fn(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad * mask)

        return self._make(out_data, (self,), backward_fn)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad * out_data)

        return self._make(out_data, (self,), backward_fn)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad / self.data)

        return self._make(out_data, (self,), backward_fn)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward_fn)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward_fn(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad * mask)

        return self._make(out_data, (self,), backward_fn)


class Parameter(Tensor):
    """A tensor registered as a trainable weight of a module."""

    __slots__ = ()

    def __init__(self, data):
        super().__init__(data, requires_grad=True)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape})"
