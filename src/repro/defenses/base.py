"""Defense-mechanism base machinery shared by the hardware baselines.

Hardware baselines observe DRAM activity through the controller's activate
hook, keep per-row activation counters that reset every refresh interval,
and react (swap / shuffle / refresh) when a row gets hot.  They also plug
into the hammer driver's ``tick()`` protocol, though most act directly from
the hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.address import RowAddress
from repro.dram.controller import MemoryController

__all__ = ["DefenseStats", "HookedDefense", "NoDefense"]


@dataclass
class DefenseStats:
    """Common counters across the baseline defenses.

    ``notes`` holds per-defense counters that do not fit the shared
    fields (RADAR's sweep/detection counts, a guard's corrections …).
    Scenario artifacts keep only scalar metrics per trial, so notes ride
    into artifacts through :meth:`as_metrics` (one scalar per counter)
    and into detail payloads through :meth:`to_json` — both paths
    survive ``repro merge`` because merging re-aggregates the same
    per-trial scalars.
    """

    reactions: int = 0           # swaps / shuffles / refreshes triggered
    rows_moved: int = 0
    skipped_for_budget: int = 0
    notes: dict[str, int] = field(default_factory=dict)

    def note(self, key: str, count: int = 1) -> None:
        """Bump one named counter."""
        self.notes[key] = self.notes.get(key, 0) + count

    def merge(self, other: "DefenseStats") -> "DefenseStats":
        """Accumulate another stats record into this one (in place)."""
        self.reactions += other.reactions
        self.rows_moved += other.rows_moved
        self.skipped_for_budget += other.skipped_for_budget
        for key, count in other.notes.items():
            self.note(key, count)
        return self

    def as_metrics(self, prefix: str = "") -> dict[str, float]:
        """Flatten every counter — notes included — to scalar metrics.

        This is the serialization-safe form: scenario metrics must be
        scalars, and the runner carries each scalar through
        ``per_trial_metrics``, the trial stream, and shard merging.
        """
        flat = {
            f"{prefix}reactions": float(self.reactions),
            f"{prefix}rows_moved": float(self.rows_moved),
            f"{prefix}skipped_for_budget": float(self.skipped_for_budget),
        }
        for key in sorted(self.notes):
            flat[f"{prefix}notes.{key}"] = float(self.notes[key])
        return flat

    def to_json(self) -> dict:
        """JSON form for detail payloads (notes kept as a mapping)."""
        return {
            "reactions": self.reactions,
            "rows_moved": self.rows_moved,
            "skipped_for_budget": self.skipped_for_budget,
            "notes": {key: self.notes[key] for key in sorted(self.notes)},
        }


class NoDefense:
    """The undefended baseline."""

    name = "none"

    def tick(self) -> None:
        return None


class HookedDefense:
    """Base class: per-row activation counting with per-``T_ref`` reset.

    Subclasses implement :meth:`_react` which fires when a row's activation
    count inside the current refresh interval reaches ``trigger_count``.
    """

    name = "hooked"

    def __init__(self, controller: MemoryController, trigger_fraction: float):
        if not 0.0 < trigger_fraction <= 1.0:
            raise ValueError(
                f"trigger_fraction must be in (0, 1], got {trigger_fraction}"
            )
        self.controller = controller
        self.trigger_count = max(
            1, int(controller.timing.t_rh * trigger_fraction)
        )
        self.stats = DefenseStats()
        self._counts: dict[RowAddress, int] = {}
        self._epoch = controller.refresh_epoch
        self._reacting = False  # a reaction's own commands must not re-trigger
        controller.register_activate_hook(self._on_activate)

    # ------------------------------------------------------------------ #
    # Hook plumbing
    # ------------------------------------------------------------------ #

    def _maybe_reset_epoch(self) -> None:
        if self.controller.refresh_epoch != self._epoch:
            self._epoch = self.controller.refresh_epoch
            self._counts.clear()
            self._on_new_epoch()

    def _on_new_epoch(self) -> None:
        """Subclass hook: refresh-interval budgets reset here."""

    def _on_activate(self, physical: RowAddress, time_ns: float, count: int) -> None:
        if self._reacting:
            return
        self._maybe_reset_epoch()
        total = self._counts.get(physical, 0) + count
        self._counts[physical] = total
        if total >= self.trigger_count:
            self._counts[physical] = 0
            self._reacting = True
            try:
                self._react(physical)
            finally:
                self._reacting = False

    def tick(self) -> None:
        self._maybe_reset_epoch()

    def close(self) -> None:
        """Detach from the controller; the defense stops observing.

        Idempotent.  Without this, a defense outlives its experiment as a
        live activate hook on a shared controller, still counting (and
        reacting to) every later activation.
        """
        self.controller.unregister_activate_hook(self._on_activate)

    def __enter__(self) -> "HookedDefense":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Subclass interface
    # ------------------------------------------------------------------ #

    def _react(self, hot_physical: RowAddress) -> None:
        raise NotImplementedError
