"""P-PIM (Zhou et al., DATE 2023 [29]): in-DRAM parallel counter defense.

P-PIM keeps its RowHammer counters *inside* DRAM (processing-in-memory
LUTs) instead of SRAM/CAM, trading 4.125 MB of DRAM capacity and 0.34% area
(Table 2) for zero fast-memory cost.  Functionally it is a counter-based
victim-refresh defense like the tracker family, with the counter
read-modify-write folded into the in-DRAM logic; the trigger is set early
because the in-DRAM counters are updated at row-buffer granularity.
"""

from __future__ import annotations

from repro.defenses.trackers import CounterBasedRefresh
from repro.dram.controller import MemoryController

__all__ = ["make_ppim"]


def make_ppim(controller: MemoryController) -> CounterBasedRefresh:
    """Functional P-PIM model: in-DRAM counters, early victim refresh."""
    return CounterBasedRefresh(controller, trigger_fraction=0.5, name="p-pim")
