"""Defense registry: named builders behind the ``Defense`` protocol.

Mirrors the scenario-registry idiom (`repro.experiments.registry`): a
:class:`DefenseSpec` describes one registered defense — a builder taking
a :class:`repro.defenses.protocol.DefenseContext` and returning a live
:class:`repro.defenses.protocol.Defense` — and the ``@defense`` decorator
registers it by name.  Deployments (``DefendedDeployment.build(
defense="radar")``), the ``tournament-matrix`` scenario, and ``repro
list --kind defenses`` all resolve defenses here.

``REPRO_DEFENSE_MODULES`` (comma-separated module names) names extra
modules to import for their registration side effects, so shard worker
subprocesses see dynamically registered defenses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.defenses.protocol import Defense, DefenseContext

__all__ = [
    "DefenseSpec",
    "defense",
    "register_defense",
    "unregister_defense",
    "get_defense",
    "defense_names",
    "iter_defenses",
    "build_defense",
]

_REGISTRY: dict[str, "DefenseSpec"] = {}


@dataclass
class DefenseSpec:
    """One registered defense.

    Attributes:
        name: Registry identifier (``radar``, ``dnn-defender`` …).
        build: ``(DefenseContext) -> Defense`` factory.
        title: One-line description (shown by ``repro list``).
        kind: Coarse mechanism class — ``"hardware"`` (controller
            hooks / swap engines), ``"behavioral"`` (stochastic block
            model), ``"software"`` (training-/run-time model hardening),
            or ``"detection"`` (detect-and-recover).
        cost: Relative build+attack cost hint (1.0 = an undefended
            cell); feeds the tournament's ``trial_cost`` scheduling
            hint.  Never affects results.
        tournament: Whether the defense is in the default
            ``tournament-matrix`` roster (training-time defenses are
            registered but opt-in — their builds fine-tune a model).
    """

    name: str
    build: Callable[[DefenseContext], Defense]
    title: str = ""
    kind: str = "software"
    cost: float = 1.0
    tournament: bool = True

    def __call__(self, context: DefenseContext) -> Defense:
        return self.build(context)


def register_defense(spec: DefenseSpec) -> DefenseSpec:
    """Add ``spec`` to the registry; duplicate names are an error."""
    if spec.name in _REGISTRY:
        raise ValueError(f"defense {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister_defense(name: str) -> None:
    """Remove a defense (tests registering throwaway defenses)."""
    _REGISTRY.pop(name, None)


def defense(
    name: str,
    *,
    title: str = "",
    kind: str = "software",
    cost: float = 1.0,
    tournament: bool = True,
) -> Callable[[Callable[[DefenseContext], Defense]], DefenseSpec]:
    """Decorator: register the wrapped builder as a named defense."""

    def wrap(fn: Callable[[DefenseContext], Defense]) -> DefenseSpec:
        return register_defense(
            DefenseSpec(
                name=name, build=fn, title=title, kind=kind, cost=cost,
                tournament=tournament,
            )
        )

    return wrap


def get_defense(name: str) -> DefenseSpec:
    """Resolve a defense by name; raise with the catalogue on miss."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"unknown defense {name!r}; registered defenses: {known}"
        ) from None


def defense_names() -> list[str]:
    """Sorted names of all registered defenses."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def iter_defenses(kind: str | None = None) -> Iterator[DefenseSpec]:
    """Iterate defenses in name order, optionally filtered by kind."""
    _ensure_builtins()
    for name in sorted(_REGISTRY):
        spec = _REGISTRY[name]
        if kind is None or spec.kind == kind:
            yield spec


def build_defense(name: str, context: DefenseContext) -> Defense:
    """Resolve + build in one call (the deployment/scenario entry point)."""
    return get_defense(name).build(context)


def _ensure_builtins() -> None:
    """Import the built-in defense registrations exactly once."""
    import importlib

    import repro.defenses.builtin  # noqa: F401  (registers on import)

    from repro.utils.env import env_str

    extra = env_str("REPRO_DEFENSE_MODULES", "")
    for module in filter(None, (m.strip() for m in extra.split(","))):
        importlib.import_module(module)
