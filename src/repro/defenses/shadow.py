"""SHADOW (Wi et al., HPCA 2023 [22]): intra-sub-array victim shuffling.

SHADOW is the strongest prior the paper compares against (Figs. 8a/8b,
Table 3): when an aggressor row gets hot, the *victim* neighbours are
remapped to spare "shadow" rows inside the same sub-array, which both
refreshes them (the move is an activation) and relocates them.  Because it
is victim-focused it survives the white-box attacker — the attacker must
restart hammering after every shuffle.

Two budgets bound it, both derived from the published design:

* a small pool of shadow rows per sub-array (its 0.16 MB DRAM capacity
  overhead in Table 2);
* a per-refresh-interval shuffle budget (its blast-radius/latency cost —
  the reason its Fig. 8b latency sits above DNN-Defender's).

When the shuffle budget is exhausted within one refresh interval, further
hot rows go unhandled — the leak that gives SHADOW a lower post-attack
accuracy than DNN-Defender in Table 3.

Each shuffle is a RowClone AAP issued through
``MemoryController.rowclone``, so the moves land in command traces and
are validated by the DDR :class:`repro.dram.TimingChecker` like any other
defense traffic (tested in ``tests/dram/test_timing_rules.py``).  Being a
:class:`HookedDefense`, a Shadow instance observes the controller until
``close()`` detaches it.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import HookedDefense
from repro.dram.address import RowAddress
from repro.dram.controller import MemoryController

__all__ = ["Shadow"]


class Shadow(HookedDefense):
    """Functional SHADOW model."""

    name = "shadow"

    def __init__(
        self,
        controller: MemoryController,
        trigger_fraction: float = 0.5,
        shadow_rows_per_subarray: int = 2,
        shuffles_per_tref: int | None = None,
        seed: int = 0,
    ):
        super().__init__(controller, trigger_fraction)
        if shadow_rows_per_subarray < 1:
            raise ValueError("need at least one shadow row per sub-array")
        self.rng = np.random.default_rng(seed)
        self.shadow_rows_per_subarray = shadow_rows_per_subarray
        geometry = controller.device.geometry
        if shuffles_per_tref is None:
            # Default budget: proportional to the sub-array count, the
            # published design's worst-case shuffle service rate.
            shuffles_per_tref = geometry.banks * geometry.subarrays_per_bank
        self.shuffles_per_tref = shuffles_per_tref
        self._shuffles_left = shuffles_per_tref
        # Shadow rows: dedicated spare slots per sub-array (the 0.16 MB DRAM
        # capacity overhead of Table 2 — unlike DNN-Defender's recycled
        # reserve).  Moving a victim vacates its old slot, which becomes the
        # next spare: a free-list cycle, so no authoritative data is ever
        # overwritten.
        self._spares: dict[tuple[int, int], list[RowAddress]] = {}

    def _on_new_epoch(self) -> None:
        self._shuffles_left = self.shuffles_per_tref

    def _spare_list(self, bank: int, subarray: int) -> list[RowAddress]:
        key = (bank, subarray)
        spares = self._spares.get(key)
        if spares is None:
            rows = self.controller.device.geometry.rows_per_subarray
            spares = [
                RowAddress(bank, subarray, rows - 1 - i)
                for i in range(self.shadow_rows_per_subarray)
            ]
            self._spares[key] = spares
        return spares

    def _react(self, hot_physical: RowAddress) -> None:
        """Shuffle both victim neighbours of the hot aggressor."""
        if self._shuffles_left <= 0:
            self.stats.skipped_for_budget += 1
            return
        self._shuffles_left -= 1
        ind = self.controller.indirection
        for victim in self.controller.device.mapper.neighbors(hot_physical):
            spares = self._spare_list(victim.bank, victim.subarray)
            if victim in spares:
                continue  # never shuffle a spare slot itself
            spare = spares.pop(0)
            # Move the victim's data into the spare row (one AAP: this
            # activation refreshes the victim), swap the mapping, and
            # recycle the vacated position as a spare.
            self.controller.rowclone(victim, spare, actor="defender")
            ind.swap(ind.logical(victim), ind.logical(spare))
            spares.append(victim)
            self.stats.rows_moved += 1
        self.stats.reactions += 1
