"""Randomized Row-Swap (RRS, Saileshwar et al., ASPLOS 2022 [18]).

Aggressor-focused: when a row's activation count reaches half the RowHammer
threshold, RRS swaps that row with a random row of the same bank, breaking
the spatial link between the aggressor *address* and the victim.  Against an
attacker who does not know the internal mapping this is strong; against the
paper's white-box attacker — who tracks the victim row and simply hammers
whatever row is physically adjacent — the swap is purposeless (Section 1),
which is why RRS's time-to-break collapses under the white-box model.

The swap is realised through the row buffer and the SRAM-resident Row
Indirection Table: two PSM-class row migrations (charged to the "defender"
actor) plus an indirection update.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import HookedDefense
from repro.dram.address import RowAddress
from repro.dram.controller import MemoryController

__all__ = ["RandomizedRowSwap"]


class RandomizedRowSwap(HookedDefense):
    """Functional RRS model."""

    name = "rrs"

    def __init__(
        self,
        controller: MemoryController,
        trigger_fraction: float = 0.5,
        seed: int = 0,
    ):
        super().__init__(controller, trigger_fraction)
        self.rng = np.random.default_rng(seed)

    def _random_row_in_bank(self, bank: int, avoid: RowAddress) -> RowAddress:
        geometry = self.controller.device.geometry
        while True:
            subarray = int(self.rng.integers(0, geometry.subarrays_per_bank))
            row = int(self.rng.integers(0, geometry.rows_per_subarray))
            candidate = RowAddress(bank, subarray, row)
            if candidate != avoid:
                return candidate

    def _react(self, hot_physical: RowAddress) -> None:
        """Swap the hot (aggressor) row with a random row in its bank."""
        ind = self.controller.indirection
        hot_logical = ind.logical(hot_physical)
        partner_physical = self._random_row_in_bank(
            hot_physical.bank, avoid=hot_physical
        )
        partner_logical = ind.logical(partner_physical)
        # Exchange the two rows' data through the row buffer (the RIT swap).
        data_hot = self.controller.device.read_row(hot_physical)
        data_partner = self.controller.device.read_row(partner_physical)
        self.controller.device.write_row(hot_physical, data_partner)
        self.controller.device.write_row(partner_physical, data_hot)
        self.controller.activate(hot_physical, actor="defender")
        self.controller.activate(partner_physical, actor="defender")
        ind.swap(hot_logical, partner_logical)
        self.stats.reactions += 1
        self.stats.rows_moved += 2
