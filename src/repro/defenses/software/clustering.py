"""Piece-wise clustering defense (He et al., CVPR 2020 [5]).

Fine-tunes the model with a penalty pulling each weight toward one of two
per-layer centres ``+-mean|W|``.  Clustered weights have no small-magnitude
outlier-prone values, which blunts the BFA's favourite move (sign-bit flips
on weights whose flipped value becomes a huge outlier) and raises the
flips-to-break count at a small clean-accuracy cost (Table 3: 42 flips,
90.02% clean vs. the baseline's 20 flips, 91.71%).
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.data import Dataset
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.nn.optim import SGD
from repro.nn.tensor import Tensor

__all__ = ["clustering_penalty", "finetune_with_clustering"]


def clustering_penalty(model: Module, lam: float) -> float:
    """Add the piece-wise clustering penalty's gradient to ``weight.grad``.

    Penalty per layer: ``lam * sum(min(|w - c|, |w + c|)^2)`` with
    ``c = mean|W|``.  Must be called *after* ``loss.backward()`` so the data
    gradient is already in place.  Returns the penalty value.
    """
    if lam < 0:
        raise ValueError(f"lam must be non-negative, got {lam}")
    total = 0.0
    for module in model.modules():
        if not isinstance(module, (Conv2d, Linear)):
            continue
        w = module.weight.data
        centre = float(np.abs(w).mean())
        target = np.where(w >= 0, centre, -centre)
        residual = w - target
        total += lam * float((residual**2).sum())
        grad = 2.0 * lam * residual
        if module.weight.grad is None:
            module.weight.grad = grad.astype(w.dtype)
        else:
            module.weight.grad += grad.astype(w.dtype)
    return total


def finetune_with_clustering(
    model: Module,
    dataset: Dataset,
    epochs: int = 3,
    lam: float = 1e-3,
    lr: float = 0.01,
    batch_size: int = 64,
    seed: int = 0,
) -> dict[str, list[float]]:
    """Fine-tune ``model`` with the clustering penalty; returns history."""
    rng = np.random.default_rng(seed)
    optimizer = SGD(model.parameters(), lr=lr, momentum=0.9)
    history: dict[str, list[float]] = {"loss": [], "penalty": []}
    n = dataset.x_train.shape[0]
    for _ in range(epochs):
        model.train()
        order = rng.permutation(n)
        losses, penalties = [], []
        for start in range(0, n, batch_size):
            idx = order[start:start + batch_size]
            optimizer.zero_grad()
            logits = model(Tensor(dataset.x_train[idx]))
            loss = F.cross_entropy(logits, dataset.y_train[idx])
            loss.backward()
            penalties.append(clustering_penalty(model, lam))
            optimizer.step()
            losses.append(loss.item())
        history["loss"].append(float(np.mean(losses)))
        history["penalty"].append(float(np.mean(penalties)))
    model.eval()
    return history
