"""Model-capacity defense (Rakin et al. [16]: "Model Capacity x16").

Bigger models dilute each individual weight's influence, so the same
accuracy damage needs more flips (Table 3: 49 flips at 16x capacity vs. 20
at baseline).  Parameter count of a convnet scales roughly with the square
of its width, so a capacity factor ``f`` maps to a width multiplier
``sqrt(f)``.
"""

from __future__ import annotations

import math

__all__ = ["width_scale_for_capacity"]


def width_scale_for_capacity(base_width_scale: float, capacity_factor: float) -> float:
    """Width multiplier achieving ``capacity_factor`` x the parameters."""
    if base_width_scale <= 0:
        raise ValueError("base_width_scale must be positive")
    if capacity_factor < 1:
        raise ValueError("capacity_factor must be >= 1")
    return base_width_scale * math.sqrt(capacity_factor)
