"""Software (training-time / run-time) BFA defenses compared in Table 3."""

from repro.defenses.software.binarize import (
    SignActivation,
    bake_binarization,
    binarize_ste,
    enable_weight_binarization,
)
from repro.defenses.software.capacity import width_scale_for_capacity
from repro.defenses.software.clustering import (
    clustering_penalty,
    finetune_with_clustering,
)
from repro.defenses.software.reconstruction import (
    ReconstructingExecutor,
    WeightReconstructionGuard,
)

__all__ = [
    "SignActivation",
    "bake_binarization",
    "binarize_ste",
    "enable_weight_binarization",
    "width_scale_for_capacity",
    "clustering_penalty",
    "finetune_with_clustering",
    "ReconstructingExecutor",
    "WeightReconstructionGuard",
]
