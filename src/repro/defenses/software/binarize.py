"""Binary-weight and binary-activation defenses (Table 3 rows [5], [16]).

Binarization defends against BFA by bounding the damage of any single flip:
a binary weight only has two states ``+-alpha``, so no bit flip can create
the huge outlier weights that make 8-bit BFA so efficient.  After
binarization-aware fine-tuning, every weight is ``+-alpha`` and quantizes to
``+-127``; the attacker's best move (sign-bit flip) changes a weight by
``~2 alpha`` instead of ``~128 scale``, so many more flips are needed —
the Table 3 trend (89 flips for binary weights, 1150 for RA-BNN, vs. 20 for
the 8-bit baseline).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = [
    "binarize_ste",
    "SignActivation",
    "enable_weight_binarization",
    "bake_binarization",
]


def binarize_ste(weight: Tensor) -> Tensor:
    """Straight-through binarization: forward ``sign(w) * mean|w|``,
    backward identity."""
    alpha = float(np.abs(weight.data).mean())
    if alpha == 0.0:
        alpha = 1.0
    out_data = np.where(weight.data >= 0, alpha, -alpha).astype(
        weight.data.dtype
    )

    def backward_fn(grad: np.ndarray) -> None:
        Tensor._accumulate(weight, grad)

    return Tensor._make(out_data, (weight,), backward_fn)


class SignActivation(Module):
    """Binary activation with a clipped straight-through estimator.

    Used by the RA-BNN-style defense: activations become ``+-1``; gradients
    pass through where ``|x| <= 1`` (the standard hard-tanh STE).
    """

    def forward(self, x: Tensor) -> Tensor:
        out_data = np.where(x.data >= 0, 1.0, -1.0).astype(x.data.dtype)
        mask = (np.abs(x.data) <= 1.0).astype(x.data.dtype)

        def backward_fn(grad: np.ndarray) -> None:
            Tensor._accumulate(x, grad * mask)

        return Tensor._make(out_data, (x,), backward_fn)


def enable_weight_binarization(model: Module) -> int:
    """Attach the STE binarizer to every conv/linear layer; returns count."""
    count = 0
    for module in model.modules():
        if isinstance(module, (Conv2d, Linear)):
            module.weight_transform = binarize_ste
            count += 1
    return count


def bake_binarization(model: Module) -> int:
    """Write binarized values into the weights and detach the transforms.

    Call after fine-tuning, before :class:`repro.nn.QuantizedModel`: the
    deployed integer weights then carry the binary ``+-alpha`` pattern
    (``+-127`` after symmetric quantization).
    """
    count = 0
    for module in model.modules():
        if isinstance(module, (Conv2d, Linear)) and module.weight_transform is not None:
            module.weight.data[...] = binarize_ste(module.weight).data
            module.weight_transform = None
            count += 1
    return count
