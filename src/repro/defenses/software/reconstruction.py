"""Weight-reconstruction defense (Li et al., DAC 2020 [11]).

Records per-layer magnitude bounds at deployment time and, at run time,
projects any weight that escaped its layer's historical range back to the
bound.  MSB flips on small weights — the BFA's highest-damage move —
produce magnitudes far outside the recorded range and get clamped, so the
attacker is forced onto many low-damage flips (Table 3: 79 flips to break
vs. the baseline's 20).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.executor import FlipExecutor
from repro.nn.quant import BitLocation, QuantizedModel

__all__ = ["WeightReconstructionGuard", "ReconstructingExecutor"]


class WeightReconstructionGuard:
    """Per-layer magnitude bounds + the projection step."""

    def __init__(self, qmodel: QuantizedModel, percentile: float = 99.5):
        if not 0.0 < percentile <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        self.qmodel = qmodel
        self.percentile = percentile
        self.bounds: list[int] = []
        for layer in qmodel.layers:
            magnitudes = np.abs(layer.weight_int.astype(np.int32))
            bound = int(np.percentile(magnitudes, percentile))
            self.bounds.append(max(bound, 1))
        self.corrections = 0

    def reconstruct(self) -> int:
        """Clamp out-of-range integer weights; returns weights corrected."""
        corrected = 0
        for layer, bound in zip(self.qmodel.layers, self.bounds):
            values = layer.weight_int.astype(np.int32)
            clipped = np.clip(values, -bound, bound)
            changed = int((clipped != values).sum())
            if changed:
                layer.weight_int = clipped.astype(np.int8)
                layer.version += 1  # invalidate weight-derived caches
                layer._sync_float()
                corrected += changed
        self.corrections += corrected
        return corrected


class ReconstructingExecutor:
    """Executor wrapper: runs reconstruction after every landed flip.

    This models the defense's periodic weight-integrity pass; wrapping at
    per-flip granularity is the defense's best case (tightest repair loop).
    """

    def __init__(self, inner: FlipExecutor, guard: WeightReconstructionGuard):
        self.inner = inner
        self.guard = guard

    def execute(self, location: BitLocation) -> bool:
        landed = self.inner.execute(location)
        if landed:
            self.guard.reconstruct()
        return landed
