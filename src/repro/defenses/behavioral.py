"""Behavioural block/deflect parameters of the competing swap defenses.

The logical (non-DRAM) attack path models RRS / SRS / SHADOW / P-PIM as a
:class:`repro.attacks.executor.BehavioralDefenseExecutor`: an intended
flip is blocked with ``block_prob`` (the defense relocated the aggressor
or victim in time) and a blocked hammer session still flips a *random*
bit with ``collateral_prob`` (the activations land next to relocated,
unrelated data).  ``BEHAVIORAL_DEFENSES`` carries the calibrated
probabilities shared by ``table3`` and ``sweep-defense-grid`` — the
values those committed artifacts were produced with, so they must not
change.  ``BEHAVIORAL_PARAMS`` extends the table with the registry-only
entries (P-PIM's victim-focused counters block nearly everything and
deflect nothing) without touching the shared trio.
"""

from __future__ import annotations

__all__ = ["BEHAVIORAL_DEFENSES", "BEHAVIORAL_PARAMS"]

# (block_prob, collateral_prob) per defense; shared by ``table3`` and
# ``sweep-defense-grid`` so the two scenarios model RRS/SRS/SHADOW
# identically.
BEHAVIORAL_DEFENSES: dict[str, tuple[float, float]] = {
    "RRS": (0.92, 0.6),
    "SRS": (0.92, 0.55),
    "SHADOW": (0.97, 0.3),
}

# Registry roster: the shared trio plus P-PIM (per-row counters refresh
# the victim before T_RH — high block rate, no deflection).
BEHAVIORAL_PARAMS: dict[str, tuple[float, float]] = {
    **BEHAVIORAL_DEFENSES,
    "P-PIM": (0.95, 0.0),
}
