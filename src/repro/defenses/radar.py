"""RADAR: run-time checksum detection + zero-out recovery (Li et al. [PAPERS]).

RADAR guards a deployed quantized network by checksumming the *most
significant bits* of weight groups: at deployment time every group of
``group_size`` int8 weights gets a signature over its top-2 bits (the
bits whose flips do BFA-scale damage); at run time a periodic detection
sweep recomputes the signatures and compares them to the golden copy.  A
mismatched group has been tampered with — recovery **zeroes the whole
group** (a ~``group_size``-weight dent in the network is negligible;
leaving a sign-flipped weight is not), which restores accuracy to near
clean levels against MSB-targeting attacks.

The defense is *detection-based*, not preventive: flips land, then get
caught on the next sweep.  Its blind spot is exactly what the smart-bfa
attacker exploits — flips confined to the unguarded low bit positions
never change a signature.

Detection latency is accounted through the DRAM timing layer: one sweep
reads every weight row once (``rows x t_rc_ns``) plus a per-group
compare cost, accumulated in ``detection_ns`` and surfaced through
``DefenseStats.notes``.  With a live memory controller the defense also
registers an activate hook so sweeps are scheduled by observed DRAM
activity; the hook is detached by ``close()`` (lint REP004/REP104).
"""

from __future__ import annotations

import numpy as np

from repro.defenses.protocol import Defense
from repro.nn.quant import QuantizedModel

__all__ = ["RadarDefense", "RadarExecutor"]

# Signatures live in a prime field so multi-bit tampering inside one
# group cannot cancel by wraparound in practice.
_SIG_MODULUS = 2_147_483_647  # 2**31 - 1 (Mersenne prime)
# Bit columns covered by the checksum: the sign bit and the top
# magnitude bit — the high-damage BFA targets.
_GUARDED_BITS = frozenset({6, 7})


class RadarExecutor:
    """Flip executor wrapper: the defense's clock is attack activity.

    Every attempted flip goes through ``inner`` untouched (RADAR never
    blocks — it detects), then advances the defense by one tick so the
    periodic sweep runs on the configured cadence.
    """

    def __init__(self, inner, defense: "RadarDefense"):
        self.inner = inner
        self.defense = defense

    def execute(self, location) -> bool:
        landed = self.inner.execute(location)
        self.defense.tick()
        return landed


class RadarDefense(Defense):
    """Checksum-based run-time detection with zero-out recovery."""

    name = "radar"

    def __init__(
        self,
        qmodel: QuantizedModel,
        group_size: int = 32,
        check_interval: int = 4,
        weights_per_row: int = 256,
        timing=None,
        controller=None,
        check_activations: int = 100_000,
    ):
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        if check_interval < 1:
            raise ValueError(
                f"check_interval must be >= 1, got {check_interval}"
            )
        super().__init__(qmodel)
        self.group_size = int(group_size)
        self.check_interval = int(check_interval)
        self.weights_per_row = int(weights_per_row)
        if timing is None:
            from repro.dram.timing import DDR4_DEFAULT

            timing = DDR4_DEFAULT
        self.timing = timing
        self.detection_ns = 0.0
        self._ticks = 0
        self._hook_activations = 0
        # Deployment-time golden signatures, one vector per layer.
        self._golden: list[np.ndarray] = [
            self._layer_signatures(i) for i in range(qmodel.num_layers)
        ]
        self.num_groups = int(sum(g.size for g in self._golden))
        self.stats.notes["checksum_groups"] = self.num_groups
        self._controller = controller
        if controller is not None:
            self.check_activations = int(check_activations)
            controller.register_activate_hook(self._on_activate)

    # ------------------------------------------------------------------ #
    # Signatures
    # ------------------------------------------------------------------ #

    def _msb_groups(self, layer_index: int) -> np.ndarray:
        """Top-2 bits of each weight byte, padded into (groups, size)."""
        layer = self.qmodel.layer(layer_index)
        msb = (
            layer.weight_int.reshape(-1).view(np.uint8) >> 6
        ).astype(np.int64)
        pad = (-msb.size) % self.group_size
        if pad:
            msb = np.concatenate([msb, np.zeros(pad, dtype=np.int64)])
        return msb.reshape(-1, self.group_size)

    def _layer_signatures(self, layer_index: int) -> np.ndarray:
        """Position-weighted MSB checksum of every group in one layer."""
        groups = self._msb_groups(layer_index)
        weights = np.arange(1, self.group_size + 1, dtype=np.int64)
        return ((groups + 1) * weights).sum(axis=1) % _SIG_MODULUS

    def _layer_signatures_reference(self, layer_index: int) -> np.ndarray:
        """Pure-Python signature recompute: the bench parity baseline."""
        layer = self.qmodel.layer(layer_index)
        values = [int(v) & 0xFF for v in layer.weight_int.reshape(-1)]
        pad = (-len(values)) % self.group_size
        values.extend([0] * pad)
        signatures = []
        for start in range(0, len(values), self.group_size):
            total = 0
            for offset in range(self.group_size):
                msb = values[start + offset] >> 6
                total += (msb + 1) * (offset + 1)
            signatures.append(total % _SIG_MODULUS)
        return np.asarray(signatures, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Detection sweep + recovery
    # ------------------------------------------------------------------ #

    def _charge_sweep_latency(self) -> None:
        """Account one full-model signature pass through the timing layer.

        Reading the weight array costs one row cycle per occupied DRAM
        row; comparing a group's signature costs one additional row
        cycle per 64 groups (signatures stream from a reserved row).
        """
        rows = -(-self.qmodel.total_weights // self.weights_per_row)
        compare_rows = -(-self.num_groups // 64)
        self.detection_ns += (rows + compare_rows) * self.timing.t_rc_ns

    def sweep(self, reference: bool = False) -> list[tuple[int, int]]:
        """One detection pass; returns mismatched ``(layer, group)`` pairs.

        ``reference=True`` recomputes signatures through the pure-Python
        path (bench parity check); results are identical by contract.
        """
        recompute = (
            self._layer_signatures_reference
            if reference else self._layer_signatures
        )
        mismatched: list[tuple[int, int]] = []
        for layer_index in range(self.qmodel.num_layers):
            fresh = recompute(layer_index)
            bad = np.nonzero(fresh != self._golden[layer_index])[0]
            mismatched.extend(
                (layer_index, int(group)) for group in bad
            )
        self._charge_sweep_latency()
        self.stats.note("sweeps")
        if mismatched:
            self.stats.note("detections", len(mismatched))
        self.stats.notes["detection_ns"] = int(round(self.detection_ns))
        return mismatched

    def _repair(self, mismatched: list[tuple[int, int]]) -> int:
        """Zero-out recovery: clear every weight of a tampered group."""
        zeroed = 0
        for layer_index, group in mismatched:
            layer = self.qmodel.layer(layer_index)
            start = group * self.group_size
            end = min(start + self.group_size, layer.num_weights)
            values = layer.weight_int.reshape(-1)
            span = values[start:end]
            zeroed += int(np.count_nonzero(span))
            span[:] = 0
            layer.version += 1  # invalidate weight-derived caches
            layer._sync_float()
            self._golden[layer_index][group] = self._layer_signatures(
                layer_index
            )[group]
        if zeroed:
            self.stats.note("weights_zeroed", zeroed)
        return zeroed

    def detect_and_recover(self) -> int:
        """One sweep followed by zero-out recovery of detected groups."""
        return self._repair(self.sweep())

    # ------------------------------------------------------------------ #
    # Protocol surface
    # ------------------------------------------------------------------ #

    def executor(self):
        from repro.attacks.executor import SoftwareFlipExecutor

        return RadarExecutor(SoftwareFlipExecutor(self.qmodel), self)

    def guarded_bit_positions(self) -> frozenset[int]:
        return _GUARDED_BITS

    def tick(self) -> None:
        self._ticks += 1
        if self._ticks % self.check_interval == 0:
            self.detect_and_recover()

    def recover(self) -> int:
        """Post-attack repair: a final unconditional detection sweep."""
        return self.detect_and_recover()

    def finalize(self):
        self.stats.notes["detection_ns"] = int(round(self.detection_ns))
        return self.stats

    # ------------------------------------------------------------------ #
    # Controller-hook scheduling (DRAM path)
    # ------------------------------------------------------------------ #

    def _on_activate(self, physical, time_ns: float, count: int) -> None:
        """Observed ACT stream drives the sweep cadence on the DRAM path."""
        self._hook_activations += count
        if self._hook_activations >= self.check_activations:
            self._hook_activations = 0
            self.detect_and_recover()

    def close(self) -> None:
        """Detach the activate hook; the defense stops observing."""
        if self._controller is not None:
            self._controller.unregister_activate_hook(self._on_activate)
            self._controller = None
