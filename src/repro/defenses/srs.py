"""Scalable and Secure Row-Swap (SRS, Woo et al. [23]).

SRS keeps RRS's aggressor-swap idea but reduces counter storage and swap
rate: fewer counters track only "crucial" rows, and the swap triggers later
(a higher fraction of the threshold), trading swap traffic for the same
security level against mapping-oblivious attackers.  Like RRS it is
aggressor-focused, so the white-box victim-tracking attacker of Section 3
walks straight through it.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.rrs import RandomizedRowSwap
from repro.dram.controller import MemoryController

__all__ = ["SecureRowSwap"]


class SecureRowSwap(RandomizedRowSwap):
    """Functional SRS model: RRS mechanics, sparser triggering."""

    name = "srs"

    def __init__(
        self,
        controller: MemoryController,
        trigger_fraction: float = 0.8,
        tracked_fraction: float = 0.5,
        seed: int = 0,
    ):
        super().__init__(controller, trigger_fraction=trigger_fraction,
                         seed=seed)
        if not 0.0 < tracked_fraction <= 1.0:
            raise ValueError(
                f"tracked_fraction must be in (0, 1], got {tracked_fraction}"
            )
        # SRS dedicates counters to a subset of rows; rows outside the
        # tracked set are sampled in probabilistically (threshold-breaker
        # style catch-up), modelled as a deterministic hash-based subset.
        self.tracked_fraction = tracked_fraction

    def _is_tracked(self, physical) -> bool:
        digest = hash((physical.bank, physical.subarray, physical.row, 0x5e5))
        return (digest % 1000) / 1000.0 < self.tracked_fraction

    def _react(self, hot_physical) -> None:
        if not self._is_tracked(hot_physical):
            self.stats.skipped_for_budget += 1
            return
        super()._react(hot_physical)
