"""Built-in ``@defense`` registrations.

Importing this module populates the defense registry with the ported
baselines (none / DNN-Defender / RRS / SRS / SHADOW / P-PIM), the
software defenses of Table 3 (reconstruction, binarize, clustering,
capacity), and RADAR.  Builders receive a
:class:`repro.defenses.protocol.DefenseContext`:

* with a live ``controller`` the swap/counter baselines attach their
  controller-hooked hardware model (detached again by ``close()``);
* without one they fall back to the behavioural block/deflect model the
  ``table3`` scenario calibrated, which is the tournament's logical
  attack path.
"""

from __future__ import annotations

from repro.defenses.behavioral import BEHAVIORAL_PARAMS
from repro.defenses.protocol import (
    BehavioralDefense,
    Defense,
    DefenseContext,
    HookedDefenseAdapter,
    ModelTransformDefense,
    ReconstructionDefense,
    SecuredBitsDefense,
    UndefendedDefense,
)
from repro.defenses.radar import RadarDefense
from repro.defenses.registry import defense

__all__ = []  # registration side effects only


def _require_dataset(context: DefenseContext, name: str):
    if context.dataset is None:
        raise ValueError(f"defense {name!r} requires a dataset to build")
    return context.dataset


def _behavioral(context: DefenseContext, name: str, hardware_factory) -> Defense:
    """Hardware hook model when a controller is present, else behavioural."""
    if context.controller is not None:
        return HookedDefenseAdapter(
            context.qmodel, hardware_factory(context)
        )
    block, collateral = BEHAVIORAL_PARAMS[name]
    return BehavioralDefense(
        context.qmodel, name.lower(), block_prob=block,
        collateral_prob=collateral, rng=context.rng(stream=7),
    )


@defense("none", title="undefended baseline (every flip lands)",
         kind="software", cost=1.0)
def _build_none(context: DefenseContext) -> Defense:
    return UndefendedDefense(context.qmodel)


@defense("dnn-defender",
         title="DNN-Defender: profiled rows secured by in-DRAM swaps",
         kind="hardware", cost=4.0)
def _build_dnn_defender(context: DefenseContext) -> Defense:
    """Profile vulnerable bits and secure their DRAM rows.

    Logical form of the paper's defense: the multi-round BFA profile
    picks the high-damage bits, row expansion secures everything
    sharing their rows, and flips on secured bits are blocked.  The
    profile goes through the on-disk cache when the trial context and
    preset name are supplied.
    """
    from repro.analysis.defense_eval import expand_bits_to_rows
    from repro.attacks.bfa import BfaConfig
    from repro.attacks.profile import profile_vulnerable_bits

    dataset = _require_dataset(context, "dnn-defender")
    rounds = int(context.param("profile_rounds", 4))
    attack_batch = int(context.param("attack_batch", 96))
    config = BfaConfig(max_iterations=8, exact_eval_top=4)
    x, y = dataset.attack_batch(attack_batch, context.rng())
    if context.trial is not None and context.preset_name is not None:
        profile = context.trial.profile(
            context.preset_name, context.qmodel, x, y,
            rounds=rounds, config=config,
            extra_key={
                "attack_batch": attack_batch,
                "seed": context.seed,
                "purpose": "defense-registry",
            },
        )
    else:
        profile = profile_vulnerable_bits(
            context.qmodel, x, y, rounds=rounds, config=config
        )
    secured = expand_bits_to_rows(context.qmodel, profile.all_bits)
    return SecuredBitsDefense(context.qmodel, secured)


@defense("rrs", title="Randomized Row-Swap (aggressor-focused)",
         kind="behavioral", cost=1.2)
def _build_rrs(context: DefenseContext) -> Defense:
    from repro.defenses.rrs import RandomizedRowSwap

    return _behavioral(
        context, "RRS",
        lambda c: RandomizedRowSwap(c.controller, seed=c.seed),
    )


@defense("srs", title="Scalable and Secure Row-Swap (sparser triggers)",
         kind="behavioral", cost=1.2)
def _build_srs(context: DefenseContext) -> Defense:
    from repro.defenses.srs import SecureRowSwap

    return _behavioral(
        context, "SRS",
        lambda c: SecureRowSwap(c.controller, seed=c.seed),
    )


@defense("shadow", title="SHADOW: victim shuffling to spare rows",
         kind="behavioral", cost=1.2)
def _build_shadow(context: DefenseContext) -> Defense:
    from repro.defenses.shadow import Shadow

    return _behavioral(
        context, "SHADOW",
        lambda c: Shadow(c.controller, seed=c.seed),
    )


@defense("p-pim", title="P-PIM: in-DRAM counters, early victim refresh",
         kind="behavioral", cost=1.2)
def _build_ppim(context: DefenseContext) -> Defense:
    from repro.defenses.ppim import make_ppim

    return _behavioral(context, "P-PIM", lambda c: make_ppim(c.controller))


@defense("radar",
         title="RADAR: MSB group checksums, periodic sweep, zero-out recovery",
         kind="detection", cost=1.5)
def _build_radar(context: DefenseContext) -> Defense:
    return RadarDefense(
        context.qmodel,
        group_size=int(context.param("radar_group_size", 32)),
        check_interval=int(context.param("radar_check_interval", 4)),
        timing=context.effective_timing(),
        controller=context.controller,
    )


@defense("reconstruction",
         title="weight reconstruction: percentile clamp after each flip",
         kind="software", cost=1.3)
def _build_reconstruction(context: DefenseContext) -> Defense:
    return ReconstructionDefense(
        context.qmodel,
        percentile=float(context.param("reconstruction_percentile", 99.0)),
    )


@defense("binarize",
         title="binary weights (STE fine-tune), flips bounded by alpha",
         kind="software", cost=12.0, tournament=False)
def _build_binarize(context: DefenseContext) -> Defense:
    from repro.defenses.software.binarize import (
        bake_binarization,
        enable_weight_binarization,
    )
    from repro.nn import fit
    from repro.nn.quant import QuantizedModel

    dataset = _require_dataset(context, "binarize")
    model = context.qmodel.model
    count = enable_weight_binarization(model)
    fit(
        model, dataset,
        epochs=int(context.param("binarize_epochs", 2)),
        batch_size=64, lr=0.01, seed=context.seed,
    )
    bake_binarization(model)
    model.eval()
    return ModelTransformDefense(
        QuantizedModel(model), "binarize",
        transform_notes={"binarized_tensors": count},
    )


@defense("clustering",
         title="weight clustering fine-tune (penalty towards +-mean|W|)",
         kind="software", cost=10.0, tournament=False)
def _build_clustering(context: DefenseContext) -> Defense:
    from repro.defenses.software.clustering import finetune_with_clustering
    from repro.nn.quant import QuantizedModel

    dataset = _require_dataset(context, "clustering")
    model = context.qmodel.model
    epochs = int(context.param("clustering_epochs", 1))
    finetune_with_clustering(
        model, dataset, epochs=epochs,
        lam=float(context.param("clustering_lambda", 5e-3)),
        lr=float(context.param("clustering_lr", 0.01)),
        seed=context.seed,
    )
    model.eval()
    return ModelTransformDefense(
        QuantizedModel(model), "clustering",
        transform_notes={"finetune_epochs": epochs},
    )


@defense("capacity",
         title="model capacity scaling (wider net, trained from scratch)",
         kind="software", cost=20.0, tournament=False)
def _build_capacity(context: DefenseContext) -> Defense:
    from repro.defenses.software.capacity import width_scale_for_capacity
    from repro.nn import fit, make_resnet20
    from repro.nn.quant import QuantizedModel

    dataset = _require_dataset(context, "capacity")
    base = float(context.param("capacity_base_width", 0.5))
    factor = float(context.param("capacity_factor", 4.0))
    epochs = int(context.param("capacity_epochs", 2))
    wide = make_resnet20(
        num_classes=int(dataset.num_classes),
        width_scale=width_scale_for_capacity(base, factor),
        seed=context.seed,
    )
    fit(wide, dataset, epochs=epochs, batch_size=64, lr=0.05,
        seed=context.seed)
    wide.eval()
    return ModelTransformDefense(
        QuantizedModel(wide), "capacity",
        transform_notes={"train_epochs": epochs},
    )
