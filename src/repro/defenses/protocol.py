"""The unified ``Defense`` protocol behind the ``@defense`` registry.

Every defense — hardware swap engines, behavioural models, software
guards, RADAR — presents the same lifecycle to deployments and to the
``tournament-matrix`` scenario:

* **build from a deployment context** — a registered builder receives a
  :class:`DefenseContext` (victim model, dataset, seed, and optionally a
  live memory controller) and returns a :class:`Defense`.
* **attack surface** — :meth:`Defense.executor` yields the
  :class:`repro.attacks.executor.FlipExecutor` an attacker's flips go
  through; hardware-context defenses instead react from controller hooks
  while the DRAM path drives flips via ``HammerExecutor``.
* **``tick()``** — the hammer driver's per-window defense hook.
* **``close()`` / ``__exit__``** — hook detach (lint rules REP004/REP104:
  a defense that registers controller hooks must be detachable, or it
  outlives its experiment as a live observer).
* **``recover()``** — optional post-attack repair (RADAR's zero-out,
  the reconstruction guard's clamp); returns corrected weights.
* **``finalize()``** — sync executor counters into :class:`DefenseStats`
  (blocked / landed / collateral plus per-defense ``notes``).

Attackers interrogate defenses through :meth:`Defense.protected_bits`
(bits the defense pins, the adaptive attacker's skip set) and
:meth:`Defense.guarded_bit_positions` (bit *columns* covered by an
integrity check — smart-bfa avoids these to stay undetected).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro.defenses.base import DefenseStats

if TYPE_CHECKING:  # imported lazily to keep the defense layer light
    from repro.dram.controller import MemoryController
    from repro.dram.timing import TimingParams
    from repro.nn.data import Dataset
    from repro.nn.quant import BitLocation, QuantizedModel

__all__ = [
    "DefenseContext",
    "Defense",
    "UndefendedDefense",
    "SecuredBitsDefense",
    "BehavioralDefense",
    "HookedDefenseAdapter",
    "ModelTransformDefense",
    "ReconstructionDefense",
]


@dataclass
class DefenseContext:
    """Everything a registered defense builder may consume.

    The logical (tournament) path supplies ``qmodel`` + ``dataset`` +
    ``seed``; the DRAM path additionally supplies the live
    ``controller`` (whose timing parameters then drive latency
    accounting).  ``trial`` and ``preset_name``, when present, let
    profile-based defenses reuse the on-disk profile cache.
    """

    qmodel: "QuantizedModel"
    dataset: "Dataset | None" = None
    seed: int = 0
    params: Mapping[str, Any] = field(default_factory=dict)
    controller: "MemoryController | None" = None
    timing: "TimingParams | None" = None
    trial: Any = None              # repro.experiments.runner.TrialContext
    preset_name: str | None = None

    def rng(self, stream: int = 0) -> np.random.Generator:
        """Independent seeded generator for sub-component ``stream``."""
        return np.random.default_rng(self.seed + stream)

    def param(self, key: str, default: Any = None) -> Any:
        return self.params.get(key, default)

    def effective_timing(self) -> "TimingParams":
        """Timing parameters for latency accounting (controller's, the
        explicit override, or the DDR4 defaults)."""
        if self.timing is not None:
            return self.timing
        if self.controller is not None:
            return self.controller.timing
        from repro.dram.timing import DDR4_DEFAULT

        return DDR4_DEFAULT


class Defense:
    """Base class of the unified defense protocol.

    Subclasses own a victim ``qmodel`` (possibly a transformed
    replacement of the context's model — capacity/binarize builders
    deploy a different network) and a :class:`DefenseStats` record.
    """

    name = "?"

    def __init__(self, qmodel: "QuantizedModel"):
        self.qmodel = qmodel
        self.stats = DefenseStats()

    # -- attack surface ------------------------------------------------- #

    def executor(self):
        """The :class:`FlipExecutor` attacker flips are attempted through.

        Hardware-context defenses (controller hooks) do not expose a
        logical executor — the DRAM path drives flips through
        ``HammerExecutor`` instead.
        """
        raise NotImplementedError(
            f"defense {self.name!r} has no logical flip executor"
        )

    def protected_bits(self) -> "frozenset[BitLocation]":
        """Bits the defense pins — the adaptive attacker's skip set."""
        return frozenset()

    def guarded_bit_positions(self) -> frozenset[int]:
        """Bit columns (0..7) covered by an integrity check.

        A detection-evading attacker (smart-bfa) avoids flipping these
        positions entirely; an empty set means flips are invisible to
        the defense's checks only by chance.
        """
        return frozenset()

    # -- lifecycle ------------------------------------------------------ #

    def tick(self) -> None:
        """Per-hammer-window hook (the driver's ``TickingDefense``)."""
        return None

    def recover(self) -> int:
        """Post-attack repair; returns the number of corrected weights."""
        return 0

    def finalize(self) -> DefenseStats:
        """Sync live executor counters into :attr:`stats`; return it."""
        return self.stats

    def close(self) -> None:
        """Detach hooks / release observers.  Idempotent."""
        return None

    def __enter__(self) -> "Defense":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class UndefendedDefense(Defense):
    """``none``: every requested flip lands."""

    name = "none"

    def __init__(self, qmodel: "QuantizedModel"):
        super().__init__(qmodel)
        from repro.attacks.executor import SoftwareFlipExecutor

        self._executor = SoftwareFlipExecutor(qmodel)

    def executor(self):
        return self._executor

    def finalize(self) -> DefenseStats:
        self.stats.notes["landed"] = self._executor.flips_performed
        return self.stats


class SecuredBitsDefense(Defense):
    """Secured-bit-set defense (DNN-Defender's logical guarantee).

    Flips on secured bits are blocked — the defender swap-refreshes the
    victim row inside every hammer window — everything else lands.
    """

    name = "dnn-defender"

    def __init__(
        self, qmodel: "QuantizedModel", secured_bits: "set[BitLocation]"
    ):
        super().__init__(qmodel)
        from repro.attacks.executor import LogicalDefenseExecutor

        self._secured = frozenset(secured_bits)
        self._executor = LogicalDefenseExecutor(qmodel, set(secured_bits))

    def executor(self):
        return self._executor

    def protected_bits(self) -> "frozenset[BitLocation]":
        return self._secured

    def finalize(self) -> DefenseStats:
        self.stats.reactions = self._executor.blocked
        self.stats.notes["blocked"] = self._executor.blocked
        self.stats.notes["landed"] = self._executor.flips_performed
        self.stats.notes["secured_bits"] = len(self._secured)
        return self.stats


class BehavioralDefense(Defense):
    """Stochastic block-and-deflect model (RRS / SRS / SHADOW / P-PIM)."""

    def __init__(
        self,
        qmodel: "QuantizedModel",
        name: str,
        block_prob: float,
        collateral_prob: float,
        rng: np.random.Generator,
    ):
        super().__init__(qmodel)
        from repro.attacks.executor import BehavioralDefenseExecutor

        self.name = name
        self._executor = BehavioralDefenseExecutor(
            qmodel, block_prob=block_prob,
            collateral_prob=collateral_prob, rng=rng,
        )

    def executor(self):
        return self._executor

    def finalize(self) -> DefenseStats:
        self.stats.reactions = self._executor.blocked
        self.stats.notes["blocked"] = self._executor.blocked
        self.stats.notes["landed"] = self._executor.flips_performed
        self.stats.notes["collateral_flips"] = self._executor.collateral_flips
        return self.stats


class HookedDefenseAdapter(Defense):
    """Protocol adapter over a controller-hooked hardware baseline.

    Wraps a :class:`repro.defenses.base.HookedDefense` instance (RRS,
    SRS, Shadow, the counter trackers, P-PIM) — built only when the
    context carries a live controller.  ``close()`` forwards to the
    inner hook detach, so the REP004/REP104 attach/detach contract is
    honoured through the adapter.
    """

    def __init__(self, qmodel: "QuantizedModel", inner):
        super().__init__(qmodel)
        self.inner = inner
        self.name = inner.name
        self.stats = inner.stats  # share the live counters

    def tick(self) -> None:
        self.inner.tick()

    def finalize(self) -> DefenseStats:
        return self.inner.stats

    def close(self) -> None:
        self.inner.close()


class ModelTransformDefense(Defense):
    """Training-time defense: the deployed model *is* the defense.

    Binarization, weight clustering, and capacity scaling do their work
    before deployment; at attack time every flip lands (software
    executor) — the hardened weight distribution is what limits the
    damage.  ``transform_notes`` records what the build did (weights
    binarized, epochs of fine-tune, capacity factor …).
    """

    def __init__(
        self,
        qmodel: "QuantizedModel",
        name: str,
        transform_notes: dict[str, int] | None = None,
    ):
        super().__init__(qmodel)
        from repro.attacks.executor import SoftwareFlipExecutor

        self.name = name
        self._executor = SoftwareFlipExecutor(qmodel)
        for key, value in (transform_notes or {}).items():
            self.stats.notes[key] = int(value)

    def executor(self):
        return self._executor

    def finalize(self) -> DefenseStats:
        self.stats.notes["landed"] = self._executor.flips_performed
        return self.stats


class ReconstructionDefense(Defense):
    """Run-time weight-reconstruction guard on the new protocol.

    Every landed flip is followed by a percentile-bound clamp of
    outlier weights; :meth:`recover` runs one final reconstruction
    pass (the post-attack repair step).
    """

    name = "reconstruction"

    def __init__(self, qmodel: "QuantizedModel", percentile: float = 99.0):
        super().__init__(qmodel)
        from repro.attacks.executor import SoftwareFlipExecutor
        from repro.defenses.software.reconstruction import (
            ReconstructingExecutor,
            WeightReconstructionGuard,
        )

        self.guard = WeightReconstructionGuard(qmodel, percentile=percentile)
        self._inner = SoftwareFlipExecutor(qmodel)
        self._executor = ReconstructingExecutor(self._inner, self.guard)

    def executor(self):
        return self._executor

    def recover(self) -> int:
        corrected = self.guard.reconstruct()
        self.stats.note("recovered_weights", corrected)
        return corrected

    def finalize(self) -> DefenseStats:
        self.stats.notes["landed"] = self._inner.flips_performed
        self.stats.notes["corrections"] = self.guard.corrections
        return self.stats
