"""Counter-based victim-refresh mitigations (Table 2's tracker family).

Graphene, TWiCe, Hydra, counter-per-row and Counter Tree all share one
functional behaviour — count activations, proactively refresh the victim
neighbours when an aggressor gets hot — and differ in *where* the counters
live and how much they cost (Table 2).  :class:`CounterBasedRefresh`
implements the shared behaviour; the factory functions pin each proposal's
trigger point and identity.  These defenses are effective even against the
white-box attacker (refreshing victims is victim-focused); the paper's case
against them is their latency/energy/storage overhead, which
:mod:`repro.analysis.overhead` quantifies.
"""

from __future__ import annotations

from repro.defenses.base import HookedDefense
from repro.dram.address import RowAddress
from repro.dram.controller import MemoryController

__all__ = [
    "CounterBasedRefresh",
    "make_graphene",
    "make_twice",
    "make_hydra",
    "make_counter_per_row",
    "make_counter_tree",
]


class CounterBasedRefresh(HookedDefense):
    """Refresh both victim neighbours when an aggressor row crosses its
    trigger count."""

    def __init__(
        self,
        controller: MemoryController,
        trigger_fraction: float = 0.5,
        name: str = "counter",
    ):
        super().__init__(controller, trigger_fraction)
        self.name = name

    def _react(self, hot_physical: RowAddress) -> None:
        for victim in self.controller.device.mapper.neighbors(hot_physical):
            # A plain activation recharges the victim's cells.
            self.controller.activate(victim, actor="defender")
        self.stats.reactions += 1


def make_graphene(controller: MemoryController) -> CounterBasedRefresh:
    """Graphene [13]: Misra-Gries tables in CAM/SRAM, early trigger."""
    return CounterBasedRefresh(controller, trigger_fraction=0.5,
                               name="graphene")


def make_twice(controller: MemoryController) -> CounterBasedRefresh:
    """TWiCe [10]: time-window counters, conservative trigger."""
    return CounterBasedRefresh(controller, trigger_fraction=0.5, name="twice")


def make_hydra(controller: MemoryController) -> CounterBasedRefresh:
    """Hydra [14]: hybrid SRAM filter + DRAM-resident counters."""
    return CounterBasedRefresh(controller, trigger_fraction=0.5, name="hydra")


def make_counter_per_row(controller: MemoryController) -> CounterBasedRefresh:
    """One dedicated counter per row: exact tracking, huge storage.

    Exact counting permits a late trigger; 0.75 leaves margin for the
    command-burst granularity the controller issues activations at.
    """
    return CounterBasedRefresh(controller, trigger_fraction=0.75,
                               name="counter-per-row")


def make_counter_tree(controller: MemoryController) -> CounterBasedRefresh:
    """Counter trees [21]: shared counters, earlier (pessimistic) trigger."""
    return CounterBasedRefresh(controller, trigger_fraction=0.25,
                               name="counter-tree")
