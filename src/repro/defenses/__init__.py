"""Baseline RowHammer mitigations and software BFA defenses."""

from repro.defenses import software
from repro.defenses.base import DefenseStats, HookedDefense, NoDefense
from repro.defenses.ppim import make_ppim
from repro.defenses.rrs import RandomizedRowSwap
from repro.defenses.shadow import Shadow
from repro.defenses.srs import SecureRowSwap
from repro.defenses.trackers import (
    CounterBasedRefresh,
    make_counter_per_row,
    make_counter_tree,
    make_graphene,
    make_hydra,
    make_twice,
)

__all__ = [
    "software",
    "DefenseStats",
    "HookedDefense",
    "NoDefense",
    "make_ppim",
    "RandomizedRowSwap",
    "Shadow",
    "SecureRowSwap",
    "CounterBasedRefresh",
    "make_counter_per_row",
    "make_counter_tree",
    "make_graphene",
    "make_hydra",
    "make_twice",
]
