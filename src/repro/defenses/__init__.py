"""Baseline RowHammer mitigations, software BFA defenses, and the
registry-backed ``Defense`` protocol (``@defense``)."""

from repro.defenses import software
from repro.defenses.base import DefenseStats, HookedDefense, NoDefense
from repro.defenses.behavioral import BEHAVIORAL_DEFENSES, BEHAVIORAL_PARAMS
from repro.defenses.ppim import make_ppim
from repro.defenses.protocol import (
    BehavioralDefense,
    Defense,
    DefenseContext,
    HookedDefenseAdapter,
    ModelTransformDefense,
    ReconstructionDefense,
    SecuredBitsDefense,
    UndefendedDefense,
)
from repro.defenses.radar import RadarDefense, RadarExecutor
from repro.defenses.registry import (
    DefenseSpec,
    build_defense,
    defense,
    defense_names,
    get_defense,
    iter_defenses,
    register_defense,
    unregister_defense,
)
from repro.defenses.rrs import RandomizedRowSwap
from repro.defenses.shadow import Shadow
from repro.defenses.srs import SecureRowSwap
from repro.defenses.trackers import (
    CounterBasedRefresh,
    make_counter_per_row,
    make_counter_tree,
    make_graphene,
    make_hydra,
    make_twice,
)

__all__ = [
    "software",
    "DefenseStats",
    "HookedDefense",
    "NoDefense",
    "BEHAVIORAL_DEFENSES",
    "BEHAVIORAL_PARAMS",
    "Defense",
    "DefenseContext",
    "DefenseSpec",
    "BehavioralDefense",
    "HookedDefenseAdapter",
    "ModelTransformDefense",
    "ReconstructionDefense",
    "SecuredBitsDefense",
    "UndefendedDefense",
    "RadarDefense",
    "RadarExecutor",
    "build_defense",
    "defense",
    "defense_names",
    "get_defense",
    "iter_defenses",
    "register_defense",
    "unregister_defense",
    "make_ppim",
    "RandomizedRowSwap",
    "Shadow",
    "SecureRowSwap",
    "CounterBasedRefresh",
    "make_counter_per_row",
    "make_counter_tree",
    "make_graphene",
    "make_hydra",
    "make_twice",
]
