"""DNN-Defender reproduction: victim-focused in-DRAM RowHammer defense.

Reproduction of Zhou, Ahmed, Rakin & Angizi, "DNN-Defender: A Victim-Focused
In-DRAM Defense Mechanism for Taming Adversarial Weight Attack on DNNs"
(DAC 2024, arXiv:2305.08034).

Sub-packages:
    ``repro.dram``     -- command-level DRAM + RowHammer simulator
    ``repro.nn``       -- from-scratch numpy DNN framework + 8-bit quantization
    ``repro.mapping``  -- weight-to-DRAM placement ("mapping file")
    ``repro.attacks``  -- BFA, random flips, adaptive attacks, hammer driver
    ``repro.core``     -- DNN-Defender: swaps, pipelining, priority protection
    ``repro.defenses`` -- RRS/SRS/SHADOW/trackers + software defenses
    ``repro.analysis`` -- Table 2 / Fig. 8 analytics + experiment harnesses
    ``repro.presets``  -- trained model/dataset recipes used by experiments
    ``repro.experiments`` -- scenario registry, parallel runner, preset cache

Experiments are driven through the scenario registry — see
``python -m repro list`` or :func:`repro.experiments.run_scenario`.
"""

from repro import analysis, attacks, core, defenses, dram, mapping, nn, presets, utils
from repro import experiments
from repro.experiments import (
    PresetCache,
    Scenario,
    ScenarioResult,
    get_scenario,
    run_scenario,
    scenario_names,
    write_artifact,
)

__version__ = "1.1.0"

__all__ = [
    "analysis",
    "attacks",
    "core",
    "defenses",
    "dram",
    "experiments",
    "mapping",
    "nn",
    "presets",
    "utils",
    "PresetCache",
    "Scenario",
    "ScenarioResult",
    "get_scenario",
    "run_scenario",
    "scenario_names",
    "write_artifact",
    "__version__",
]
