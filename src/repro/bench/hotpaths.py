"""Hot-path microbenchmarks: the data behind ``python -m repro bench``.

Each benchmark times one profiled hot path in two functionally identical
variants — the optimized fast path (``after``) and the legacy slow path
(``before``), which the code keeps as a verifiable fallback:

* ``sync_post_window`` — post-hammer-window model sync: incremental
  dirty-row reload vs the full re-read of every weight row.
* ``bfa_scoring`` — one BFA candidate-selection sweep over all layers:
  masked ``argpartition`` top-k with cached bit-deltas vs full argsort
  plus a Python rank scan.
* ``forward_backward`` — one ``loss_and_grads`` pass (the
  gradient-dominated core of every BFA iteration) with the vectorized
  ``nn.functional`` kernels vs the legacy per-``(kh, kw)``-loop kernels
  (``REPRO_NN_VECTORIZED=0``); loss and every parameter gradient must be
  byte-identical.  The full suite runs the sweep-scale attack batch.
* ``bfa_iteration`` — one full BFA ``_select_flip`` (gradients + ranking
  + exact evaluation): legacy kernels + argsort scoring vs vectorized
  kernels + fast scoring (the complete pre-/post-optimization stacks).
* ``hammer_window`` — one single-bit hammer window through the memory
  controller with the controller fast path on vs off.
* ``multi_bit_window`` — realising a multi-bit flip set (several target
  bits per victim row, the T-BFA regime): per-bit sequential windows
  separated by a refresh (the only schedule under which the sequential
  path lands same-row multi-bit sets — a discharged cell cannot flip
  again within one refresh interval) vs the row-batched
  ``attempt_flips`` path sharing one window and one model sync per row.
* ``fig6_trial`` — one full ``fig6`` scenario trial (the pipelined swap
  chain) with the controller fast path on vs off.
* ``sweep_trial`` — one full ``sweep-hammer-rate`` trial (a T_RH grid of
  functional defender runs), fast path on vs off; tracks per-trial
  throughput (``trials_per_s``) at sweep scale.
* ``straggler_sweep`` — wall-clock of a sharded sweep whose expensive
  trials all sit on one stride residue (the placement that made the old
  static strided manifests hand every straggler to the same worker),
  scheduled as the faithfully reproduced legacy static schedule
  (``ShardedBackend(static=True)``) vs small work-stealing leases;
  tracks end-to-end sweep throughput (``trials_per_s``) under load
  imbalance.
* ``radar_detection_sweep`` — one full-model RADAR checksum sweep:
  vectorized per-layer signature recompute vs the pure-Python serial
  reference; parity demands identical signatures and identical
  mismatched-group lists over a tampered model.
* ``tournament_trial`` — one tournament-matrix cell (build the RADAR
  defense, run smart-bfa through its executor, recover, collect stats)
  with the vectorized ``nn.functional`` kernels vs the legacy serial
  kernels (``REPRO_NN_VECTORIZED=0``); parity compares the full cell
  metric payload.
* ``defended_vs_undefended`` — one hammer window with DNN-Defender
  ticking vs undefended (an overhead measurement, not a before/after).
* ``timing_checker`` — one hammer window with an audit-mode
  ``TimingChecker`` and a full ``CommandTrace`` attached vs unobserved
  (the command-observer overhead; parity asserts the observers leave the
  command stream byte-identical and timing-legal).

Every before/after pair is parity-checked during the run: the two
variants must produce identical functional results, and the recorded
``parity`` flag in the JSON payload asserts that they did.  Results are
persisted as ``BENCH_hotpaths.json`` through
:func:`repro.experiments.artifacts.write_bench_artifact`.

Models are built untrained from seeded initializers so the suite never
depends on the preset cache (CI-safe); timing hot paths does not require
trained weights.
"""

from __future__ import annotations

import contextlib
import os
import platform
import sys
import time
from typing import Callable

import numpy as np

from repro.attacks.bfa import BfaConfig, BitFlipAttack
from repro.attacks.hammer import RowHammerAttacker
from repro.core.defender import DNNDefender
from repro.dram import (
    CommandTrace,
    DramDevice,
    DramGeometry,
    MemoryController,
    TimingChecker,
    TimingParams,
    stats_payload,
)
from repro.mapping import build_protection_plan, place_model
from repro.nn import QuantizedModel, make_resnet20
from repro.nn.data import cifar10_like
from repro.nn.quant import BitLocation
from repro.nn.train import loss_and_grads
from repro.utils.env import env_str
from repro.utils.io import atomic_write_text

__all__ = ["HOTPATH_BENCHMARKS", "run_hotpath_suite", "format_suite"]

_GEOMETRY = DramGeometry(
    banks=4, subarrays_per_bank=8, rows_per_subarray=64, row_bytes=256
)


# ---------------------------------------------------------------------- #
# Harness helpers
# ---------------------------------------------------------------------- #

def _stats(times_s: list[float]) -> dict:
    array = np.asarray(times_s, dtype=float) * 1e3
    return {
        "median_ms": float(np.median(array)),
        "p95_ms": float(np.percentile(array, 95)),
    }


@contextlib.contextmanager
def _env_override(var: str, value: str):
    """Set one environment variable for the duration of a bench variant."""
    saved = env_str(var)
    os.environ[var] = value
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = saved


def _timed(fn: Callable[[], object], reps: int, warmup: int = 1) -> list[float]:
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return times


def _entry(name, description, reps, variants, parity, ratio_key="speedup"):
    keys = list(variants)
    ratio = (
        variants[keys[0]]["median_ms"] / variants[keys[1]]["median_ms"]
        if variants[keys[1]]["median_ms"] > 0 else float("inf")
    )
    return {
        "name": name,
        "description": description,
        "reps": reps,
        "variants": variants,
        ratio_key: round(ratio, 2),
        "parity": bool(parity),
    }


def _bench_model(seed: int = 0, width_scale: float = 0.5) -> QuantizedModel:
    """Seeded, untrained victim model (hot paths do not need training)."""
    return QuantizedModel(
        make_resnet20(num_classes=10, width_scale=width_scale, seed=seed)
    )


def _bench_layout(qmodel: QuantizedModel, fast_path: bool, t_rh: int = 1000):
    controller = MemoryController(
        DramDevice(_GEOMETRY), TimingParams(t_rh=t_rh), fast_path=fast_path
    )
    layout = place_model(qmodel, controller, reserved_rows=2, seed=0)
    return controller, layout


def _attack_batch(batch: int = 64, seed: int = 0):
    dataset = cifar10_like(n_train=64, n_test=256, seed=seed)
    return dataset.attack_batch(batch, np.random.default_rng(seed))


# ---------------------------------------------------------------------- #
# Benchmarks
# ---------------------------------------------------------------------- #

def bench_sync_post_window(quick: bool) -> dict:
    """Post-window model<->DRAM sync: incremental vs full re-read."""
    reps = 20 if quick else 100
    dirty_rows = 4  # a hammer window touches a handful of rows at most
    qmodel = _bench_model()
    controller, layout = _bench_layout(qmodel, fast_path=True)
    rows = layout.weight_rows()[:dirty_rows]

    def run(full: bool) -> list[float]:
        times = []
        for _ in range(reps):
            for row in rows:  # untimed: the "attack" dirties a few rows
                data = controller.peek_logical(row)
                data[0] ^= 1
                controller.poke_logical(row, data)
            start = time.perf_counter()
            layout.sync_model_from_dram(full=full)
            times.append(time.perf_counter() - start)
        return times

    before = run(full=True)
    after = run(full=False)
    # Parity: after an incremental sync, a full re-read changes nothing.
    snapshot = qmodel.snapshot()
    layout.sync_model_from_dram(full=True)
    parity = qmodel.hamming_distance_from(snapshot) == 0
    return _entry(
        "sync_post_window",
        f"model sync after {dirty_rows} dirtied rows "
        f"({layout.num_rows} weight rows total)",
        reps,
        {"before": _stats(before), "after": _stats(after)},
        parity,
    )


def bench_bfa_scoring(quick: bool) -> dict:
    """One candidate-selection sweep over every layer, both scoring modes."""
    reps = 10 if quick else 40
    qmodel = _bench_model()
    x, y = _attack_batch()
    fast = BitFlipAttack(qmodel, x, y, config=BfaConfig(fast_scoring=True))
    slow = BitFlipAttack(qmodel, x, y, config=BfaConfig(fast_scoring=False))
    loss_and_grads(qmodel.model, x, y)
    layers = range(qmodel.num_layers)

    def sweep(attack):
        return [attack._layer_best_candidate(i) for i in layers]

    before = _timed(lambda: sweep(slow), reps)
    after = _timed(lambda: sweep(fast), reps)
    parity = sweep(fast) == sweep(slow)
    return _entry(
        "bfa_scoring",
        f"per-iteration flip ranking across {qmodel.num_layers} layers "
        f"({qmodel.total_weights} weights)",
        reps,
        {"before": _stats(before), "after": _stats(after)},
        parity,
    )


def _grad_bytes(model) -> list[bytes]:
    """Bytes of every parameter gradient, in deterministic name order."""
    return [
        param.grad.tobytes()
        for _, param in sorted(model.named_parameters())
    ]


def bench_forward_backward(quick: bool) -> dict:
    """One loss_and_grads pass: vectorized vs legacy nn kernels.

    The gradient pass dominates every BFA/T-BFA iteration.  ``before``
    runs the legacy per-``(kh, kw)``-loop kernels
    (``REPRO_NN_VECTORIZED=0``); ``after`` runs the strided
    ``sliding_window_view`` kernels with pooled scratch buffers and the
    fused eval-mode batch norm.  Parity demands a byte-identical loss
    *and* byte-identical gradients for every parameter — the vectorized
    path only changes data movement, never float evaluation order.  The
    full suite times the sweep-scale attack batch (256), where the
    legacy path also pays per-call large-buffer page faults.
    """
    reps = 5 if quick else 6
    batch = 64 if quick else 256
    qmodel = _bench_model()
    x, y = _attack_batch(batch)

    def run(vectorized: str):
        with _env_override("REPRO_NN_VECTORIZED", vectorized):
            times = _timed(
                lambda: loss_and_grads(qmodel.model, x, y), reps
            )
            loss = loss_and_grads(qmodel.model, x, y)
        return times, loss, _grad_bytes(qmodel.model)

    before, loss_slow, grads_slow = run("0")
    after, loss_fast, grads_fast = run("1")
    parity = loss_fast == loss_slow and grads_fast == grads_slow
    return _entry(
        "forward_backward",
        f"one eval-mode loss_and_grads pass (batch {batch}, "
        f"{qmodel.total_weights} weights), grads byte-compared",
        reps,
        {"before": _stats(before), "after": _stats(after)},
        parity,
    )


def bench_bfa_iteration(quick: bool) -> dict:
    """One full BFA search step (gradients + ranking + exact eval).

    ``before`` is the complete pre-optimization stack — legacy nn
    kernels (``REPRO_NN_VECTORIZED=0``) plus the argsort candidate scan;
    ``after`` is the vectorized kernels plus argpartition fast scoring.
    Parity compares the selected (bit, estimated gain), which requires
    the two stacks' gradients to agree bit for bit.  The full suite
    runs the sweep-scale attack batch.
    """
    reps = 3 if quick else 4
    batch = 64 if quick else 256
    qmodel = _bench_model()
    x, y = _attack_batch(batch)
    config = dict(max_iterations=1, exact_eval_top=4)
    fast = BitFlipAttack(
        qmodel, x, y, config=BfaConfig(fast_scoring=True, **config)
    )
    slow = BitFlipAttack(
        qmodel, x, y, config=BfaConfig(fast_scoring=False, **config)
    )

    def run(attack, vectorized: str):
        with _env_override("REPRO_NN_VECTORIZED", vectorized):
            times = _timed(attack._select_flip, reps)
            selected = attack._select_flip()
        return times, selected

    before, selected_slow = run(slow, "0")
    after, selected_fast = run(fast, "1")
    parity = selected_fast == selected_slow
    return _entry(
        "bfa_iteration",
        f"one _select_flip (loss+grads, ranking, exact eval of top 4) at "
        f"batch {batch}: legacy kernels + argsort vs vectorized + top-k",
        reps,
        {"before": _stats(before), "after": _stats(after)},
        parity,
    )


def _hammer_targets(qmodel: QuantizedModel, n: int) -> list[BitLocation]:
    """Distinct-row target bits spread across the first layer's rows."""
    layer = qmodel.layer(0)
    stride = max(1, layer.num_weights // n)
    return [
        BitLocation(0, (i * stride) % layer.num_weights, 6) for i in range(n)
    ]


def bench_hammer_window(quick: bool) -> dict:
    """One undefended single-bit hammer window, fast vs slow paths.

    The slow variant disables the controller fast path *and* forces the
    legacy full post-window resync — together, the pre-optimization
    behaviour of one window.
    """
    reps = 10 if quick else 40

    def run(fast_path: bool):
        qmodel = _bench_model()
        controller, layout = _bench_layout(qmodel, fast_path=fast_path)
        attacker = RowHammerAttacker(controller, layout)
        targets = _hammer_targets(qmodel, reps + 1)
        outcomes = []
        times = []
        with _env_override(
            "REPRO_SYNC_MODE", "incremental" if fast_path else "full"
        ):
            for i, target in enumerate(targets):
                start = time.perf_counter()
                outcomes.append(attacker.attempt_flip(target, max_windows=1))
                elapsed = time.perf_counter() - start
                if i > 0:  # first window warms caches
                    times.append(elapsed)
        return times, outcomes, [
            layer.packed_bytes().tobytes() for layer in qmodel.layers
        ]

    before, outcomes_slow, bytes_slow = run(fast_path=False)
    after, outcomes_fast, bytes_fast = run(fast_path=True)
    parity = outcomes_fast == outcomes_slow and bytes_fast == bytes_slow
    return _entry(
        "hammer_window",
        "attempt_flip of one weight bit (T_RH=1000, no defense) incl. sync",
        reps,
        {"before": _stats(before), "after": _stats(after)},
        parity,
    )


def _multi_bit_targets(layout, rows: int, bits_per_row: int):
    """Target bits on ``rows`` distinct victim rows, ``bits_per_row``
    bits each (the first weight byte(s) of each row's slot)."""
    targets = []
    slots = [slot for slot in layout.slots if slot.length >= 1][:rows]
    if len(slots) < rows:
        raise ValueError(f"layout has only {len(slots)} usable rows")
    for slot in slots:
        for bit in range(bits_per_row):
            targets.append(
                BitLocation(
                    slot.layer, slot.byte_offset + bit // 8, bit % 8
                )
            )
    return targets


def bench_multi_bit_window(quick: bool) -> dict:
    """Multi-bit flip set: per-bit windows vs row-batched windows.

    Realises the T-BFA / limited-budget multi-bit regime: several target
    bits per victim row.  ``before`` is the sequential path — one
    ``attempt_flip`` window per bit, each separated by a refresh, which
    is the only schedule under which sequential windows land same-row
    multi-bit sets (a discharged cell cannot flip again until the next
    refresh recharges it).  ``after`` is the batched ``attempt_flips``
    path: all of a row's target bits declared together, one shared
    ``T_RH`` window and one post-window model sync per row.  Parity
    demands identical per-bit outcomes and byte-identical final model
    weights.  The full suite runs a sweep-scale flip set.
    """
    reps = 3 if quick else 6
    rows = 2 if quick else 8
    bits_per_row = 8

    def run(batched: bool):
        qmodel = _bench_model()
        controller, layout = _bench_layout(qmodel, fast_path=True)
        attacker = RowHammerAttacker(controller, layout)
        targets = _multi_bit_targets(layout, rows, bits_per_row)
        times, outcome_sets = [], []
        for rep in range(reps + 1):  # first rep warms caches
            start = time.perf_counter()
            if batched:
                outcomes = attacker.attempt_flips(targets, max_windows=1)
                controller.advance_time(controller.ns_until_refresh())
            else:
                outcomes = []
                for target in targets:
                    outcomes.append(
                        attacker.attempt_flip(target, max_windows=1)
                    )
                    # Recharge before the next bit: without the refresh a
                    # second same-row flip is physically impossible.
                    controller.advance_time(controller.ns_until_refresh())
            elapsed = time.perf_counter() - start
            if rep > 0:
                times.append(elapsed)
            outcome_sets.append(outcomes)
        return times, outcome_sets, [
            layer.packed_bytes().tobytes() for layer in qmodel.layers
        ]

    before, outcomes_slow, bytes_slow = run(batched=False)
    after, outcomes_fast, bytes_fast = run(batched=True)
    parity = outcomes_fast == outcomes_slow and bytes_fast == bytes_slow
    return _entry(
        "multi_bit_window",
        f"{rows * bits_per_row}-bit flip set over {rows} victim rows "
        f"({bits_per_row} bits/row, T_RH=1000, no defense): per-bit "
        "windows vs row-batched attempt_flips",
        reps,
        {"before": _stats(before), "after": _stats(after)},
        parity,
    )


def bench_fig6_trial(quick: bool) -> dict:
    """One full fig6 scenario trial (pipelined swap chain + timeline)."""
    from repro.experiments.registry import get_scenario
    from repro.experiments.runner import TrialContext

    reps = 100 if quick else 400
    spec = get_scenario("fig6")
    ctx = TrialContext(scenario="fig6", trial_index=0, seed=0)

    def run(fast: str):
        with _env_override("REPRO_DRAM_FAST_PATH", fast):
            payload = spec.run_trial(ctx)
            times = _timed(lambda: spec.run_trial(ctx), reps, warmup=10)
        return times, payload

    before, payload_slow = run("0")
    after, payload_fast = run("1")
    parity = payload_fast == payload_slow
    return _entry(
        "fig6_trial",
        "full fig6 scenario trial (8-swap pipelined chain, Fig. 6)",
        reps,
        {"before": _stats(before), "after": _stats(after)},
        parity,
    )


def bench_sweep_trial(quick: bool) -> dict:
    """One sweep-scale scenario trial: per-trial throughput at grid size.

    Times a full ``sweep-hammer-rate`` trial (a T_RH grid of functional
    defender runs — the shape of work each shard of a ``--backend
    sharded`` sweep executes per trial) with the controller fast path on
    vs off, and reports trials/s alongside the usual latency stats so
    ``BENCH_hotpaths.json`` tracks sweep-scale throughput over time.
    """
    from repro.experiments.registry import get_scenario
    from repro.experiments.runner import TrialContext

    reps = 3 if quick else 10
    spec = get_scenario("sweep-hammer-rate")
    ctx = TrialContext(
        scenario="sweep-hammer-rate", trial_index=0, seed=0,
        params={"t_rh_grid": "1000,2000", "n_targets": 32},
    )

    def run(fast: str):
        with _env_override("REPRO_DRAM_FAST_PATH", fast):
            payload = spec.run_trial(ctx)
            times = _timed(lambda: spec.run_trial(ctx), reps, warmup=1)
        return times, payload

    before, payload_slow = run("0")
    after, payload_fast = run("1")
    parity = payload_fast == payload_slow
    variants = {"before": _stats(before), "after": _stats(after)}
    for stats in variants.values():
        stats["trials_per_s"] = round(1e3 / stats["median_ms"], 3)
    return _entry(
        "sweep_trial",
        "one sweep-hammer-rate trial (2-point T_RH grid, 32 target rows)",
        reps,
        variants,
        parity,
    )


_STRAGGLER_MODULE = "repro_bench_straggler_scenarios"
_STRAGGLER_SCENARIO = "bench-straggler"
_STRAGGLER_SOURCE = '''\
"""Sleep-calibrated sweep scenario for the straggler_sweep benchmark.

Heavy trials sit on stride residue 0 (``trial_index % stride == 0``),
the placement that concentrates every straggler on one shard of the
legacy static strided schedule.
"""
import os
import time

from repro.experiments import scenario


@scenario(
    "bench-straggler",
    title="sleep-calibrated straggler sweep workload",
    tags=("bench",),
    default_trials=8,
)
def bench_straggler(ctx):
    heavy_s = float(os.environ["REPRO_BENCH_STRAGGLER_HEAVY_S"])
    light_s = float(os.environ["REPRO_BENCH_STRAGGLER_LIGHT_S"])
    stride = int(os.environ["REPRO_BENCH_STRAGGLER_STRIDE"])
    time.sleep(heavy_s if ctx.trial_index % stride == 0 else light_s)
    return {"metrics": {"trial": float(ctx.trial_index)}, "detail": {}}
'''


def bench_straggler_sweep(quick: bool) -> dict:
    """Sharded-sweep wall-clock: legacy static schedule vs work-stealing.

    Runs a sleep-calibrated scenario whose heavy trials (~20x the rest)
    all sit on one stride residue — the placement under which the old
    static strided manifests handed *every* straggler to the same
    worker, so sweep wall-clock was the serial sum of all heavy trials.
    ``before`` reproduces that exact schedule
    (``ShardedBackend(static=True)``: one strided lease per worker, no
    stealing); ``after`` is the default work-stealing scheduler, whose
    contiguous leases spread the heavy residue across workers and whose
    idle workers steal the cheap tail.  Worker-subprocess spawn cost
    (~0.5s per lease) bounds how small a lease can profitably be, which
    is why the auto chunk size targets ~4 leases per worker rather
    than 1.
    """
    import importlib
    import pathlib
    import shutil
    import tempfile

    from repro.experiments import run_scenario, unregister
    from repro.experiments.backends import ShardedBackend

    reps = 1 if quick else 2
    trials, shards = 8, 2
    # The stragglers must dominate worker-spawn cost (~0.5-1s per
    # lease) or scheduling differences drown in process startup.
    heavy_s, light_s = (1.2, 0.05) if quick else (2.0, 0.1)
    stealing_size = 2
    tmp = pathlib.Path(tempfile.mkdtemp(prefix="repro-straggler-bench-"))
    try:
        atomic_write_text(tmp / f"{_STRAGGLER_MODULE}.py", _STRAGGLER_SOURCE)
        worker_env = {
            # Workers import the scenario module from the temp dir; the
            # ShardedBackend prepends this checkout's package root itself.
            "PYTHONPATH": os.pathsep.join(
                filter(None, [str(tmp), env_str("PYTHONPATH", "")])
            ),
            "REPRO_SCENARIO_MODULES": _STRAGGLER_MODULE,
            "REPRO_BENCH_STRAGGLER_HEAVY_S": str(heavy_s),
            "REPRO_BENCH_STRAGGLER_LIGHT_S": str(light_s),
            "REPRO_BENCH_STRAGGLER_STRIDE": str(shards),
        }
        sys.path.insert(0, str(tmp))
        importlib.import_module(_STRAGGLER_MODULE)  # register in-process too
        run_id = 0

        def run(**backend_kwargs):
            nonlocal run_id
            run_id += 1
            backend = ShardedBackend(
                shards,
                workdir=tmp / f"work-{run_id}",
                env=worker_env,
                **backend_kwargs,
            )
            return run_scenario(
                _STRAGGLER_SCENARIO, trials=trials, seed=0, backend=backend,
            )

        before, after = [], []
        results = {}
        for _ in range(reps):
            start = time.perf_counter()
            results["static"] = run(static=True)
            before.append(time.perf_counter() - start)
            start = time.perf_counter()
            results["stealing"] = run(chunk_size=stealing_size)
            after.append(time.perf_counter() - start)
        parity = (
            results["static"].to_json() == results["stealing"].to_json()
        )
    finally:
        # Setup may have failed partway: every teardown step must cope
        # with its counterpart never having happened.
        unregister(_STRAGGLER_SCENARIO)
        sys.modules.pop(_STRAGGLER_MODULE, None)
        with contextlib.suppress(ValueError):
            sys.path.remove(str(tmp))
        shutil.rmtree(tmp, ignore_errors=True)
    variants = {"before": _stats(before), "after": _stats(after)}
    for stats in variants.values():
        stats["trials_per_s"] = round(trials * 1e3 / stats["median_ms"], 3)
    return _entry(
        "straggler_sweep",
        f"{trials}-trial sharded sweep, {trials // shards} stride-aliased "
        f"straggler trial(s) ({heavy_s:g}s vs {light_s:g}s), {shards} "
        "workers: legacy static strided schedule vs work-stealing "
        f"(chunk size {stealing_size})",
        reps,
        variants,
        parity,
    )


def bench_radar_detection_sweep(quick: bool) -> dict:
    """One full-model RADAR sweep: vectorized vs pure-Python signatures.

    Tampers a handful of guarded MSBs first so the sweep has real
    detections to report; ``sweep`` never repairs, so the mismatch set
    is stable across reps.  Parity demands the two recompute paths
    agree on every per-layer signature vector *and* on the mismatched
    ``(layer, group)`` list.
    """
    from repro.defenses.radar import RadarDefense

    reps = 5 if quick else 20
    qmodel = _bench_model()
    radar = RadarDefense(qmodel, group_size=32)
    for target in _hammer_targets(qmodel, 4):  # bit 6: guarded column
        qmodel.flip_bit(target)

    before = _timed(lambda: radar.sweep(reference=True), reps)
    after = _timed(lambda: radar.sweep(), reps)
    mismatched = radar.sweep()
    parity = (
        len(mismatched) > 0
        and mismatched == radar.sweep(reference=True)
        and all(
            np.array_equal(
                radar._layer_signatures(i),
                radar._layer_signatures_reference(i),
            )
            for i in range(qmodel.num_layers)
        )
    )
    return _entry(
        "radar_detection_sweep",
        f"full-model RADAR checksum sweep ({radar.num_groups} groups, "
        f"{qmodel.total_weights} weights, {len(mismatched)} tampered): "
        "pure-Python reference vs vectorized",
        reps,
        {"before": _stats(before), "after": _stats(after)},
        parity,
    )


def bench_tournament_trial(quick: bool) -> dict:
    """One tournament-matrix cell: legacy vs vectorized nn kernels.

    Runs the full cell pipeline — build the RADAR defense over a fresh
    model, drive smart-bfa through its executor, recover, collect the
    cell metric vocabulary — exactly as one ``tournament-matrix`` trial
    does, minus the preset load (the bench model is untrained, keeping
    the suite CI-safe).  ``before`` runs the legacy per-``(kh, kw)``
    kernels (``REPRO_NN_VECTORIZED=0``); parity compares the complete
    metric payload, which requires byte-identical accuracies and
    detection accounting from both stacks.
    """
    from repro.analysis.defense_eval import evaluate_tournament_cell
    from repro.defenses.protocol import DefenseContext
    from repro.defenses.registry import build_defense

    reps = 2 if quick else 4
    budget = 3 if quick else 5
    dataset = cifar10_like(n_train=128, n_test=128, seed=0)

    def cell() -> dict:
        qmodel = _bench_model()
        defense = build_defense(
            "radar", DefenseContext(qmodel=qmodel, dataset=dataset, seed=0)
        )
        try:
            return evaluate_tournament_cell(
                "smart-bfa", defense, dataset, budget=budget, seed=0
            )
        finally:
            defense.close()

    def run(vectorized: str):
        with _env_override("REPRO_NN_VECTORIZED", vectorized):
            times = _timed(cell, reps, warmup=1)
            payload = cell()
        return times, payload

    before, payload_slow = run("0")
    after, payload_fast = run("1")
    parity = payload_fast == payload_slow
    return _entry(
        "tournament_trial",
        f"one tournament cell (radar vs smart-bfa, budget {budget}, "
        "eval batch 128): legacy kernels vs vectorized",
        reps,
        {"before": _stats(before), "after": _stats(after)},
        parity,
    )


def bench_defended_vs_undefended(quick: bool) -> dict:
    """Hammer-window cost with DNN-Defender ticking vs undefended."""
    reps = 6 if quick else 20

    def run(defended: bool):
        qmodel = _bench_model()
        controller, layout = _bench_layout(qmodel, fast_path=True)
        defense = None
        if defended:
            secured = set(layout.bits_in_row(layout.weight_rows()[0])[:64])
            plan = build_protection_plan(layout, secured)
            defense = DNNDefender(controller, plan)
        attacker = RowHammerAttacker(controller, layout, defense=defense)
        targets = _hammer_targets(qmodel, reps + 1)
        times = []
        for i, target in enumerate(targets):
            start = time.perf_counter()
            attacker.attempt_flip(target, max_windows=1)
            elapsed = time.perf_counter() - start
            if i > 0:
                times.append(elapsed)
        return times

    undefended = run(defended=False)
    defended = run(defended=True)
    return _entry(
        "defended_vs_undefended",
        "one hammer window, DNN-Defender ticking vs no defense",
        reps,
        {"defended": _stats(defended), "undefended": _stats(undefended)},
        True,
        ratio_key="overhead_x",
    )


def bench_timing_checker(quick: bool) -> dict:
    """Command-observer cost: audit checker + full trace vs unobserved."""
    reps = 6 if quick else 20

    def run(observed: bool):
        qmodel = _bench_model()
        controller, layout = _bench_layout(qmodel, fast_path=True)
        checker = trace = None
        if observed:
            checker = TimingChecker(controller, mode="audit")
            trace = CommandTrace(controller)
        attacker = RowHammerAttacker(controller, layout)
        targets = _hammer_targets(qmodel, reps + 1)
        times = []
        for i, target in enumerate(targets):
            start = time.perf_counter()
            attacker.attempt_flip(target, max_windows=1)
            elapsed = time.perf_counter() - start
            if i > 0:
                times.append(elapsed)
        if observed:
            checker.close()
            trace.close()
        return times, controller, checker

    bare, bare_controller, _ = run(observed=False)
    observed, observed_controller, checker = run(observed=True)
    # Parity: observers must not perturb the command stream, and the
    # stream itself must be timing-legal.
    parity = (
        stats_payload(observed_controller) == stats_payload(bare_controller)
        and not checker.violations
    )
    return _entry(
        "timing_checker",
        "one hammer window with audit TimingChecker + CommandTrace vs bare",
        reps,
        {"observed": _stats(observed), "bare": _stats(bare)},
        parity,
        ratio_key="overhead_x",
    )


HOTPATH_BENCHMARKS: dict[str, Callable[[bool], dict]] = {
    "sync_post_window": bench_sync_post_window,
    "bfa_scoring": bench_bfa_scoring,
    "forward_backward": bench_forward_backward,
    "bfa_iteration": bench_bfa_iteration,
    "hammer_window": bench_hammer_window,
    "multi_bit_window": bench_multi_bit_window,
    "fig6_trial": bench_fig6_trial,
    "sweep_trial": bench_sweep_trial,
    "straggler_sweep": bench_straggler_sweep,
    "radar_detection_sweep": bench_radar_detection_sweep,
    "tournament_trial": bench_tournament_trial,
    "defended_vs_undefended": bench_defended_vs_undefended,
    "timing_checker": bench_timing_checker,
}


# ---------------------------------------------------------------------- #
# Suite driver
# ---------------------------------------------------------------------- #

def run_hotpath_suite(
    quick: bool = False,
    paths: list[str] | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Run the selected hot-path benchmarks; returns the artifact payload."""
    names = list(HOTPATH_BENCHMARKS) if paths is None else list(paths)
    unknown = [n for n in names if n not in HOTPATH_BENCHMARKS]
    if unknown:
        raise KeyError(
            f"unknown bench path(s) {', '.join(unknown)}; available: "
            f"{', '.join(HOTPATH_BENCHMARKS)}"
        )
    start = time.perf_counter()
    benchmarks = []
    for name in names:
        if progress is not None:
            progress(name)
        benchmarks.append(HOTPATH_BENCHMARKS[name](quick))
    summary = {}
    for bench in benchmarks:
        key = "speedup" if "speedup" in bench else "overhead_x"
        summary[bench["name"]] = {key: bench[key], "parity": bench["parity"]}
    return {
        "suite": "hotpaths",
        "quick": quick,
        "elapsed_s": round(time.perf_counter() - start, 2),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "benchmarks": benchmarks,
        "summary": summary,
    }


def format_suite(payload: dict) -> str:
    """Human-readable table of a suite payload."""
    from repro.utils.tabulate import format_table

    rows = []
    for bench in payload["benchmarks"]:
        variants = bench["variants"]
        keys = list(variants)
        ratio_key = "speedup" if "speedup" in bench else "overhead_x"
        rows.append(
            [
                bench["name"],
                f"{variants[keys[0]]['median_ms']:.3f}",
                f"{variants[keys[1]]['median_ms']:.3f}",
                f"{bench[ratio_key]:.2f}x {ratio_key}",
                "ok" if bench["parity"] else "MISMATCH",
            ]
        )
    title = (
        f"repro bench — hot paths ({'quick' if payload['quick'] else 'full'}"
        f", {payload['elapsed_s']:.1f}s)"
    )
    return format_table(
        ["path", "before/defended (ms)", "after/undefended (ms)",
         "ratio", "parity"],
        rows,
        title=title,
    )
