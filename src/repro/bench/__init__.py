"""Perf-bench subsystem: reproducible hot-path measurements.

``python -m repro bench`` runs :func:`run_hotpath_suite` and persists the
payload as ``BENCH_hotpaths.json`` — the repo's perf trajectory; every
perf-focused PR appends a fresh measurement so regressions are visible in
review.  See ``docs/performance.md`` for the hot-path map and how to read
the numbers.
"""

from repro.bench.hotpaths import (
    HOTPATH_BENCHMARKS,
    format_suite,
    run_hotpath_suite,
)

__all__ = ["HOTPATH_BENCHMARKS", "format_suite", "run_hotpath_suite"]
